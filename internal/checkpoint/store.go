package checkpoint

import (
	"errors"
	"fmt"
	"os"
	"path/filepath"
	"sort"
	"strconv"
	"strings"
	"sync"
	"sync/atomic"
	"time"

	"sprofile/internal/failpoint"
	"sprofile/internal/failpoint/failfs"
	"sprofile/internal/wal"
)

// Options configures a Store.
type Options struct {
	// SyncEvery asks for an fsync after this many appended records; zero
	// syncs only on explicit Sync/Close calls and at rotation.
	SyncEvery int
}

// RecoveryStats describes how a profile was rebuilt when its store opened.
type RecoveryStats struct {
	// SnapshotSeq is the sequence number of the snapshot recovery loaded
	// (zero when no snapshot existed).
	SnapshotSeq uint64
	// SnapshotObjects is how many keys (or nonzero dense slots) the snapshot
	// restored without replay.
	SnapshotObjects int
	// SnapshotEvents is the number of add/remove events the snapshot covers
	// — events that did not need replaying.
	SnapshotEvents uint64
	// TailSegments and TailRecords count what was replayed after the
	// snapshot: the WAL segments newer than the one it sealed and the
	// records inside them.
	TailSegments int
	TailRecords  int
}

const (
	snapPrefix = "snap-"
	snapSuffix = ".sks"
	tmpSuffix  = ".tmp"
)

// snapName returns the file name of snapshot seq.
func snapName(seq uint64) string {
	return fmt.Sprintf("%s%016x%s", snapPrefix, seq, snapSuffix)
}

// parseSnapName extracts the sequence number from a snapshot file name.
func parseSnapName(name string) (uint64, bool) {
	if !strings.HasPrefix(name, snapPrefix) || !strings.HasSuffix(name, snapSuffix) {
		return 0, false
	}
	hexPart := strings.TrimSuffix(strings.TrimPrefix(name, snapPrefix), snapSuffix)
	if len(hexPart) != 16 {
		return 0, false
	}
	seq, err := strconv.ParseUint(hexPart, 16, 64)
	if err != nil {
		return 0, false
	}
	return seq, true
}

// Store owns one checkpointed log directory: the WAL append head, the latest
// snapshot, and the checkpoint protocol that replaces covered segments with
// a new snapshot. Opening happens in two phases — Open scans the directory
// and decodes the snapshot, the caller restores its profile from TakeState,
// then ReplayTail rolls the profile forward and switches the store into
// append mode.
type Store struct {
	dir  string
	opts Options

	state     *State // decoded recovery snapshot, until TakeState
	seq       uint64 // latest snapshot sequence (0 = none)
	sealedSeg uint64 // last segment covered by that snapshot
	tail      []wal.SegmentInfo
	stats     RecoveryStats

	log *wal.Dir // nil until ReplayTail

	// ckptMu admits one checkpoint at a time. It is deliberately held
	// across the whole temp + fsync + rename + prune protocol: nothing on
	// the ingest or read fast path ever contends on it (state capture uses
	// the profile's own locks via the capture callback, which quiesces and
	// releases before the I/O starts).
	//lint:allow locksafe — one-in-flight checkpoint guard, audited to never block ingest or reads
	ckptMu sync.Mutex
	// tailBase is the AppendedBytes baseline of the current tail: TailBytes
	// reports bytes appended past it. Negative at open (crediting the tail
	// segments already on disk), reset at each successful checkpoint.
	tailBase    atomic.Int64
	pendingBase int64 // AppendedBytes at the in-flight checkpoint's rotation

	// metaMu lets goroutines outside the checkpoint path (replication
	// handlers, health probes) read seq/sealedSeg/lastCkpt consistently;
	// the checkpoint path also writes them under it.
	metaMu   sync.Mutex
	lastCkpt time.Time

	// pinMu guards the TTL leases bootstrapping followers hold on the
	// current snapshot and the segments after it. prune honours live leases;
	// expired ones are collected lazily.
	pinMu   sync.Mutex
	pins    map[uint64]pinLease
	nextPin uint64
}

// pinLease is one follower's retention lease: keep snapshot seq and every
// segment above sealedSeg until the lease expires or is released.
type pinLease struct {
	seq       uint64
	sealedSeg uint64
	expires   time.Time
}

// Open scans (creating if needed) the checkpointed log directory at path,
// migrating a legacy single-file WAL at the same path first. It decodes the
// newest snapshot whose checksum verifies — an unreadable newer snapshot is
// skipped, falling back to its predecessor — and plans the tail replay, but
// replays nothing: the caller restores its profile from TakeState, then
// calls ReplayTail.
func Open(path string, opts Options) (*Store, error) {
	if err := wal.MigrateLegacy(path); err != nil {
		return nil, err
	}
	if err := os.MkdirAll(path, 0o755); err != nil {
		return nil, err
	}
	s := &Store{dir: path, opts: opts}

	entries, err := os.ReadDir(path)
	if err != nil {
		return nil, err
	}
	var snapSeqs []uint64
	for _, e := range entries {
		if seq, ok := parseSnapName(e.Name()); ok && !e.IsDir() {
			snapSeqs = append(snapSeqs, seq)
		}
	}
	sort.Slice(snapSeqs, func(i, j int) bool { return snapSeqs[i] > snapSeqs[j] })
	for _, seq := range snapSeqs {
		data, err := os.ReadFile(filepath.Join(path, snapName(seq)))
		if err != nil {
			continue
		}
		st, err := decodeState(data)
		if err != nil || st.Seq != seq {
			continue // damaged snapshot: fall back to the previous one
		}
		s.state = st
		s.seq = seq
		s.sealedSeg = st.SealedSeg
		if fi, err := os.Stat(filepath.Join(path, snapName(seq))); err == nil {
			s.lastCkpt = fi.ModTime()
		}
		break
	}

	segs, err := wal.ListSegments(path)
	if err != nil {
		return nil, err
	}
	for i, sg := range segs {
		if sg.Torn && i != len(segs)-1 {
			return nil, fmt.Errorf("%w: segment %s has no readable header but is not the tail", wal.ErrCorrupt, sg.Path)
		}
		if sg.ID > s.sealedSeg {
			s.tail = append(s.tail, sg)
		}
	}
	// The tail must be a contiguous run, starting right after the sealed
	// segment when a snapshot exists; a gap means segments were lost.
	// (Without a snapshot the log may legitimately start at any id — a
	// migrated legacy file is always segment 1.)
	for i, sg := range s.tail {
		want := sg.ID
		if i > 0 {
			want = s.tail[i-1].ID + 1
		} else if s.seq > 0 {
			want = s.sealedSeg + 1
		}
		if sg.ID != want {
			return nil, fmt.Errorf("%w: segment %d missing (found %d)", wal.ErrCorrupt, want, sg.ID)
		}
	}
	// The oldest surviving segment must not postdate the snapshot recovery
	// chose: its header records the snapshot sequence current when it was
	// created, so a higher value means a checkpoint already deleted the
	// segments before it and its snapshot is now missing or unreadable.
	// Replaying just the tail would silently drop everything that snapshot
	// covered — fail loudly instead and leave the directory untouched for
	// forensics. (A checkpoint that failed *before* publishing its snapshot
	// never deletes anything, so the oldest segment then still carries the
	// previous sequence and this check stays quiet.)
	if len(s.tail) > 0 && !s.tail[0].Torn && s.tail[0].SnapSeq > s.seq {
		return nil, fmt.Errorf("%w: segment %d requires snapshot %d, which is missing or unreadable",
			wal.ErrCorrupt, s.tail[0].ID, s.tail[0].SnapSeq)
	}

	if s.state != nil {
		s.stats.SnapshotSeq = s.seq
		s.stats.SnapshotObjects = s.state.Objects()
		s.stats.SnapshotEvents = s.state.Adds + s.state.Removes
		mRecoverySnapshotEvents.Add(s.stats.SnapshotEvents)
		mSnapshotSeq.Set(float64(s.seq))
	}
	return s, nil
}

// TakeState hands over the decoded recovery snapshot (nil when none was
// found) and releases the store's reference so the image can be collected
// after the caller restores from it.
func (s *Store) TakeState() *State {
	st := s.state
	s.state = nil
	return st
}

// Stats returns what recovery loaded and replayed.
func (s *Store) Stats() RecoveryStats { return s.stats }

// Seq returns the sequence number of the latest snapshot.
func (s *Store) Seq() uint64 { return s.seq }

// Dir returns the directory the store manages.
func (s *Store) Dir() string { return s.dir }

// ReplayTail replays every record appended after the recovery snapshot,
// invoking fn for each, then opens the log for appending and prunes files
// made redundant by the snapshot (covered segments, superseded snapshots,
// leftover temp files). It returns the number of records replayed.
func (s *Store) ReplayTail(fn func(wal.Record) error) (int, error) {
	if s.log != nil {
		return 0, errors.New("checkpoint: tail already replayed")
	}
	records := 0
	segments := 0
	for i, sg := range s.tail {
		if sg.Torn {
			continue // recreated by OpenDir below; holds no records
		}
		// Only the final segment may legitimately end mid-record (a crash
		// mid-append); sealed segments were fsynced whole.
		n, err := wal.ReplaySegment(sg.Path, i == len(s.tail)-1, fn)
		records += n
		if err != nil {
			return records, err
		}
		segments++
	}

	var tailSeg *wal.SegmentInfo
	nextID := s.sealedSeg + 1
	if len(s.tail) > 0 {
		t := s.tail[len(s.tail)-1]
		tailSeg = &t
		nextID = t.ID
	}
	log, err := wal.OpenDir(s.dir, wal.Options{SyncEvery: s.opts.SyncEvery}, tailSeg, nextID, s.seq)
	if err != nil {
		return records, err
	}
	s.log = log
	s.tailBase.Store(log.AppendedBytes() - tailBytesOnDisk(s.tail))
	s.stats.TailSegments = segments
	s.stats.TailRecords = records
	mRecoveryReplayed.Add(uint64(records))
	s.prune()
	s.tail = nil
	return records, nil
}

// tailBytesOnDisk sums the record bytes sitting in the tail segments.
func tailBytesOnDisk(tail []wal.SegmentInfo) int64 {
	var n int64
	for _, sg := range tail {
		n += sg.Size
	}
	return n
}

// prune deletes covered segments, superseded or damaged snapshots, and
// leftover temp files. Best-effort: a file that cannot be removed today is
// removed by the next successful checkpoint or restart.
func (s *Store) prune() {
	entries, err := os.ReadDir(s.dir)
	if err != nil {
		return
	}
	keepSeq, minSealed := s.pinnedRetention()
	drop := s.sealedSeg
	if minSealed < drop {
		drop = minSealed
	}
	if s.log != nil {
		_ = s.log.DropThrough(drop)
	}
	for _, e := range entries {
		name := e.Name()
		if strings.HasSuffix(name, tmpSuffix) {
			os.Remove(filepath.Join(s.dir, name))
			continue
		}
		if seq, ok := parseSnapName(name); ok && seq != s.seq && !keepSeq[seq] {
			os.Remove(filepath.Join(s.dir, name))
		}
	}
}

// pinnedRetention folds the live leases into retention bounds — the snapshot
// sequences that must survive and the lowest sealed-segment watermark a
// lease still needs the tail of — collecting expired leases on the way.
func (s *Store) pinnedRetention() (keepSeq map[uint64]bool, minSealed uint64) {
	minSealed = ^uint64(0)
	s.pinMu.Lock()
	defer s.pinMu.Unlock()
	now := time.Now()
	for id, p := range s.pins {
		if now.After(p.expires) {
			delete(s.pins, id)
			continue
		}
		if p.seq > 0 {
			if keepSeq == nil {
				keepSeq = make(map[uint64]bool)
			}
			keepSeq[p.seq] = true
		}
		if p.sealedSeg < minSealed {
			minSealed = p.sealedSeg
		}
	}
	return keepSeq, minSealed
}

// Append adds one record to the log. syncDue asks the caller to run Sync
// once it is outside its own locks (the SyncEvery contract).
func (s *Store) Append(rec wal.Record) (syncDue bool, err error) {
	return s.log.Append(rec)
}

// AppendBatch adds a whole coalesced batch to the log as one physical
// record; see wal.Dir.AppendBatch.
func (s *Store) AppendBatch(entries []wal.BatchEntry) (syncDue bool, err error) {
	return s.log.AppendBatch(entries)
}

// Appended returns the number of records appended through this store.
func (s *Store) Appended() uint64 { return s.log.Appended() }

// Fsyncs returns how many record-durability fsyncs the log has issued.
func (s *Store) Fsyncs() uint64 { return s.log.Fsyncs() }

// Sync makes every appended record durable (group commit; see wal.Dir.Sync).
func (s *Store) Sync() error { return s.log.Sync() }

// SyncError returns the sticky I/O error poisoning the WAL append head, or
// nil while it is healthy (or not yet open); see wal.Dir.SyncError.
func (s *Store) SyncError() error {
	if s.log == nil {
		return nil
	}
	return s.log.SyncError()
}

// Roll recovers a poisoned WAL append head onto a fresh segment, restoring
// append service once the disk accepts writes again; see wal.Dir.Roll. On a
// healthy log it is a no-op.
func (s *Store) Roll() error {
	if s.log == nil {
		return errors.New("checkpoint: store is not open for appending")
	}
	return s.log.Roll()
}

// TailBytes returns the approximate size of the log tail not yet covered by
// a snapshot — the input to a size-based checkpoint trigger.
func (s *Store) TailBytes() int64 {
	if s.log == nil {
		return tailBytesOnDisk(s.tail)
	}
	return s.log.AppendedBytes() - s.tailBase.Load()
}

// Rotate seals the current segment and opens the next one, stamping it with
// the sequence the in-flight checkpoint will get. Call it only from inside a
// Checkpoint capture function, under whatever exclusion the owner's
// concurrency model requires.
func (s *Store) Rotate() (sealed uint64, err error) {
	sealed, err = s.log.Rotate(s.seq + 1)
	if err == nil {
		s.pendingBase = s.log.AppendedBytes()
	}
	return sealed, err
}

// Checkpoint runs one checkpoint cycle. capture must rotate the log (via
// Rotate) and return the profile image that covers everything up to the
// sealed segment, under the owner's write exclusion; Checkpoint then
// serialises the image to a temp file, fsyncs it, atomically renames it into
// place, and deletes the covered segments and the superseded snapshot. Only
// one checkpoint runs at a time; concurrent calls queue.
func (s *Store) Checkpoint(capture func() (*State, uint64, error)) error {
	start := time.Now()
	err := s.checkpoint(capture)
	if err == nil {
		mCheckpointsOK.Inc()
		mCheckpointSeconds.ObserveSince(start)
		mLastCheckpointUnix.Set(float64(time.Now().Unix()))
	} else {
		mCheckpointsErr.Inc()
	}
	return err
}

func (s *Store) checkpoint(capture func() (*State, uint64, error)) error {
	s.ckptMu.Lock()
	defer s.ckptMu.Unlock()
	if s.log == nil {
		return errors.New("checkpoint: store is not open for appending")
	}
	st, sealed, err := capture()
	if err != nil {
		return err
	}
	seq := s.seq + 1
	st.Seq = seq
	st.SealedSeg = sealed

	final := filepath.Join(s.dir, snapName(seq))
	tmp := final + tmpSuffix
	// The temp file runs through failfs so chaos tests can inject ENOSPC,
	// torn writes and fsync failures into every step of the temp + fsync +
	// rename publication protocol.
	f, err := failfs.OpenFile("checkpoint.snap", tmp, os.O_CREATE|os.O_TRUNC|os.O_WRONLY, 0o644)
	if err != nil {
		return err
	}
	if err := encodeState(f, st); err != nil {
		f.Close()
		os.Remove(tmp)
		return err
	}
	if err := f.Sync(); err != nil {
		f.Close()
		os.Remove(tmp)
		return err
	}
	if err := f.Close(); err != nil {
		os.Remove(tmp)
		return err
	}
	if err := failpoint.Inject("checkpoint.rename"); err != nil {
		os.Remove(tmp)
		return err
	}
	if err := os.Rename(tmp, final); err != nil {
		os.Remove(tmp)
		return err
	}
	if err := wal.SyncDir(s.dir); err != nil {
		return err
	}
	// The snapshot is durable and visible: the checkpoint has happened.
	// Everything after this point is space reclamation.
	s.metaMu.Lock()
	s.seq = seq
	s.sealedSeg = sealed
	s.lastCkpt = time.Now()
	s.metaMu.Unlock()
	mSnapshotSeq.Set(float64(seq))
	s.tailBase.Store(s.pendingBase)
	s.prune()
	return nil
}

// Close flushes and closes the log. The store must not be used afterwards.
func (s *Store) Close() error {
	if s.log == nil {
		return nil
	}
	return s.log.Close()
}

// SnapshotName returns the file name snapshot seq lives under — exported so
// the replication layer can mirror snapshot files byte-for-byte.
func SnapshotName(seq uint64) string { return snapName(seq) }

// PinnedSnapshot identifies a snapshot held by a retention lease.
type PinnedSnapshot struct {
	Pin       uint64 // lease id, for RefreshPin/Unpin
	Seq       uint64 // pinned snapshot sequence (0 = no snapshot yet)
	SealedSeg uint64 // last segment that snapshot covers
	Path      string // snapshot file path, empty when Seq is 0
}

// PinSnapshot leases the current snapshot and every segment after the one it
// sealed for ttl, so a bootstrapping follower can fetch the snapshot and then
// the uncovered tail without a concurrent checkpoint pruning either from
// under it. The lease expires on its own; callers extend it with RefreshPin
// while the bootstrap is still in flight and may drop it early with Unpin.
func (s *Store) PinSnapshot(ttl time.Duration) PinnedSnapshot {
	// Taking pinMu before reading the metadata closes the race with a
	// concurrent Checkpoint: either we observe the new snapshot, or prune
	// blocks on pinMu until our lease for the old one is registered.
	s.pinMu.Lock()
	defer s.pinMu.Unlock()
	s.metaMu.Lock()
	seq, sealed := s.seq, s.sealedSeg
	s.metaMu.Unlock()
	if s.pins == nil {
		s.pins = make(map[uint64]pinLease)
	}
	s.nextPin++
	ps := PinnedSnapshot{Pin: s.nextPin, Seq: seq, SealedSeg: sealed}
	if seq > 0 {
		ps.Path = filepath.Join(s.dir, snapName(seq))
	}
	s.pins[ps.Pin] = pinLease{seq: seq, sealedSeg: sealed, expires: time.Now().Add(ttl)}
	return ps
}

// RefreshPin extends lease id by ttl from now. It reports whether the lease
// was still live; an expired or unknown lease cannot be revived — the caller
// must pin again (and re-validate what it was fetching).
func (s *Store) RefreshPin(id uint64, ttl time.Duration) bool {
	s.pinMu.Lock()
	defer s.pinMu.Unlock()
	p, ok := s.pins[id]
	if !ok || time.Now().After(p.expires) {
		delete(s.pins, id)
		return false
	}
	p.expires = time.Now().Add(ttl)
	s.pins[id] = p
	return true
}

// Unpin releases lease id. Releasing an expired or unknown lease is a no-op.
func (s *Store) Unpin(id uint64) {
	s.pinMu.Lock()
	delete(s.pins, id)
	s.pinMu.Unlock()
}

// PinTail leases every segment at or above seg for ttl, without pinning any
// snapshot. It is the steady-state lease of a caught-up follower: as long as
// it is refreshed, checkpoints will not prune the bytes the follower has yet
// to fetch.
func (s *Store) PinTail(seg uint64, ttl time.Duration) uint64 {
	s.pinMu.Lock()
	defer s.pinMu.Unlock()
	if s.pins == nil {
		s.pins = make(map[uint64]pinLease)
	}
	s.nextPin++
	var sealed uint64
	if seg > 0 {
		sealed = seg - 1
	}
	s.pins[s.nextPin] = pinLease{sealedSeg: sealed, expires: time.Now().Add(ttl)}
	return s.nextPin
}

// AdvancePin moves lease id forward so it only retains segments at or above
// seg, drops any snapshot retention it carried (the follower fetching WAL at
// seg has durably restored its snapshot already), and extends it by ttl. The
// watermark never regresses. It reports whether the lease was still live.
func (s *Store) AdvancePin(id, seg uint64, ttl time.Duration) bool {
	s.pinMu.Lock()
	defer s.pinMu.Unlock()
	p, ok := s.pins[id]
	if !ok || time.Now().After(p.expires) {
		delete(s.pins, id)
		return false
	}
	p.seq = 0
	if seg > 0 && seg-1 > p.sealedSeg {
		p.sealedSeg = seg - 1
	}
	p.expires = time.Now().Add(ttl)
	s.pins[id] = p
	return true
}

// SnapshotMeta returns the current snapshot sequence and the last segment it
// covers, consistently with each other.
func (s *Store) SnapshotMeta() (seq, sealedSeg uint64) {
	s.metaMu.Lock()
	defer s.metaMu.Unlock()
	return s.seq, s.sealedSeg
}

// LastCheckpoint returns when the current snapshot was published (the zero
// time when none exists). For a freshly opened store this is the snapshot
// file's modification time.
func (s *Store) LastCheckpoint() time.Time {
	s.metaMu.Lock()
	defer s.metaMu.Unlock()
	return s.lastCkpt
}

// AppendSegmentID returns the id of the segment currently open for
// appending.
func (s *Store) AppendSegmentID() uint64 { return s.log.SegmentID() }

// AppendPosition reports the durable append position: the current segment
// and the byte offset covered by the last completed fsync. A reader that has
// mirrored up to this position has everything the leader has made durable —
// and nothing more, so a post-failure Roll (which truncates the segment back
// to this offset) can never invalidate bytes a reader already fetched.
func (s *Store) AppendPosition() wal.Position {
	return s.log.SyncedPosition()
}

// SegmentCount counts the WAL segment files currently in the directory — an
// observability figure, racing benignly with rotation and pruning.
func (s *Store) SegmentCount() int {
	entries, err := os.ReadDir(s.dir)
	if err != nil {
		return 0
	}
	n := 0
	for _, e := range entries {
		if strings.HasPrefix(e.Name(), "wal-") && strings.HasSuffix(e.Name(), ".seg") {
			n++
		}
	}
	return n
}

// ReplayTailReadOnly replays every record appended after the recovery
// snapshot, like ReplayTail, but leaves the directory exactly as it found it:
// no append head is opened, nothing is truncated or pruned, and the store can
// never append afterwards. It returns the number of records replayed and the
// replica position — the byte boundary just past the last complete record,
// where a follower mirroring this directory resumes fetching. A torn tail is
// tolerated (mirroring overwrites it); the position stops before it.
func (s *Store) ReplayTailReadOnly(fn func(wal.Record) error) (int, wal.Position, error) {
	if s.log != nil {
		return 0, wal.Position{}, errors.New("checkpoint: store is already open for appending")
	}
	pos := wal.Position{Segment: s.sealedSeg + 1}
	if len(s.tail) > 0 {
		pos = wal.Position{Segment: s.tail[0].ID}
	}
	records := 0
	segments := 0
	for i, sg := range s.tail {
		if sg.Torn {
			// Header never made it to disk: nothing recoverable, and the
			// mirror restarts this segment from byte 0.
			pos = wal.Position{Segment: sg.ID}
			continue
		}
		n, end, err := wal.ReplaySegmentValid(sg.Path, i == len(s.tail)-1, fn)
		records += n
		if err != nil {
			return records, pos, err
		}
		pos = wal.Position{Segment: sg.ID, Offset: end}
		segments++
	}
	s.stats.TailSegments = segments
	s.stats.TailRecords = records
	s.tail = nil
	return records, pos, nil
}
