// Package checkpoint is the persistence subsystem around the segmented
// write-ahead log: atomic snapshots, log rotation and truncation, and
// bounded-time recovery.
//
// A checkpointed log directory holds rotating WAL segments (see
// internal/wal) plus snapshot files
//
//	snap-<seq, 16 hex digits>.sks
//
// Each snapshot is written to a .tmp file, fsynced, atomically renamed into
// place, and only then are the WAL segments it covers deleted — so at every
// instant the directory contains a valid snapshot (or none) plus the
// segments needed to roll it forward to the latest appended record. Recovery
// is: load the newest valid snapshot, replay only the segments after the one
// it sealed. Both recovery time and disk footprint are therefore bounded by
// the checkpoint cadence, not by the full ingest history.
//
// Snapshot file format ("SKS1"):
//
//	magic    [4]byte  "SKS1"
//	version  1 byte   (1)
//	kind     1 byte   0 = dense, 1 = keyed
//	seq      uvarint  snapshot sequence number
//	sealed   uvarint  id of the last WAL segment the snapshot covers
//	payload:
//	  dense:  an SPF1 blob (core.WriteSnapshot) — frequencies, event
//	          counters and flags of a dense-id profile
//	  keyed:  capacity, adds, removes, count uvarints, then count ×
//	          (keyLen uvarint, key bytes, frequency svarint) — the key
//	          table and per-key frequencies of a keyed profile
//	crc      uint32 little-endian, IEEE CRC-32 of all preceding bytes
//
// The trailing checksum lets recovery reject a snapshot damaged after the
// fact and fall back to the previous one.
package checkpoint

import (
	"bufio"
	"bytes"
	"encoding/binary"
	"errors"
	"fmt"
	"hash/crc32"
	"io"

	"sprofile/internal/core"
)

// ErrBadSnapshot is returned when a snapshot file cannot be decoded.
var ErrBadSnapshot = errors.New("checkpoint: invalid snapshot")

var snapMagic = [4]byte{'S', 'K', 'S', '1'}

const (
	snapVersion = 1

	kindDense byte = 0
	kindKeyed byte = 1
)

// State is one snapshot's decoded payload: the complete image of a profile
// at a checkpoint, sufficient to rebuild it without replaying the events the
// snapshot covers.
type State struct {
	// Keyed distinguishes the two payload kinds.
	Keyed bool

	// Dense is the dense-id profile image (dense snapshots only).
	Dense *core.Profile

	// Keys and Freqs are parallel: key Keys[i] held frequency Freqs[i]
	// (keyed snapshots only). Dense ids are deliberately absent — they are
	// reassigned when the keys are re-acquired during restore, because the
	// stripe hashing that places keys is seeded per process.
	Keys  []string
	Freqs []int64

	// Capacity, Adds and Removes mirror the profile's bookkeeping so a
	// restore reproduces Summarize() exactly, not just the frequencies.
	Capacity int
	Adds     uint64
	Removes  uint64

	// Seq and SealedSeg are assigned by the Store when the snapshot is
	// written: its sequence number and the last WAL segment it covers.
	Seq       uint64
	SealedSeg uint64
}

// Objects returns how many objects the snapshot carries state for: tracked
// keys for a keyed snapshot, slots with nonzero frequency for a dense one.
func (st *State) Objects() int {
	if st.Keyed {
		return len(st.Keys)
	}
	if st.Dense == nil {
		return 0
	}
	n := 0
	for _, f := range st.Dense.Frequencies(nil) {
		if f != 0 {
			n++
		}
	}
	return n
}

// encodeState writes the snapshot file body (header, payload, checksum).
func encodeState(w io.Writer, st *State) error {
	bw := bufio.NewWriterSize(w, 1<<16)
	h := crc32.NewIEEE()
	tw := io.MultiWriter(bw, h)

	if _, err := tw.Write(snapMagic[:]); err != nil {
		return err
	}
	kind := kindDense
	if st.Keyed {
		kind = kindKeyed
	}
	if _, err := tw.Write([]byte{snapVersion, kind}); err != nil {
		return err
	}
	var buf [binary.MaxVarintLen64]byte
	writeUvarint := func(v uint64) error {
		n := binary.PutUvarint(buf[:], v)
		_, err := tw.Write(buf[:n])
		return err
	}
	writeVarint := func(v int64) error {
		n := binary.PutVarint(buf[:], v)
		_, err := tw.Write(buf[:n])
		return err
	}
	if err := writeUvarint(st.Seq); err != nil {
		return err
	}
	if err := writeUvarint(st.SealedSeg); err != nil {
		return err
	}
	if st.Keyed {
		if len(st.Keys) != len(st.Freqs) {
			return fmt.Errorf("checkpoint: %d keys but %d frequencies", len(st.Keys), len(st.Freqs))
		}
		if err := writeUvarint(uint64(st.Capacity)); err != nil {
			return err
		}
		if err := writeUvarint(st.Adds); err != nil {
			return err
		}
		if err := writeUvarint(st.Removes); err != nil {
			return err
		}
		if err := writeUvarint(uint64(len(st.Keys))); err != nil {
			return err
		}
		for i, key := range st.Keys {
			if err := writeUvarint(uint64(len(key))); err != nil {
				return err
			}
			if _, err := io.WriteString(tw, key); err != nil {
				return err
			}
			if err := writeVarint(st.Freqs[i]); err != nil {
				return err
			}
		}
	} else {
		if st.Dense == nil {
			return errors.New("checkpoint: dense snapshot without a profile")
		}
		// WriteSnapshot buffers and flushes internally, so the SPF1 blob
		// lands in tw in full before the checksum is taken.
		if err := st.Dense.WriteSnapshot(tw); err != nil {
			return err
		}
	}
	var crc [4]byte
	binary.LittleEndian.PutUint32(crc[:], h.Sum32())
	if _, err := bw.Write(crc[:]); err != nil {
		return err
	}
	return bw.Flush()
}

// decodeState parses a snapshot file body, verifying the checksum first. It
// walks the byte slice directly — recovery decodes hundreds of thousands of
// keys, and a reader interface would double the per-key allocations.
func decodeState(data []byte) (*State, error) {
	if len(data) < 4+2+4 {
		return nil, fmt.Errorf("%w: %d bytes", ErrBadSnapshot, len(data))
	}
	body, tail := data[:len(data)-4], data[len(data)-4:]
	if crc32.ChecksumIEEE(body) != binary.LittleEndian.Uint32(tail) {
		return nil, fmt.Errorf("%w: checksum mismatch", ErrBadSnapshot)
	}
	if [4]byte(body[:4]) != snapMagic {
		return nil, fmt.Errorf("%w: bad magic", ErrBadSnapshot)
	}
	if body[4] != snapVersion {
		return nil, fmt.Errorf("%w: version %d", ErrBadSnapshot, body[4])
	}
	kind := body[5]
	rest := body[6:]
	st := &State{}
	readUvarint := func() (uint64, error) {
		v, n := binary.Uvarint(rest)
		if n <= 0 {
			return 0, fmt.Errorf("%w: truncated varint", ErrBadSnapshot)
		}
		rest = rest[n:]
		return v, nil
	}
	var err error
	if st.Seq, err = readUvarint(); err != nil {
		return nil, err
	}
	if st.SealedSeg, err = readUvarint(); err != nil {
		return nil, err
	}
	switch kind {
	case kindDense:
		p, err := core.ReadSnapshot(bytes.NewReader(rest))
		if err != nil {
			return nil, fmt.Errorf("%w: %v", ErrBadSnapshot, err)
		}
		st.Dense = p
		st.Capacity = p.Cap()
		st.Adds, st.Removes = p.Events()
	case kindKeyed:
		st.Keyed = true
		capacity, err := readUvarint()
		if err != nil {
			return nil, err
		}
		if capacity > uint64(core.MaxCapacity) {
			return nil, fmt.Errorf("%w: capacity %d exceeds limit", ErrBadSnapshot, capacity)
		}
		st.Capacity = int(capacity)
		if st.Adds, err = readUvarint(); err != nil {
			return nil, err
		}
		if st.Removes, err = readUvarint(); err != nil {
			return nil, err
		}
		count, err := readUvarint()
		if err != nil {
			return nil, err
		}
		if count > capacity {
			return nil, fmt.Errorf("%w: %d keys exceed capacity %d", ErrBadSnapshot, count, capacity)
		}
		st.Keys = make([]string, 0, count)
		st.Freqs = make([]int64, 0, count)
		for i := uint64(0); i < count; i++ {
			keyLen, err := readUvarint()
			if err != nil {
				return nil, err
			}
			if keyLen > uint64(len(rest)) {
				return nil, fmt.Errorf("%w: key length %d", ErrBadSnapshot, keyLen)
			}
			key := string(rest[:keyLen])
			rest = rest[keyLen:]
			f, n := binary.Varint(rest)
			if n <= 0 {
				return nil, fmt.Errorf("%w: frequency of key %d", ErrBadSnapshot, i)
			}
			rest = rest[n:]
			st.Keys = append(st.Keys, key)
			st.Freqs = append(st.Freqs, f)
		}
	default:
		return nil, fmt.Errorf("%w: kind %d", ErrBadSnapshot, kind)
	}
	return st, nil
}
