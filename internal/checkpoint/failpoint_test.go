package checkpoint_test

import (
	"errors"
	"os"
	"path/filepath"
	"strings"
	"syscall"
	"testing"

	"sprofile/internal/checkpoint"
	"sprofile/internal/failpoint"
)

// tryCheckpoint runs one checkpoint and returns its error instead of failing
// the test — the fault-injection tests assert on the failure.
func tryCheckpoint(s *checkpoint.Store, f *fakeProfile) error {
	return s.Checkpoint(func() (*checkpoint.State, uint64, error) {
		sealed, err := s.Rotate()
		if err != nil {
			return nil, 0, err
		}
		return f.state(), sealed, nil
	})
}

func listTmp(t *testing.T, dir string) []string {
	t.Helper()
	entries, err := os.ReadDir(dir)
	if err != nil {
		t.Fatal(err)
	}
	var tmp []string
	for _, e := range entries {
		if strings.HasSuffix(e.Name(), ".tmp") {
			tmp = append(tmp, e.Name())
		}
	}
	return tmp
}

// failedCheckpointScenario drives the shared shape of the snapshot-protocol
// fault tests: checkpoint once cleanly, append more, arm the given failpoint,
// assert the next checkpoint fails with wantErr (when non-nil) while leaving
// no .tmp debris and keeping the previous snapshot authoritative, then prove
// recovery still reproduces every acknowledged record and the next checkpoint
// succeeds.
func failedCheckpointScenario(t *testing.T, site, spec string, wantErr error) {
	t.Cleanup(failpoint.DisableAll)
	dir := filepath.Join(t.TempDir(), "store")
	s, f, _ := reopen(t, dir)
	appendN(t, s, f, "a", "b", "a")
	doCheckpoint(t, s, f)
	seqBefore, _ := s.SnapshotMeta()
	appendN(t, s, f, "c", "a")

	if err := failpoint.Enable(site, spec); err != nil {
		t.Fatal(err)
	}
	err := tryCheckpoint(s, f)
	if err == nil {
		t.Fatalf("checkpoint with %s=%s reported success", site, spec)
	}
	if wantErr != nil && !errors.Is(err, wantErr) {
		t.Fatalf("checkpoint error = %v, want %v", err, wantErr)
	}
	failpoint.DisableAll()

	// The failed attempt must leave no .tmp debris and must not have
	// advanced (or damaged) the published snapshot.
	if tmp := listTmp(t, dir); len(tmp) != 0 {
		t.Fatalf(".tmp debris after failed checkpoint: %v", tmp)
	}
	if seq, _ := s.SnapshotMeta(); seq != seqBefore {
		t.Fatalf("snapshot seq advanced to %d across a failed checkpoint (was %d)", seq, seqBefore)
	}

	// The store keeps appending and a later checkpoint succeeds.
	appendN(t, s, f, "d")
	doCheckpoint(t, s, f)
	if seq, _ := s.SnapshotMeta(); seq != seqBefore+1 {
		t.Fatalf("snapshot seq after retry = %d, want %d", seq, seqBefore+1)
	}
	if err := s.Close(); err != nil {
		t.Fatal(err)
	}

	// Recovery: the newest checksum-valid snapshot plus the WAL tail must
	// reproduce every acknowledged record, fault or no fault.
	s2, f2, _ := reopen(t, dir)
	defer s2.Close()
	wantCounts(t, f2, map[string]int64{"a": 3, "b": 1, "c": 1, "d": 1})
}

func TestCheckpointENOSPCOnSnapshotWrite(t *testing.T) {
	failedCheckpointScenario(t, "checkpoint.snap.write", "error(enospc)", syscall.ENOSPC)
}

func TestCheckpointENOSPCOnSnapshotSync(t *testing.T) {
	failedCheckpointScenario(t, "checkpoint.snap.sync", "error(enospc):count=1", syscall.ENOSPC)
}

func TestCheckpointTornSnapshotWrite(t *testing.T) {
	// The torn write persists half the snapshot bytes before erroring; the
	// protocol must treat it like any failure — remove the temp file, keep
	// the previous snapshot authoritative.
	failedCheckpointScenario(t, "checkpoint.snap.write", "torn:count=1", syscall.EIO)
}

func TestCheckpointRenameFailure(t *testing.T) {
	failedCheckpointScenario(t, "checkpoint.rename", "error(eio):count=1", syscall.EIO)
}

func TestCheckpointOpenFailure(t *testing.T) {
	failedCheckpointScenario(t, "checkpoint.snap.open", "error(enospc):count=1", syscall.ENOSPC)
}

// TestCrashDebrisTmpIsReaped simulates the crash window a failpoint cannot
// reach in-process — the process dying between writing the temp file and the
// error-path cleanup — and proves recovery reaps the orphaned .tmp while
// ignoring it for snapshot selection (it never counts as a snapshot).
func TestCrashDebrisTmpIsReaped(t *testing.T) {
	dir := filepath.Join(t.TempDir(), "store")
	s, f, _ := reopen(t, dir)
	appendN(t, s, f, "a", "b")
	doCheckpoint(t, s, f)
	if err := s.Close(); err != nil {
		t.Fatal(err)
	}

	// A half-written snapshot temp file, as a crash mid-checkpoint leaves it.
	debris := filepath.Join(dir, checkpoint.SnapshotName(99)+".tmp")
	if err := os.WriteFile(debris, []byte("half a snapshot"), 0o644); err != nil {
		t.Fatal(err)
	}

	s2, f2, _ := reopen(t, dir)
	defer s2.Close()
	wantCounts(t, f2, map[string]int64{"a": 1, "b": 1})
	if seq, _ := s2.SnapshotMeta(); seq != 1 {
		t.Fatalf("snapshot seq = %d, want 1 (debris must not count as a snapshot)", seq)
	}
	if tmp := listTmp(t, dir); len(tmp) != 0 {
		t.Fatalf(".tmp debris survived recovery: %v", tmp)
	}
}
