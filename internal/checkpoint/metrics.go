package checkpoint

import (
	"sprofile/internal/metrics"
)

// Checkpoint/recovery metric families, registered once at init. Like the WAL
// families they aggregate across every Store in the process.
var (
	mCheckpoints = metrics.Default().CounterVec("sprofile_checkpoints_total",
		"Checkpoint cycles by outcome.", "result")
	mCheckpointsOK     = mCheckpoints.With("ok")
	mCheckpointsErr    = mCheckpoints.With("error")
	mCheckpointSeconds = metrics.Default().Histogram("sprofile_checkpoint_seconds",
		"End-to-end checkpoint duration: capture, serialise, fsync, rename, prune.",
		metrics.ExpBuckets(1e-3, 2, 16))
	mLastCheckpointUnix = metrics.Default().Gauge("sprofile_checkpoint_last_success_unix_seconds",
		"Unix timestamp of the last successful checkpoint (0 = none this process).")
	mSnapshotSeq = metrics.Default().Gauge("sprofile_checkpoint_snapshot_seq",
		"Sequence number of the latest published snapshot.")
	mRecoveryReplayed = metrics.Default().Counter("sprofile_recovery_replayed_records_total",
		"WAL tail records replayed into profiles at startup (after snapshot restore).")
	mRecoverySnapshotEvents = metrics.Default().Counter("sprofile_recovery_snapshot_events_total",
		"Events restored from checkpoint snapshots at startup without replay.")
)
