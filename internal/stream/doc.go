// Package stream models the log streams the paper profiles and generates the
// synthetic workloads used throughout the evaluation.
//
// The paper (§3) builds its test streams by flipping a biased coin for the
// action — "add" with 70% probability, "remove" with 30% — and then drawing
// the object id from a per-action probability distribution:
//
//	Stream1: posPDF and negPDF both uniform on [1, m]
//	Stream2: posPDF normal(µ=2m/3, σ=m/6), negPDF normal(µ=m/3, σ=m/6)
//	Stream3: posPDF normal(µ=4m/5, σ=m),   negPDF lognormal(µ=3m/5, σ=m)
//
// This package reproduces those three streams exactly (up to the RNG) and
// adds the adversarial and skewed workloads used by the ablation benchmarks:
// Zipfian popularity, bursty hot sets, sawtooth add/remove phases, and
// worst-case block-churn streams.
//
// All generators are deterministic for a given seed. The random number
// generator is a self-contained splitmix64/xoshiro256** implementation so
// results do not depend on the Go release's math/rand behaviour.
//
// Streams can be materialised into []core.Tuple, iterated tuple-by-tuple
// without allocation, or serialised with the binary and CSV codecs in this
// package (cmd/streamgen writes files that cmd/sprofile and cmd/sprofiled can
// replay).
package stream
