package stream

import (
	"fmt"

	"sprofile/internal/core"
)

// Config describes one synthetic log stream in the paper's terms: a space of
// m object ids, an action coin with P(add) = AddProb, and two object-id
// distributions, one consulted on "add" and one on "remove".
type Config struct {
	// M is the number of distinct object ids (the paper's m).
	M int
	// AddProb is the probability that a tuple is an "add"; the paper uses 0.7.
	AddProb float64
	// PosPDF draws the object id for "add" tuples.
	PosPDF Distribution
	// NegPDF draws the object id for "remove" tuples.
	NegPDF Distribution
	// Seed makes the stream reproducible. Two generators with equal configs
	// and seeds emit identical tuple sequences.
	Seed uint64
	// Name labels the stream in benchmark output; optional.
	Name string
}

// Validate reports whether the configuration is complete and consistent.
func (c Config) Validate() error {
	if c.M <= 0 {
		return fmt.Errorf("stream: config needs M > 0, got %d", c.M)
	}
	if c.AddProb < 0 || c.AddProb > 1 {
		return fmt.Errorf("stream: AddProb %g out of [0,1]", c.AddProb)
	}
	if c.PosPDF == nil || c.NegPDF == nil {
		return fmt.Errorf("stream: config needs both PosPDF and NegPDF")
	}
	if c.PosPDF.M() != c.M {
		return fmt.Errorf("stream: PosPDF id space %d does not match M=%d", c.PosPDF.M(), c.M)
	}
	if c.NegPDF.M() != c.M {
		return fmt.Errorf("stream: NegPDF id space %d does not match M=%d", c.NegPDF.M(), c.M)
	}
	return nil
}

// Generator produces tuples of a synthetic log stream one at a time. It is a
// deterministic function of its Config; it is not safe for concurrent use.
type Generator struct {
	cfg Config

	actionRNG *RNG
	posRNG    *RNG
	negRNG    *RNG

	emitted uint64
}

// NewGenerator returns a generator for the given configuration.
func NewGenerator(cfg Config) (*Generator, error) {
	if err := cfg.Validate(); err != nil {
		return nil, err
	}
	root := NewRNG(cfg.Seed)
	return &Generator{
		cfg:       cfg,
		actionRNG: root.Split(),
		posRNG:    root.Split(),
		negRNG:    root.Split(),
	}, nil
}

// MustNewGenerator is NewGenerator for callers with a known-good config.
func MustNewGenerator(cfg Config) *Generator {
	g, err := NewGenerator(cfg)
	if err != nil {
		panic(err)
	}
	return g
}

// Config returns the generator's configuration.
func (g *Generator) Config() Config { return g.cfg }

// Name returns the stream's label (or a synthesised one if none was set).
func (g *Generator) Name() string {
	if g.cfg.Name != "" {
		return g.cfg.Name
	}
	return fmt.Sprintf("stream(m=%d,addProb=%.2f,pos=%s,neg=%s)",
		g.cfg.M, g.cfg.AddProb, g.cfg.PosPDF.Name(), g.cfg.NegPDF.Name())
}

// Emitted returns the number of tuples produced so far.
func (g *Generator) Emitted() uint64 { return g.emitted }

// Next produces the next tuple of the stream.
func (g *Generator) Next() core.Tuple {
	g.emitted++
	if g.actionRNG.Bernoulli(g.cfg.AddProb) {
		return core.Tuple{Object: g.cfg.PosPDF.Sample(g.posRNG), Action: core.ActionAdd}
	}
	return core.Tuple{Object: g.cfg.NegPDF.Sample(g.negRNG), Action: core.ActionRemove}
}

// Fill overwrites dst with the next len(dst) tuples and returns dst. Using a
// caller-provided buffer keeps large benchmark sweeps allocation-free.
func (g *Generator) Fill(dst []core.Tuple) []core.Tuple {
	for i := range dst {
		dst[i] = g.Next()
	}
	return dst
}

// Generate materialises the next n tuples of the stream.
func (g *Generator) Generate(n int) []core.Tuple {
	if n <= 0 {
		return nil
	}
	return g.Fill(make([]core.Tuple, n))
}

// Reset rewinds the generator to the beginning of its sequence. Stateful
// distributions that implement Rewinder are rewound as well.
func (g *Generator) Reset() {
	root := NewRNG(g.cfg.Seed)
	g.actionRNG = root.Split()
	g.posRNG = root.Split()
	g.negRNG = root.Split()
	g.emitted = 0
	if rw, ok := g.cfg.PosPDF.(Rewinder); ok {
		rw.Rewind()
	}
	if rw, ok := g.cfg.NegPDF.(Rewinder); ok {
		rw.Rewind()
	}
}

// ---------------------------------------------------------------------------
// The paper's three evaluation streams (§3)
// ---------------------------------------------------------------------------

// DefaultAddProb is the paper's add probability (70% add, 30% remove).
const DefaultAddProb = 0.7

// Stream1 reproduces the paper's Stream1: both posPDF and negPDF uniform on
// the id range.
func Stream1(m int, seed uint64) (*Generator, error) {
	pos, err := NewUniform(m)
	if err != nil {
		return nil, err
	}
	neg, err := NewUniform(m)
	if err != nil {
		return nil, err
	}
	return NewGenerator(Config{
		M:       m,
		AddProb: DefaultAddProb,
		PosPDF:  pos,
		NegPDF:  neg,
		Seed:    seed,
		Name:    "stream1",
	})
}

// Stream2 reproduces the paper's Stream2: posPDF normal(µ=2m/3, σ=m/6),
// negPDF normal(µ=m/3, σ=m/6).
func Stream2(m int, seed uint64) (*Generator, error) {
	fm := float64(m)
	pos, err := NewNormal(m, 2*fm/3, fm/6)
	if err != nil {
		return nil, err
	}
	neg, err := NewNormal(m, fm/3, fm/6)
	if err != nil {
		return nil, err
	}
	return NewGenerator(Config{
		M:       m,
		AddProb: DefaultAddProb,
		PosPDF:  pos,
		NegPDF:  neg,
		Seed:    seed,
		Name:    "stream2",
	})
}

// Stream3 reproduces the paper's Stream3: posPDF normal(µ=4m/5, σ=m), negPDF
// lognormal(µ=3m/5, σ=m).
func Stream3(m int, seed uint64) (*Generator, error) {
	fm := float64(m)
	pos, err := NewNormal(m, 4*fm/5, fm)
	if err != nil {
		return nil, err
	}
	neg, err := NewLogNormal(m, 3*fm/5, fm)
	if err != nil {
		return nil, err
	}
	return NewGenerator(Config{
		M:       m,
		AddProb: DefaultAddProb,
		PosPDF:  pos,
		NegPDF:  neg,
		Seed:    seed,
		Name:    "stream3",
	})
}

// PaperStream builds one of the paper's three streams by index (1, 2 or 3).
func PaperStream(index, m int, seed uint64) (*Generator, error) {
	switch index {
	case 1:
		return Stream1(m, seed)
	case 2:
		return Stream2(m, seed)
	case 3:
		return Stream3(m, seed)
	default:
		return nil, fmt.Errorf("stream: paper stream index must be 1, 2 or 3, got %d", index)
	}
}

// PaperStreamNames lists the labels of the three evaluation streams in order.
func PaperStreamNames() []string { return []string{"stream1", "stream2", "stream3"} }
