package stream

import (
	"fmt"
	"math"
	"sort"
)

// Distribution draws object ids from [0, m). The paper parameterises its
// streams by a posPDF (object chosen on "add") and a negPDF (object chosen on
// "remove"); any Distribution can play either role.
//
// Implementations clamp or redraw out-of-range samples so that every returned
// id is a valid dense object id.
type Distribution interface {
	// Sample draws one object id in [0, m) using rng.
	Sample(rng *RNG) int
	// M returns the object-id space size the distribution was built for.
	M() int
	// Name returns a short human-readable description, used in benchmark
	// labels and experiment tables.
	Name() string
}

// Rewinder is implemented by stateful distributions (such as RoundRobin) that
// must be rewound when the enclosing generator is reset.
type Rewinder interface {
	// Rewind restores the distribution to its initial state.
	Rewind()
}

// ---------------------------------------------------------------------------
// Uniform
// ---------------------------------------------------------------------------

// Uniform draws ids uniformly from [0, m) — the paper's Stream1 PDFs.
type Uniform struct{ m int }

// NewUniform returns a uniform distribution over [0, m).
func NewUniform(m int) (*Uniform, error) {
	if m <= 0 {
		return nil, fmt.Errorf("stream: uniform distribution needs m > 0, got %d", m)
	}
	return &Uniform{m: m}, nil
}

// Sample implements Distribution.
func (u *Uniform) Sample(rng *RNG) int { return rng.Intn(u.m) }

// M implements Distribution.
func (u *Uniform) M() int { return u.m }

// Name implements Distribution.
func (u *Uniform) Name() string { return fmt.Sprintf("uniform[0,%d)", u.m) }

// ---------------------------------------------------------------------------
// Normal (truncated to the id range by clamping, as the paper's generator
// implicitly does when a draw lands outside [1, m]).
// ---------------------------------------------------------------------------

// Normal draws ids from a normal distribution with the given mean and
// standard deviation, clamped to [0, m). Stream2 uses two of these; Stream3
// uses one for its posPDF.
type Normal struct {
	m     int
	mu    float64
	sigma float64
}

// NewNormal returns a clamped normal distribution over [0, m).
func NewNormal(m int, mu, sigma float64) (*Normal, error) {
	if m <= 0 {
		return nil, fmt.Errorf("stream: normal distribution needs m > 0, got %d", m)
	}
	if sigma < 0 {
		return nil, fmt.Errorf("stream: normal distribution needs sigma >= 0, got %g", sigma)
	}
	return &Normal{m: m, mu: mu, sigma: sigma}, nil
}

// Sample implements Distribution.
func (n *Normal) Sample(rng *RNG) int {
	v := n.mu + n.sigma*rng.NormFloat64()
	return clampID(v, n.m)
}

// M implements Distribution.
func (n *Normal) M() int { return n.m }

// Name implements Distribution.
func (n *Normal) Name() string {
	return fmt.Sprintf("normal(mu=%.3g,sigma=%.3g)[0,%d)", n.mu, n.sigma, n.m)
}

// ---------------------------------------------------------------------------
// LogNormal (Stream3's negPDF)
// ---------------------------------------------------------------------------

// LogNormal draws ids whose logarithm is normally distributed, scaled so that
// the location parameter is expressed directly in id units (matching the
// paper's "lognormal(µ=3m/5, σ=m)" phrasing), then clamped to [0, m).
type LogNormal struct {
	m     int
	mu    float64
	sigma float64
}

// NewLogNormal returns a clamped lognormal distribution over [0, m). mu and
// sigma are expressed in id units: a sample is
// exp(normal(ln(max(mu,1)), sigma/max(mu,1))) clamped to the range.
func NewLogNormal(m int, mu, sigma float64) (*LogNormal, error) {
	if m <= 0 {
		return nil, fmt.Errorf("stream: lognormal distribution needs m > 0, got %d", m)
	}
	if sigma < 0 {
		return nil, fmt.Errorf("stream: lognormal distribution needs sigma >= 0, got %g", sigma)
	}
	return &LogNormal{m: m, mu: mu, sigma: sigma}, nil
}

// Sample implements Distribution.
func (l *LogNormal) Sample(rng *RNG) int {
	scale := l.mu
	if scale < 1 {
		scale = 1
	}
	logMu := math.Log(scale)
	logSigma := l.sigma / scale
	v := math.Exp(logMu + logSigma*rng.NormFloat64())
	return clampID(v, l.m)
}

// M implements Distribution.
func (l *LogNormal) M() int { return l.m }

// Name implements Distribution.
func (l *LogNormal) Name() string {
	return fmt.Sprintf("lognormal(mu=%.3g,sigma=%.3g)[0,%d)", l.mu, l.sigma, l.m)
}

// ---------------------------------------------------------------------------
// Zipf
// ---------------------------------------------------------------------------

// Zipf draws ids with a Zipfian (power-law) popularity: id k has probability
// proportional to 1/(k+1)^s. It models the heavy-tailed object popularity of
// real social-network log streams and is used by the workload-sensitivity
// ablation.
//
// Sampling uses rejection-inversion (Hörmann & Derflinger), giving O(1)
// expected time per draw without a per-id table, so m can be 10^8 and beyond.
type Zipf struct {
	m int
	s float64

	// precomputed constants for rejection-inversion
	hIntegralX1    float64
	hIntegralN     float64
	sDiv           float64
	oneMinusS      float64
	oneDivOneMinus float64
}

// NewZipf returns a Zipf distribution over [0, m) with exponent s > 0,
// s != 1 handled exactly and s == 1 handled via the limit form.
func NewZipf(m int, s float64) (*Zipf, error) {
	if m <= 0 {
		return nil, fmt.Errorf("stream: zipf distribution needs m > 0, got %d", m)
	}
	if s <= 0 {
		return nil, fmt.Errorf("stream: zipf distribution needs s > 0, got %g", s)
	}
	z := &Zipf{m: m, s: s}
	z.oneMinusS = 1 - s
	if z.oneMinusS != 0 {
		z.oneDivOneMinus = 1 / z.oneMinusS
	}
	z.hIntegralX1 = z.hIntegral(1.5) - 1
	z.hIntegralN = z.hIntegral(float64(m) + 0.5)
	z.sDiv = 2 - z.hIntegralInv(z.hIntegral(2.5)-z.h(2))
	return z, nil
}

// h is the Zipf density kernel x^-s.
func (z *Zipf) h(x float64) float64 { return math.Exp(-z.s * math.Log(x)) }

// hIntegral is the antiderivative of h.
func (z *Zipf) hIntegral(x float64) float64 {
	logX := math.Log(x)
	if z.oneMinusS == 0 {
		return logX
	}
	return helperExpM1(z.oneMinusS*logX) * z.oneDivOneMinus
}

// hIntegralInv is the inverse of hIntegral.
func (z *Zipf) hIntegralInv(x float64) float64 {
	if z.oneMinusS == 0 {
		return math.Exp(x)
	}
	t := x * z.oneMinusS
	if t < -1 {
		t = -1
	}
	return math.Exp(helperLog1p(t) * z.oneDivOneMinus)
}

// helperExpM1 computes (exp(x)-1)/x with care near zero.
func helperExpM1(x float64) float64 {
	if math.Abs(x) > 1e-8 {
		return math.Expm1(x)
	}
	return x * (1 + x/2*(1+x/3))
}

// helperLog1p is log(1+x).
func helperLog1p(x float64) float64 { return math.Log1p(x) }

// Sample implements Distribution.
func (z *Zipf) Sample(rng *RNG) int {
	for {
		u := z.hIntegralN + rng.Float64()*(z.hIntegralX1-z.hIntegralN)
		x := z.hIntegralInv(u)
		k := math.Floor(x + 0.5)
		if k < 1 {
			k = 1
		}
		if k > float64(z.m) {
			k = float64(z.m)
		}
		if k-x <= z.sDiv || u >= z.hIntegral(k+0.5)-z.h(k) {
			return int(k) - 1
		}
	}
}

// M implements Distribution.
func (z *Zipf) M() int { return z.m }

// Name implements Distribution.
func (z *Zipf) Name() string { return fmt.Sprintf("zipf(s=%.3g)[0,%d)", z.s, z.m) }

// ---------------------------------------------------------------------------
// HotSet
// ---------------------------------------------------------------------------

// HotSet draws from a small "hot" subset of ids with probability hotProb and
// from the full range otherwise. It models flash-crowd behaviour (one live
// video channel absorbing most of the traffic) and stresses the block set
// with very tall, narrow frequency peaks.
type HotSet struct {
	m       int
	hot     int
	hotProb float64
}

// NewHotSet returns a hot-set distribution: hot ids are [0, hot), chosen with
// probability hotProb; otherwise the id is uniform over [0, m).
func NewHotSet(m, hot int, hotProb float64) (*HotSet, error) {
	if m <= 0 {
		return nil, fmt.Errorf("stream: hotset distribution needs m > 0, got %d", m)
	}
	if hot <= 0 || hot > m {
		return nil, fmt.Errorf("stream: hotset size %d out of range (m=%d)", hot, m)
	}
	if hotProb < 0 || hotProb > 1 {
		return nil, fmt.Errorf("stream: hotset probability %g out of [0,1]", hotProb)
	}
	return &HotSet{m: m, hot: hot, hotProb: hotProb}, nil
}

// Sample implements Distribution.
func (h *HotSet) Sample(rng *RNG) int {
	if rng.Bernoulli(h.hotProb) {
		return rng.Intn(h.hot)
	}
	return rng.Intn(h.m)
}

// M implements Distribution.
func (h *HotSet) M() int { return h.m }

// Name implements Distribution.
func (h *HotSet) Name() string {
	return fmt.Sprintf("hotset(hot=%d,p=%.2f)[0,%d)", h.hot, h.hotProb, h.m)
}

// ---------------------------------------------------------------------------
// Constant
// ---------------------------------------------------------------------------

// Constant always returns the same id. It is the worst case for structures
// keyed on frequency collisions (one object racing ahead of the pack) and is
// used by edge-case tests.
type Constant struct {
	m  int
	id int
}

// NewConstant returns a distribution that always yields id.
func NewConstant(m, id int) (*Constant, error) {
	if m <= 0 {
		return nil, fmt.Errorf("stream: constant distribution needs m > 0, got %d", m)
	}
	if id < 0 || id >= m {
		return nil, fmt.Errorf("stream: constant id %d out of range [0,%d)", id, m)
	}
	return &Constant{m: m, id: id}, nil
}

// Sample implements Distribution.
func (c *Constant) Sample(*RNG) int { return c.id }

// M implements Distribution.
func (c *Constant) M() int { return c.m }

// Name implements Distribution.
func (c *Constant) Name() string { return fmt.Sprintf("constant(%d)[0,%d)", c.id, c.m) }

// ---------------------------------------------------------------------------
// RoundRobin
// ---------------------------------------------------------------------------

// RoundRobin cycles through every id in order. Feeding a profiler a
// round-robin "add" stream keeps all frequencies within one of each other,
// which maximises block merging/splitting churn — the structural worst case
// for the block set.
type RoundRobin struct {
	m    int
	next int
}

// NewRoundRobin returns a distribution cycling 0, 1, ..., m-1, 0, 1, ...
func NewRoundRobin(m int) (*RoundRobin, error) {
	if m <= 0 {
		return nil, fmt.Errorf("stream: round-robin distribution needs m > 0, got %d", m)
	}
	return &RoundRobin{m: m}, nil
}

// Sample implements Distribution.
func (rr *RoundRobin) Sample(*RNG) int {
	id := rr.next
	rr.next++
	if rr.next == rr.m {
		rr.next = 0
	}
	return id
}

// Rewind resets the cycle back to id 0; Generator.Reset calls it so that
// round-robin streams replay identically.
func (rr *RoundRobin) Rewind() { rr.next = 0 }

// M implements Distribution.
func (rr *RoundRobin) M() int { return rr.m }

// Name implements Distribution.
func (rr *RoundRobin) Name() string { return fmt.Sprintf("roundrobin[0,%d)", rr.m) }

// ---------------------------------------------------------------------------
// Mixture
// ---------------------------------------------------------------------------

// Mixture draws from one of several component distributions according to
// fixed weights. It composes the primitives above into richer workloads
// (e.g. 90% Zipf over the catalogue + 10% uniform exploration).
type Mixture struct {
	m          int
	components []Distribution
	cumWeights []float64
}

// NewMixture returns a mixture of components with the given weights. All
// components must share the same id-space size. Weights must be positive; they
// are normalised internally.
func NewMixture(components []Distribution, weights []float64) (*Mixture, error) {
	if len(components) == 0 {
		return nil, fmt.Errorf("stream: mixture needs at least one component")
	}
	if len(components) != len(weights) {
		return nil, fmt.Errorf("stream: mixture has %d components but %d weights",
			len(components), len(weights))
	}
	m := components[0].M()
	var total float64
	for i, c := range components {
		if c.M() != m {
			return nil, fmt.Errorf("stream: mixture component %d has m=%d, want %d", i, c.M(), m)
		}
		if weights[i] <= 0 {
			return nil, fmt.Errorf("stream: mixture weight %d is %g, must be > 0", i, weights[i])
		}
		total += weights[i]
	}
	cum := make([]float64, len(weights))
	var acc float64
	for i, w := range weights {
		acc += w / total
		cum[i] = acc
	}
	cum[len(cum)-1] = 1 // guard against rounding
	return &Mixture{m: m, components: components, cumWeights: cum}, nil
}

// Sample implements Distribution.
func (mx *Mixture) Sample(rng *RNG) int {
	u := rng.Float64()
	i := sort.SearchFloat64s(mx.cumWeights, u)
	if i >= len(mx.components) {
		i = len(mx.components) - 1
	}
	return mx.components[i].Sample(rng)
}

// M implements Distribution.
func (mx *Mixture) M() int { return mx.m }

// Name implements Distribution.
func (mx *Mixture) Name() string {
	return fmt.Sprintf("mixture(%d components)[0,%d)", len(mx.components), mx.m)
}

// clampID converts a continuous draw to a valid dense id in [0, m).
func clampID(v float64, m int) int {
	if math.IsNaN(v) || v < 0 {
		return 0
	}
	if v >= float64(m) {
		return m - 1
	}
	return int(v)
}
