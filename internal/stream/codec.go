package stream

import (
	"bufio"
	"encoding/binary"
	"errors"
	"fmt"
	"io"
	"strconv"
	"strings"

	"sprofile/internal/core"
)

// The binary stream format is a compact append-only log:
//
//	magic   [4]byte  "SLG1"
//	m       uvarint  id-space size
//	tuples  repeated:
//	          header uvarint  (object<<1 | actionBit), actionBit 0=add 1=remove
//
// The CSV format is one "object,action" line per tuple with a header line
// "# m=<m>", where action is "add" or "remove". It is meant for small traces
// and interoperability with external tooling; the binary format is what the
// benchmark harness uses.

// ErrBadStream is returned when decoding a malformed stream file.
var ErrBadStream = errors.New("stream: invalid stream encoding")

var binaryMagic = [4]byte{'S', 'L', 'G', '1'}

// BinaryWriter encodes tuples into the binary stream format.
type BinaryWriter struct {
	w       *bufio.Writer
	m       int
	count   uint64
	started bool
	buf     [binary.MaxVarintLen64]byte
}

// NewBinaryWriter returns a writer that emits a stream over m object ids to w.
func NewBinaryWriter(w io.Writer, m int) (*BinaryWriter, error) {
	if m <= 0 {
		return nil, fmt.Errorf("stream: binary writer needs m > 0, got %d", m)
	}
	return &BinaryWriter{w: bufio.NewWriter(w), m: m}, nil
}

func (bw *BinaryWriter) writeHeader() error {
	if bw.started {
		return nil
	}
	bw.started = true
	if _, err := bw.w.Write(binaryMagic[:]); err != nil {
		return err
	}
	n := binary.PutUvarint(bw.buf[:], uint64(bw.m))
	_, err := bw.w.Write(bw.buf[:n])
	return err
}

// Write appends one tuple to the stream.
func (bw *BinaryWriter) Write(t core.Tuple) error {
	if err := bw.writeHeader(); err != nil {
		return err
	}
	if t.Object < 0 || t.Object >= bw.m {
		return fmt.Errorf("stream: tuple object %d outside [0,%d)", t.Object, bw.m)
	}
	var bit uint64
	switch t.Action {
	case core.ActionAdd:
		bit = 0
	case core.ActionRemove:
		bit = 1
	default:
		return fmt.Errorf("stream: tuple has invalid action %d", t.Action)
	}
	n := binary.PutUvarint(bw.buf[:], uint64(t.Object)<<1|bit)
	if _, err := bw.w.Write(bw.buf[:n]); err != nil {
		return err
	}
	bw.count++
	return nil
}

// WriteAll appends every tuple in order, stopping at the first error.
func (bw *BinaryWriter) WriteAll(tuples []core.Tuple) error {
	for _, t := range tuples {
		if err := bw.Write(t); err != nil {
			return err
		}
	}
	return nil
}

// Count returns the number of tuples written so far.
func (bw *BinaryWriter) Count() uint64 { return bw.count }

// Flush writes any buffered data to the underlying writer. An empty stream
// still gets its header so that readers can learn m.
func (bw *BinaryWriter) Flush() error {
	if err := bw.writeHeader(); err != nil {
		return err
	}
	return bw.w.Flush()
}

// BinaryReader decodes tuples from the binary stream format.
type BinaryReader struct {
	r     *bufio.Reader
	m     int
	count uint64
}

// NewBinaryReader reads the stream header from r and returns a reader for the
// remaining tuples.
func NewBinaryReader(r io.Reader) (*BinaryReader, error) {
	br := bufio.NewReader(r)
	var magic [4]byte
	if _, err := io.ReadFull(br, magic[:]); err != nil {
		return nil, fmt.Errorf("%w: %v", ErrBadStream, err)
	}
	if magic != binaryMagic {
		return nil, fmt.Errorf("%w: bad magic %q", ErrBadStream, magic[:])
	}
	m, err := binary.ReadUvarint(br)
	if err != nil {
		return nil, fmt.Errorf("%w: %v", ErrBadStream, err)
	}
	if m == 0 || m > uint64(core.MaxCapacity) {
		return nil, fmt.Errorf("%w: id space %d out of range", ErrBadStream, m)
	}
	return &BinaryReader{r: br, m: int(m)}, nil
}

// M returns the id-space size recorded in the stream header.
func (br *BinaryReader) M() int { return br.m }

// Count returns the number of tuples decoded so far.
func (br *BinaryReader) Count() uint64 { return br.count }

// Read returns the next tuple, or io.EOF after the last one.
func (br *BinaryReader) Read() (core.Tuple, error) {
	header, err := binary.ReadUvarint(br.r)
	if err != nil {
		if errors.Is(err, io.EOF) {
			return core.Tuple{}, io.EOF
		}
		return core.Tuple{}, fmt.Errorf("%w: %v", ErrBadStream, err)
	}
	obj := int(header >> 1)
	if obj >= br.m {
		return core.Tuple{}, fmt.Errorf("%w: object %d outside [0,%d)", ErrBadStream, obj, br.m)
	}
	action := core.ActionAdd
	if header&1 == 1 {
		action = core.ActionRemove
	}
	br.count++
	return core.Tuple{Object: obj, Action: action}, nil
}

// ReadAll decodes every remaining tuple.
func (br *BinaryReader) ReadAll() ([]core.Tuple, error) {
	var out []core.Tuple
	for {
		t, err := br.Read()
		if errors.Is(err, io.EOF) {
			return out, nil
		}
		if err != nil {
			return out, err
		}
		out = append(out, t)
	}
}

// EncodeBinary writes the whole tuple slice to w in the binary format.
func EncodeBinary(w io.Writer, m int, tuples []core.Tuple) error {
	bw, err := NewBinaryWriter(w, m)
	if err != nil {
		return err
	}
	if err := bw.WriteAll(tuples); err != nil {
		return err
	}
	return bw.Flush()
}

// DecodeBinary reads a whole binary stream from r.
func DecodeBinary(r io.Reader) (m int, tuples []core.Tuple, err error) {
	br, err := NewBinaryReader(r)
	if err != nil {
		return 0, nil, err
	}
	tuples, err = br.ReadAll()
	return br.M(), tuples, err
}

// ---------------------------------------------------------------------------
// CSV codec
// ---------------------------------------------------------------------------

// EncodeCSV writes the tuples as "# m=<m>" followed by one "object,action"
// line per tuple.
func EncodeCSV(w io.Writer, m int, tuples []core.Tuple) error {
	if m <= 0 {
		return fmt.Errorf("stream: CSV encoder needs m > 0, got %d", m)
	}
	bw := bufio.NewWriter(w)
	if _, err := fmt.Fprintf(bw, "# m=%d\n", m); err != nil {
		return err
	}
	for i, t := range tuples {
		if t.Object < 0 || t.Object >= m {
			return fmt.Errorf("stream: tuple %d object %d outside [0,%d)", i, t.Object, m)
		}
		if !t.Action.Valid() {
			return fmt.Errorf("stream: tuple %d has invalid action %d", i, t.Action)
		}
		if _, err := fmt.Fprintf(bw, "%d,%s\n", t.Object, t.Action); err != nil {
			return err
		}
	}
	return bw.Flush()
}

// DecodeCSV reads a CSV stream produced by EncodeCSV. Blank lines and lines
// starting with '#' (other than the mandatory m header) are ignored.
func DecodeCSV(r io.Reader) (m int, tuples []core.Tuple, err error) {
	sc := bufio.NewScanner(r)
	sc.Buffer(make([]byte, 0, 64*1024), 1<<20)
	lineNo := 0
	for sc.Scan() {
		lineNo++
		line := strings.TrimSpace(sc.Text())
		if line == "" {
			continue
		}
		if strings.HasPrefix(line, "#") {
			if idx := strings.Index(line, "m="); idx >= 0 && m == 0 {
				v, convErr := strconv.Atoi(strings.TrimSpace(line[idx+2:]))
				if convErr != nil || v <= 0 {
					return 0, nil, fmt.Errorf("%w: line %d: bad m header %q", ErrBadStream, lineNo, line)
				}
				m = v
			}
			continue
		}
		if m == 0 {
			return 0, nil, fmt.Errorf("%w: tuple line %d before \"# m=\" header", ErrBadStream, lineNo)
		}
		obj, action, parseErr := parseCSVLine(line)
		if parseErr != nil {
			return 0, nil, fmt.Errorf("%w: line %d: %v", ErrBadStream, lineNo, parseErr)
		}
		if obj < 0 || obj >= m {
			return 0, nil, fmt.Errorf("%w: line %d: object %d outside [0,%d)", ErrBadStream, lineNo, obj, m)
		}
		tuples = append(tuples, core.Tuple{Object: obj, Action: action})
	}
	if err := sc.Err(); err != nil {
		return 0, nil, fmt.Errorf("%w: %v", ErrBadStream, err)
	}
	if m == 0 {
		return 0, nil, fmt.Errorf("%w: missing \"# m=\" header", ErrBadStream)
	}
	return m, tuples, nil
}

func parseCSVLine(line string) (int, core.Action, error) {
	comma := strings.IndexByte(line, ',')
	if comma < 0 {
		return 0, 0, fmt.Errorf("missing comma in %q", line)
	}
	obj, err := strconv.Atoi(strings.TrimSpace(line[:comma]))
	if err != nil {
		return 0, 0, fmt.Errorf("bad object id in %q: %v", line, err)
	}
	switch strings.TrimSpace(line[comma+1:]) {
	case "add", "+", "1":
		return obj, core.ActionAdd, nil
	case "remove", "-", "-1":
		return obj, core.ActionRemove, nil
	default:
		return 0, 0, fmt.Errorf("bad action in %q", line)
	}
}
