package stream

import (
	"math"
	"math/bits"
)

// RNG is a small, fast, deterministic pseudo-random generator
// (xoshiro256** seeded through splitmix64). It is intentionally independent
// of math/rand so that workloads are bit-identical across Go releases, which
// keeps the benchmark results reproducible.
//
// An RNG is not safe for concurrent use; give each goroutine its own
// (use Split to derive independent streams).
type RNG struct {
	s [4]uint64

	// cached second normal variate from the last Box-Muller draw
	haveGauss bool
	gauss     float64
}

// NewRNG returns a generator seeded from seed. Any seed, including zero, is
// valid; distinct seeds yield statistically independent sequences.
func NewRNG(seed uint64) *RNG {
	r := &RNG{}
	r.Seed(seed)
	return r
}

// Seed re-initialises the generator state from seed.
func (r *RNG) Seed(seed uint64) {
	sm := seed
	next := func() uint64 {
		sm += 0x9e3779b97f4a7c15
		z := sm
		z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9
		z = (z ^ (z >> 27)) * 0x94d049bb133111eb
		return z ^ (z >> 31)
	}
	r.s[0] = next()
	r.s[1] = next()
	r.s[2] = next()
	r.s[3] = next()
	r.haveGauss = false
}

// Split derives a new generator whose sequence is independent of r's
// continued output. It is used to give the posPDF and negPDF their own
// sub-streams so that changing one distribution does not perturb the other.
func (r *RNG) Split() *RNG {
	return NewRNG(r.Uint64() ^ 0xa3ec647659359acd)
}

func rotl(x uint64, k uint) uint64 { return (x << k) | (x >> (64 - k)) }

// Uint64 returns the next 64 uniformly distributed bits.
func (r *RNG) Uint64() uint64 {
	result := rotl(r.s[1]*5, 7) * 9
	t := r.s[1] << 17
	r.s[2] ^= r.s[0]
	r.s[3] ^= r.s[1]
	r.s[1] ^= r.s[2]
	r.s[0] ^= r.s[3]
	r.s[2] ^= t
	r.s[3] = rotl(r.s[3], 45)
	return result
}

// Intn returns a uniformly distributed integer in [0, n). It panics if n <= 0.
func (r *RNG) Intn(n int) int {
	if n <= 0 {
		panic("stream: Intn called with non-positive n")
	}
	return int(r.Uint64n(uint64(n)))
}

// Int63n returns a uniformly distributed int64 in [0, n). It panics if n <= 0.
func (r *RNG) Int63n(n int64) int64 {
	if n <= 0 {
		panic("stream: Int63n called with non-positive n")
	}
	return int64(r.Uint64n(uint64(n)))
}

// Uint64n returns a uniformly distributed integer in [0, n) using Lemire's
// nearly-divisionless bounded rejection method.
func (r *RNG) Uint64n(n uint64) uint64 {
	if n == 0 {
		panic("stream: Uint64n called with zero bound")
	}
	// Lemire's bounded rejection method on the high 64 bits of the 128-bit
	// product keeps the result unbiased without a modulo in the common case.
	v := r.Uint64()
	hi, lo := bits.Mul64(v, n)
	if lo < n {
		threshold := -n % n
		for lo < threshold {
			v = r.Uint64()
			hi, lo = bits.Mul64(v, n)
		}
	}
	return hi
}

// Float64 returns a uniformly distributed float64 in [0, 1).
func (r *RNG) Float64() float64 {
	return float64(r.Uint64()>>11) / (1 << 53)
}

// Bernoulli returns true with probability p.
func (r *RNG) Bernoulli(p float64) bool {
	if p <= 0 {
		return false
	}
	if p >= 1 {
		return true
	}
	return r.Float64() < p
}

// NormFloat64 returns a standard normal variate (mean 0, stddev 1) using the
// Box-Muller transform with caching of the second variate.
func (r *RNG) NormFloat64() float64 {
	if r.haveGauss {
		r.haveGauss = false
		return r.gauss
	}
	var u, v, s float64
	for {
		u = 2*r.Float64() - 1
		v = 2*r.Float64() - 1
		s = u*u + v*v
		if s > 0 && s < 1 {
			break
		}
	}
	factor := math.Sqrt(-2 * math.Log(s) / s)
	r.gauss = v * factor
	r.haveGauss = true
	return u * factor
}

// ExpFloat64 returns an exponentially distributed variate with rate 1.
func (r *RNG) ExpFloat64() float64 {
	for {
		u := r.Float64()
		if u > 0 {
			return -math.Log(u)
		}
	}
}

// Perm returns a pseudo-random permutation of [0, n) (Fisher-Yates).
func (r *RNG) Perm(n int) []int {
	p := make([]int, n)
	for i := range p {
		p[i] = i
	}
	for i := n - 1; i > 0; i-- {
		j := r.Intn(i + 1)
		p[i], p[j] = p[j], p[i]
	}
	return p
}

// Shuffle pseudo-randomises the order of n elements using the provided swap
// function.
func (r *RNG) Shuffle(n int, swap func(i, j int)) {
	for i := n - 1; i > 0; i-- {
		j := r.Intn(i + 1)
		swap(i, j)
	}
}
