package stream

import (
	"bytes"
	"testing"

	"sprofile/internal/core"
)

// The fuzz targets below run their seed corpus as ordinary regression tests
// under `go test` and can be expanded with `go test -fuzz=FuzzX`. Each one
// checks the decoder never panics on arbitrary input and that anything it
// accepts satisfies the format's documented guarantees (objects in range,
// valid actions), and that re-encoding accepted input round-trips.

func FuzzDecodeBinary(f *testing.F) {
	// Seed with a valid stream, an empty stream, and a few corruptions.
	var valid bytes.Buffer
	g, _ := Stream1(16, 1)
	_ = EncodeBinary(&valid, 16, g.Generate(64))
	f.Add(valid.Bytes())
	var empty bytes.Buffer
	_ = EncodeBinary(&empty, 3, nil)
	f.Add(empty.Bytes())
	f.Add([]byte("SLG1"))
	f.Add([]byte("XXXXXXXX"))
	f.Add([]byte{})

	f.Fuzz(func(t *testing.T, data []byte) {
		m, tuples, err := DecodeBinary(bytes.NewReader(data))
		if err != nil {
			return
		}
		if m <= 0 {
			t.Fatalf("accepted stream with non-positive m=%d", m)
		}
		for i, tp := range tuples {
			if tp.Object < 0 || tp.Object >= m {
				t.Fatalf("tuple %d object %d outside [0,%d)", i, tp.Object, m)
			}
			if !tp.Action.Valid() {
				t.Fatalf("tuple %d has invalid action %d", i, tp.Action)
			}
		}
		// Round-trip what was accepted.
		var buf bytes.Buffer
		if err := EncodeBinary(&buf, m, tuples); err != nil {
			t.Fatalf("re-encoding accepted stream failed: %v", err)
		}
		m2, tuples2, err := DecodeBinary(&buf)
		if err != nil || m2 != m || len(tuples2) != len(tuples) {
			t.Fatalf("round-trip mismatch: m %d vs %d, %d vs %d tuples (%v)", m, m2, len(tuples), len(tuples2), err)
		}
	})
}

func FuzzDecodeCSV(f *testing.F) {
	f.Add("# m=5\n0,add\n1,remove\n")
	f.Add("# m=1\n")
	f.Add("0,add\n")
	f.Add("# m=abc\n")
	f.Add("")

	f.Fuzz(func(t *testing.T, data string) {
		m, tuples, err := DecodeCSV(bytes.NewReader([]byte(data)))
		if err != nil {
			return
		}
		if m <= 0 {
			t.Fatalf("accepted CSV with non-positive m=%d", m)
		}
		for i, tp := range tuples {
			if tp.Object < 0 || tp.Object >= m {
				t.Fatalf("tuple %d object %d outside [0,%d)", i, tp.Object, m)
			}
			if !tp.Action.Valid() {
				t.Fatalf("tuple %d has invalid action %d", i, tp.Action)
			}
		}
	})
}

func FuzzEventLog(f *testing.F) {
	f.Add("2026-06-16T12:00:00Z,video-1,add\n1750075200,alice,+\n")
	f.Add("# comment\n\n")
	f.Add("garbage")
	f.Add(",,,")

	f.Fuzz(func(t *testing.T, data string) {
		events, err := NewEventLogReader(bytes.NewReader([]byte(data))).ReadAll()
		if err != nil {
			return
		}
		for i, ev := range events {
			if ev.Key == "" {
				t.Fatalf("event %d accepted with empty key", i)
			}
			if !ev.Action.Valid() {
				t.Fatalf("event %d accepted with invalid action %d", i, ev.Action)
			}
		}
	})
}

// FuzzProfileOpSequence drives the core profile with an arbitrary operation
// byte string and checks the structural invariants afterwards: one byte per
// operation, low bit selects add/remove, remaining bits select the object.
func FuzzProfileOpSequence(f *testing.F) {
	f.Add([]byte{0, 1, 2, 3, 4, 5, 6, 7})
	f.Add([]byte{255, 254, 1, 0, 128})
	f.Add([]byte{})

	f.Fuzz(func(t *testing.T, ops []byte) {
		const m = 64
		p := core.MustNew(m)
		for _, op := range ops {
			obj := int(op>>1) % m
			if op&1 == 0 {
				if err := p.Add(obj); err != nil {
					t.Fatal(err)
				}
			} else if err := p.Remove(obj); err != nil {
				t.Fatal(err)
			}
		}
		if err := p.CheckInvariants(); err != nil {
			t.Fatalf("invariants violated after %d ops: %v", len(ops), err)
		}
	})
}
