package stream

import (
	"bytes"
	"errors"
	"io"
	"strings"
	"testing"
	"time"

	"sprofile/internal/core"
	"sprofile/internal/idmap"
)

func TestEventLogParseFormats(t *testing.T) {
	input := strings.Join([]string{
		"# comment line",
		"",
		"2026-06-16T12:00:00Z,video-1,add",
		"1750075200,user:alice,+",
		"1750075200123,user:bob,remove",
		"2026-06-16T12:00:03Z,video-1,-",
	}, "\n")
	events, err := NewEventLogReader(strings.NewReader(input)).ReadAll()
	if err != nil {
		t.Fatal(err)
	}
	if len(events) != 4 {
		t.Fatalf("parsed %d events, want 4", len(events))
	}
	if events[0].Key != "video-1" || events[0].Action != core.ActionAdd {
		t.Fatalf("event 0 = %+v", events[0])
	}
	if !events[0].At.Equal(time.Date(2026, 6, 16, 12, 0, 0, 0, time.UTC)) {
		t.Fatalf("event 0 time = %v", events[0].At)
	}
	if events[1].Key != "user:alice" || events[1].Action != core.ActionAdd {
		t.Fatalf("event 1 = %+v", events[1])
	}
	if events[1].At.Unix() != 1750075200 {
		t.Fatalf("event 1 unix-seconds time = %v", events[1].At)
	}
	if events[2].Action != core.ActionRemove {
		t.Fatalf("event 2 = %+v", events[2])
	}
	if events[2].At.UnixMilli() != 1750075200123 {
		t.Fatalf("event 2 unix-millis time = %v", events[2].At)
	}
	if events[3].Action != core.ActionRemove {
		t.Fatalf("event 3 = %+v", events[3])
	}
}

func TestEventLogParseErrors(t *testing.T) {
	cases := map[string]string{
		"no commas":       "2026-06-16T12:00:00Z video add",
		"one comma":       "2026-06-16T12:00:00Z,video",
		"empty key":       "2026-06-16T12:00:00Z,,add",
		"bad timestamp":   "yesterday,video,add",
		"empty timestamp": ",video,add",
		"bad action":      "2026-06-16T12:00:00Z,video,maybe",
	}
	for name, line := range cases {
		_, err := NewEventLogReader(strings.NewReader(line)).ReadAll()
		if !errors.Is(err, ErrBadEventLog) {
			t.Fatalf("%s: error %v, want ErrBadEventLog", name, err)
		}
	}
}

func TestEventLogStreamingNext(t *testing.T) {
	input := "2026-06-16T12:00:00Z,a,add\n2026-06-16T12:00:01Z,b,remove\n"
	r := NewEventLogReader(strings.NewReader(input))
	first, err := r.Next()
	if err != nil || first.Key != "a" {
		t.Fatalf("first = %+v, %v", first, err)
	}
	second, err := r.Next()
	if err != nil || second.Key != "b" {
		t.Fatalf("second = %+v, %v", second, err)
	}
	if _, err := r.Next(); !errors.Is(err, io.EOF) {
		t.Fatalf("expected EOF, got %v", err)
	}
}

func TestEventLogWriteRoundTrip(t *testing.T) {
	events := []KeyedEvent{
		{At: time.Date(2026, 6, 16, 10, 0, 0, 0, time.UTC), Key: "x", Action: core.ActionAdd},
		{At: time.Date(2026, 6, 16, 10, 0, 5, 0, time.UTC), Key: "y", Action: core.ActionRemove},
		{At: time.Date(2026, 6, 16, 10, 0, 9, 0, time.UTC), Key: "x", Action: core.ActionAdd},
	}
	var buf bytes.Buffer
	if err := WriteEventLog(&buf, events); err != nil {
		t.Fatal(err)
	}
	decoded, err := NewEventLogReader(&buf).ReadAll()
	if err != nil {
		t.Fatal(err)
	}
	if len(decoded) != len(events) {
		t.Fatalf("decoded %d events", len(decoded))
	}
	for i := range events {
		if !decoded[i].At.Equal(events[i].At) || decoded[i].Key != events[i].Key || decoded[i].Action != events[i].Action {
			t.Fatalf("event %d = %+v, want %+v", i, decoded[i], events[i])
		}
	}
}

func TestEventLogWriteValidation(t *testing.T) {
	var buf bytes.Buffer
	if err := WriteEventLog(&buf, []KeyedEvent{{Key: "", Action: core.ActionAdd}}); err == nil {
		t.Fatalf("accepted empty key")
	}
	if err := WriteEventLog(&buf, []KeyedEvent{{Key: "a,b", Action: core.ActionAdd}}); err == nil {
		t.Fatalf("accepted key with comma")
	}
	if err := WriteEventLog(&buf, []KeyedEvent{{Key: "a", Action: 0}}); err == nil {
		t.Fatalf("accepted invalid action")
	}
}

func TestDensify(t *testing.T) {
	events := []KeyedEvent{
		{Key: "alice", Action: core.ActionAdd},
		{Key: "bob", Action: core.ActionAdd},
		{Key: "alice", Action: core.ActionAdd},
		{Key: "bob", Action: core.ActionRemove},
	}
	tuples, mapper, err := Densify(events, 10)
	if err != nil {
		t.Fatal(err)
	}
	if len(tuples) != 4 {
		t.Fatalf("densified %d tuples", len(tuples))
	}
	if tuples[0].Object != tuples[2].Object {
		t.Fatalf("same key mapped to different ids: %d vs %d", tuples[0].Object, tuples[2].Object)
	}
	if tuples[0].Object == tuples[1].Object {
		t.Fatalf("different keys mapped to the same id")
	}
	if tuples[3].Action != core.ActionRemove {
		t.Fatalf("action not preserved")
	}
	key, ok := mapper.Key(tuples[1].Object)
	if !ok || key != "bob" {
		t.Fatalf("mapper.Key = %q, %v", key, ok)
	}

	// Capacity exhaustion surfaces idmap.ErrFull.
	if _, _, err := Densify(events, 1); !errors.Is(err, idmap.ErrFull) {
		t.Fatalf("Densify over capacity: %v", err)
	}
}

func TestDensifyDrivesProfile(t *testing.T) {
	input := strings.Join([]string{
		"2026-06-16T12:00:00Z,video-7,add",
		"2026-06-16T12:00:01Z,video-7,add",
		"2026-06-16T12:00:02Z,video-9,add",
		"2026-06-16T12:00:03Z,video-9,remove",
	}, "\n")
	events, err := NewEventLogReader(strings.NewReader(input)).ReadAll()
	if err != nil {
		t.Fatal(err)
	}
	tuples, mapper, err := Densify(events, 16)
	if err != nil {
		t.Fatal(err)
	}
	p := core.MustNew(16)
	if _, err := p.ApplyAll(tuples); err != nil {
		t.Fatal(err)
	}
	mode, _, err := p.Mode()
	if err != nil {
		t.Fatal(err)
	}
	key, ok := mapper.Key(mode.Object)
	if !ok || key != "video-7" || mode.Frequency != 2 {
		t.Fatalf("mode = %+v (key %q)", mode, key)
	}
}
