package stream

import (
	"testing"

	"sprofile/internal/core"
)

func checkWorkloadBasics(t *testing.T, w Workload, n int) []core.Tuple {
	t.Helper()
	m := w.M()
	if m <= 0 {
		t.Fatalf("%s: M() = %d", w.Name(), m)
	}
	tuples := make([]core.Tuple, n)
	for i := range tuples {
		tp := w.Next()
		if tp.Object < 0 || tp.Object >= m {
			t.Fatalf("%s: tuple %d object %d outside [0,%d)", w.Name(), i, tp.Object, m)
		}
		if !tp.Action.Valid() {
			t.Fatalf("%s: tuple %d invalid action %d", w.Name(), i, tp.Action)
		}
		tuples[i] = tp
	}
	return tuples
}

func TestNamedWorkloadsProduceValidTuples(t *testing.T) {
	for _, name := range WorkloadNames() {
		w, err := NamedWorkload(name, 500, 42)
		if err != nil {
			t.Fatalf("NamedWorkload(%q): %v", name, err)
		}
		if w.Name() == "" {
			t.Fatalf("workload %q has empty Name()", name)
		}
		checkWorkloadBasics(t, w, 5000)
	}
}

func TestNamedWorkloadUnknown(t *testing.T) {
	if _, err := NamedWorkload("nope", 100, 1); err == nil {
		t.Fatalf("NamedWorkload accepted unknown name")
	}
}

func TestNamedWorkloadsResetReproduce(t *testing.T) {
	for _, name := range WorkloadNames() {
		w, err := NamedWorkload(name, 300, 7)
		if err != nil {
			t.Fatal(err)
		}
		first := Take(w, 1000)
		w.Reset()
		second := Take(w, 1000)
		for i := range first {
			if first[i] != second[i] {
				t.Fatalf("workload %q: tuple %d differs after Reset", name, i)
			}
		}
	}
}

func TestBurstWorkloadConcentratesDuringBursts(t *testing.T) {
	w, err := NewBurstWorkload(10_000, 1000, 1000, 3)
	if err != nil {
		t.Fatal(err)
	}
	// Skip the calm phase, then sample the burst phase.
	for i := 0; i < 1000; i++ {
		w.Next()
	}
	hot := 0
	const burstSamples = 1000
	for i := 0; i < burstSamples; i++ {
		tp := w.Next()
		if tp.Action == core.ActionAdd && tp.Object < 100 {
			hot++
		}
	}
	if hot < burstSamples/2 {
		t.Fatalf("burst phase sent only %d/%d adds to the hot set", hot, burstSamples)
	}
}

func TestBurstWorkloadRejectsBadParams(t *testing.T) {
	if _, err := NewBurstWorkload(0, 10, 10, 1); err == nil {
		t.Fatalf("accepted m=0")
	}
	if _, err := NewBurstWorkload(10, 0, 10, 1); err == nil {
		t.Fatalf("accepted burstEvery=0")
	}
	if _, err := NewBurstWorkload(10, 10, 0, 1); err == nil {
		t.Fatalf("accepted burstLength=0")
	}
}

func TestSawtoothAlternatesPhases(t *testing.T) {
	w, err := NewSawtoothWorkload(100, 50, 1)
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 50; i++ {
		if tp := w.Next(); tp.Action != core.ActionAdd {
			t.Fatalf("tuple %d in first phase is %v, want add", i, tp.Action)
		}
	}
	for i := 0; i < 50; i++ {
		if tp := w.Next(); tp.Action != core.ActionRemove {
			t.Fatalf("tuple %d in second phase is %v, want remove", i, tp.Action)
		}
	}
	// Third phase wraps around to adds again.
	if tp := w.Next(); tp.Action != core.ActionAdd {
		t.Fatalf("phase did not wrap back to add")
	}
}

func TestSawtoothRejectsBadParams(t *testing.T) {
	if _, err := NewSawtoothWorkload(0, 10, 1); err == nil {
		t.Fatalf("accepted m=0")
	}
	if _, err := NewSawtoothWorkload(10, 0, 1); err == nil {
		t.Fatalf("accepted period=0")
	}
}

func TestDrainWorkloadPhases(t *testing.T) {
	w, err := NewDrainWorkload(10, 20)
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 20; i++ {
		if tp := w.Next(); tp.Action != core.ActionAdd {
			t.Fatalf("warmup tuple %d is %v, want add", i, tp.Action)
		}
	}
	for i := 0; i < 50; i++ {
		if tp := w.Next(); tp.Action != core.ActionRemove {
			t.Fatalf("drain tuple %d is %v, want remove", i, tp.Action)
		}
	}
}

func TestDrainWorkloadNetZeroAfterBalancedRun(t *testing.T) {
	const m = 8
	w, _ := NewDrainWorkload(m, m)
	p := core.MustNew(m)
	for i := 0; i < 2*m; i++ {
		if err := p.Apply(w.Next()); err != nil {
			t.Fatal(err)
		}
	}
	if p.Total() != 0 {
		t.Fatalf("after m adds and m removes round-robin, total = %d, want 0", p.Total())
	}
	if err := p.CheckInvariants(); err != nil {
		t.Fatal(err)
	}
}

func TestDrainWorkloadRejectsBadParams(t *testing.T) {
	if _, err := NewDrainWorkload(0, 5); err == nil {
		t.Fatalf("accepted m=0")
	}
	if _, err := NewDrainWorkload(5, -1); err == nil {
		t.Fatalf("accepted negative warmup")
	}
}

func TestReplayWorkloadCycles(t *testing.T) {
	src := []core.Tuple{
		{Object: 0, Action: core.ActionAdd},
		{Object: 1, Action: core.ActionAdd},
		{Object: 0, Action: core.ActionRemove},
	}
	w, err := NewReplayWorkload("trace", 2, src)
	if err != nil {
		t.Fatal(err)
	}
	if w.Len() != 3 {
		t.Fatalf("Len() = %d, want 3", w.Len())
	}
	for cycle := 0; cycle < 3; cycle++ {
		for i, want := range src {
			if got := w.Next(); got != want {
				t.Fatalf("cycle %d tuple %d = %+v, want %+v", cycle, i, got, want)
			}
		}
	}
}

func TestReplayWorkloadValidatesInput(t *testing.T) {
	good := []core.Tuple{{Object: 0, Action: core.ActionAdd}}
	if _, err := NewReplayWorkload("t", 0, good); err == nil {
		t.Fatalf("accepted m=0")
	}
	if _, err := NewReplayWorkload("t", 1, nil); err == nil {
		t.Fatalf("accepted empty trace")
	}
	if _, err := NewReplayWorkload("t", 1, []core.Tuple{{Object: 5, Action: core.ActionAdd}}); err == nil {
		t.Fatalf("accepted out-of-range object")
	}
	if _, err := NewReplayWorkload("t", 1, []core.Tuple{{Object: 0, Action: 0}}); err == nil {
		t.Fatalf("accepted invalid action")
	}
}

func TestTakeLength(t *testing.T) {
	g, _ := Stream1(50, 1)
	if got := len(Take(g, 123)); got != 123 {
		t.Fatalf("Take returned %d tuples, want 123", got)
	}
}
