package stream

import (
	"fmt"

	"sprofile/internal/core"
)

// Workload is a named tuple source used by the benchmark harness and the
// ablation studies. Generator satisfies it; the phase-based workloads below
// (burst, sawtooth, drain) provide richer temporal structure than a single
// stationary Config can express.
type Workload interface {
	// Next returns the next tuple of the workload.
	Next() core.Tuple
	// Name labels the workload in benchmark output.
	Name() string
	// M returns the number of distinct object ids.
	M() int
	// Reset rewinds the workload to its first tuple.
	Reset()
}

// Compile-time checks.
var (
	_ Workload = (*Generator)(nil)
	_ Workload = (*BurstWorkload)(nil)
	_ Workload = (*SawtoothWorkload)(nil)
	_ Workload = (*DrainWorkload)(nil)
	_ Workload = (*ReplayWorkload)(nil)
)

// M implements Workload for Generator.
func (g *Generator) M() int { return g.cfg.M }

// ---------------------------------------------------------------------------
// Burst
// ---------------------------------------------------------------------------

// BurstWorkload alternates between a calm phase (uniform traffic over the
// whole id space) and a burst phase in which a small hot set receives almost
// all the adds — a flash crowd. Burst phases create a tall, thin spike in the
// sorted frequency array, which is the most lopsided block shape S-Profile
// encounters in practice.
type BurstWorkload struct {
	m           int
	burstEvery  int
	burstLength int
	seed        uint64

	calm  *Generator
	burst *Generator
	pos   int
}

// NewBurstWorkload returns a burst workload over m ids: after every
// burstEvery calm tuples, burstLength bursty tuples follow.
func NewBurstWorkload(m, burstEvery, burstLength int, seed uint64) (*BurstWorkload, error) {
	if m <= 0 {
		return nil, fmt.Errorf("stream: burst workload needs m > 0, got %d", m)
	}
	if burstEvery <= 0 || burstLength <= 0 {
		return nil, fmt.Errorf("stream: burst workload needs positive phase lengths, got %d/%d",
			burstEvery, burstLength)
	}
	w := &BurstWorkload{m: m, burstEvery: burstEvery, burstLength: burstLength, seed: seed}
	if err := w.build(); err != nil {
		return nil, err
	}
	return w, nil
}

func (w *BurstWorkload) build() error {
	calm, err := Stream1(w.m, w.seed)
	if err != nil {
		return err
	}
	hot := w.m / 100
	if hot < 1 {
		hot = 1
	}
	hotDist, err := NewHotSet(w.m, hot, 0.95)
	if err != nil {
		return err
	}
	negDist, err := NewUniform(w.m)
	if err != nil {
		return err
	}
	burst, err := NewGenerator(Config{
		M:       w.m,
		AddProb: 0.9,
		PosPDF:  hotDist,
		NegPDF:  negDist,
		Seed:    w.seed + 1,
		Name:    "burst-phase",
	})
	if err != nil {
		return err
	}
	w.calm, w.burst = calm, burst
	w.pos = 0
	return nil
}

// Next implements Workload.
func (w *BurstWorkload) Next() core.Tuple {
	period := w.burstEvery + w.burstLength
	phase := w.pos % period
	w.pos++
	if phase < w.burstEvery {
		return w.calm.Next()
	}
	return w.burst.Next()
}

// Name implements Workload.
func (w *BurstWorkload) Name() string {
	return fmt.Sprintf("burst(every=%d,len=%d)", w.burstEvery, w.burstLength)
}

// M implements Workload.
func (w *BurstWorkload) M() int { return w.m }

// Reset implements Workload.
func (w *BurstWorkload) Reset() {
	// build cannot fail once it has succeeded in the constructor.
	_ = w.build()
}

// ---------------------------------------------------------------------------
// Sawtooth
// ---------------------------------------------------------------------------

// SawtoothWorkload alternates between an all-add phase and an all-remove
// phase over a uniformly chosen id. Frequencies rise together and fall
// together, keeping the frequency range narrow and forcing the block set
// through constant merge/split churn — the structural stress test of the
// block representation.
type SawtoothWorkload struct {
	m      int
	period int
	seed   uint64

	rng *RNG
	pos int
}

// NewSawtoothWorkload returns a sawtooth workload over m ids: period adds
// followed by period removes, repeating.
func NewSawtoothWorkload(m, period int, seed uint64) (*SawtoothWorkload, error) {
	if m <= 0 {
		return nil, fmt.Errorf("stream: sawtooth workload needs m > 0, got %d", m)
	}
	if period <= 0 {
		return nil, fmt.Errorf("stream: sawtooth workload needs period > 0, got %d", period)
	}
	return &SawtoothWorkload{m: m, period: period, seed: seed, rng: NewRNG(seed)}, nil
}

// Next implements Workload.
func (w *SawtoothWorkload) Next() core.Tuple {
	phase := w.pos % (2 * w.period)
	w.pos++
	obj := w.rng.Intn(w.m)
	if phase < w.period {
		return core.Tuple{Object: obj, Action: core.ActionAdd}
	}
	return core.Tuple{Object: obj, Action: core.ActionRemove}
}

// Name implements Workload.
func (w *SawtoothWorkload) Name() string { return fmt.Sprintf("sawtooth(period=%d)", w.period) }

// M implements Workload.
func (w *SawtoothWorkload) M() int { return w.m }

// Reset implements Workload.
func (w *SawtoothWorkload) Reset() {
	w.rng = NewRNG(w.seed)
	w.pos = 0
}

// ---------------------------------------------------------------------------
// Drain
// ---------------------------------------------------------------------------

// DrainWorkload first adds every id round-robin for warmup tuples, then
// removes ids round-robin forever. With strict non-negative profiles this is
// the workload that exercises the error path; with the default (paper)
// semantics it drives frequencies negative, exercising the part of the
// frequency domain that heap- and tree-based baselines rarely see.
type DrainWorkload struct {
	m      int
	warmup int

	pos int
}

// NewDrainWorkload returns a drain workload: warmup adds, then removes only.
func NewDrainWorkload(m, warmup int) (*DrainWorkload, error) {
	if m <= 0 {
		return nil, fmt.Errorf("stream: drain workload needs m > 0, got %d", m)
	}
	if warmup < 0 {
		return nil, fmt.Errorf("stream: drain workload needs warmup >= 0, got %d", warmup)
	}
	return &DrainWorkload{m: m, warmup: warmup}, nil
}

// Next implements Workload.
func (w *DrainWorkload) Next() core.Tuple {
	obj := w.pos % w.m
	action := core.ActionRemove
	if w.pos < w.warmup {
		action = core.ActionAdd
	}
	w.pos++
	return core.Tuple{Object: obj, Action: action}
}

// Name implements Workload.
func (w *DrainWorkload) Name() string { return fmt.Sprintf("drain(warmup=%d)", w.warmup) }

// M implements Workload.
func (w *DrainWorkload) M() int { return w.m }

// Reset implements Workload.
func (w *DrainWorkload) Reset() { w.pos = 0 }

// ---------------------------------------------------------------------------
// Replay
// ---------------------------------------------------------------------------

// ReplayWorkload cycles over a pre-materialised tuple slice. It adapts
// recorded or decoded streams (see the codecs in this package) to the
// Workload interface, and lets benchmarks exclude generation cost from the
// measured loop.
type ReplayWorkload struct {
	name   string
	m      int
	tuples []core.Tuple
	pos    int
}

// NewReplayWorkload wraps tuples as a workload over m ids. The slice is not
// copied; callers must not mutate it while the workload is in use.
func NewReplayWorkload(name string, m int, tuples []core.Tuple) (*ReplayWorkload, error) {
	if m <= 0 {
		return nil, fmt.Errorf("stream: replay workload needs m > 0, got %d", m)
	}
	if len(tuples) == 0 {
		return nil, fmt.Errorf("stream: replay workload needs at least one tuple")
	}
	for i, t := range tuples {
		if t.Object < 0 || t.Object >= m {
			return nil, fmt.Errorf("stream: replay tuple %d references object %d outside [0,%d)", i, t.Object, m)
		}
		if !t.Action.Valid() {
			return nil, fmt.Errorf("stream: replay tuple %d has invalid action %d", i, t.Action)
		}
	}
	return &ReplayWorkload{name: name, m: m, tuples: tuples}, nil
}

// Next implements Workload.
func (w *ReplayWorkload) Next() core.Tuple {
	t := w.tuples[w.pos]
	w.pos++
	if w.pos == len(w.tuples) {
		w.pos = 0
	}
	return t
}

// Name implements Workload.
func (w *ReplayWorkload) Name() string { return w.name }

// M implements Workload.
func (w *ReplayWorkload) M() int { return w.m }

// Reset implements Workload.
func (w *ReplayWorkload) Reset() { w.pos = 0 }

// Len returns the number of tuples before the replay wraps around.
func (w *ReplayWorkload) Len() int { return len(w.tuples) }

// ---------------------------------------------------------------------------
// Helpers
// ---------------------------------------------------------------------------

// Take materialises the next n tuples of any workload.
func Take(w Workload, n int) []core.Tuple {
	out := make([]core.Tuple, n)
	for i := range out {
		out[i] = w.Next()
	}
	return out
}

// NamedWorkload builds one of the named workloads used by the
// workload-sensitivity ablation: "stream1", "stream2", "stream3", "zipf",
// "burst", "sawtooth", "drain", "roundrobin".
func NamedWorkload(name string, m int, seed uint64) (Workload, error) {
	switch name {
	case "stream1":
		return Stream1(m, seed)
	case "stream2":
		return Stream2(m, seed)
	case "stream3":
		return Stream3(m, seed)
	case "zipf":
		pos, err := NewZipf(m, 1.1)
		if err != nil {
			return nil, err
		}
		neg, err := NewZipf(m, 1.1)
		if err != nil {
			return nil, err
		}
		return NewGenerator(Config{
			M: m, AddProb: DefaultAddProb, PosPDF: pos, NegPDF: neg, Seed: seed, Name: "zipf",
		})
	case "burst":
		return NewBurstWorkload(m, 10_000, 2_000, seed)
	case "sawtooth":
		return NewSawtoothWorkload(m, 1_000, seed)
	case "drain":
		return NewDrainWorkload(m, m)
	case "roundrobin":
		pos, err := NewRoundRobin(m)
		if err != nil {
			return nil, err
		}
		neg, err := NewRoundRobin(m)
		if err != nil {
			return nil, err
		}
		return NewGenerator(Config{
			M: m, AddProb: DefaultAddProb, PosPDF: pos, NegPDF: neg, Seed: seed, Name: "roundrobin",
		})
	default:
		return nil, fmt.Errorf("stream: unknown workload %q", name)
	}
}

// WorkloadNames lists the names accepted by NamedWorkload.
func WorkloadNames() []string {
	return []string{"stream1", "stream2", "stream3", "zipf", "burst", "sawtooth", "drain", "roundrobin"}
}
