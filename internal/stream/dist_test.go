package stream

import (
	"math"
	"testing"
	"testing/quick"
)

// sampleMany draws n samples and returns them plus basic statistics.
func sampleMany(t *testing.T, d Distribution, n int, seed uint64) (samples []int, mean float64) {
	t.Helper()
	rng := NewRNG(seed)
	samples = make([]int, n)
	var sum float64
	for i := range samples {
		v := d.Sample(rng)
		if v < 0 || v >= d.M() {
			t.Fatalf("%s: sample %d out of [0,%d)", d.Name(), v, d.M())
		}
		samples[i] = v
		sum += float64(v)
	}
	return samples, sum / float64(n)
}

func TestUniformRangeAndMean(t *testing.T) {
	const m = 1000
	u, err := NewUniform(m)
	if err != nil {
		t.Fatal(err)
	}
	_, mean := sampleMany(t, u, 100_000, 1)
	want := float64(m-1) / 2
	if math.Abs(mean-want) > 10 {
		t.Fatalf("uniform mean %.1f, want ~%.1f", mean, want)
	}
}

func TestUniformRejectsBadM(t *testing.T) {
	for _, m := range []int{0, -1} {
		if _, err := NewUniform(m); err == nil {
			t.Fatalf("NewUniform(%d) accepted invalid m", m)
		}
	}
}

func TestUniformCoversAllIDs(t *testing.T) {
	const m = 16
	u, _ := NewUniform(m)
	samples, _ := sampleMany(t, u, 5000, 2)
	seen := make([]bool, m)
	for _, s := range samples {
		seen[s] = true
	}
	for id, ok := range seen {
		if !ok {
			t.Fatalf("uniform over %d ids never drew id %d in 5000 samples", m, id)
		}
	}
}

func TestNormalMeanTracksMu(t *testing.T) {
	const m = 100_000
	n, err := NewNormal(m, 2*float64(m)/3, float64(m)/6)
	if err != nil {
		t.Fatal(err)
	}
	_, mean := sampleMany(t, n, 100_000, 3)
	want := 2 * float64(m) / 3
	if math.Abs(mean-want) > float64(m)/100 {
		t.Fatalf("normal mean %.0f, want ~%.0f", mean, want)
	}
}

func TestNormalClampsToRange(t *testing.T) {
	// Mean far outside the range: every sample must clamp into [0, m).
	n, err := NewNormal(100, 1e9, 10)
	if err != nil {
		t.Fatal(err)
	}
	samples, _ := sampleMany(t, n, 1000, 4)
	for _, s := range samples {
		if s != 99 {
			t.Fatalf("sample %d, want clamped 99", s)
		}
	}
	n2, _ := NewNormal(100, -1e9, 10)
	samples, _ = sampleMany(t, n2, 1000, 5)
	for _, s := range samples {
		if s != 0 {
			t.Fatalf("sample %d, want clamped 0", s)
		}
	}
}

func TestNormalRejectsBadParams(t *testing.T) {
	if _, err := NewNormal(0, 0, 1); err == nil {
		t.Fatalf("NewNormal accepted m=0")
	}
	if _, err := NewNormal(10, 0, -1); err == nil {
		t.Fatalf("NewNormal accepted negative sigma")
	}
}

func TestLogNormalRangeAndSkew(t *testing.T) {
	// Moderate spread so that clamping at the top of the id range is rare and
	// the right skew of the lognormal is visible in the samples.
	const m = 100_000
	l, err := NewLogNormal(m, float64(m)/10, float64(m)/20)
	if err != nil {
		t.Fatal(err)
	}
	samples, _ := sampleMany(t, l, 50_000, 6)
	// A lognormal is right-skewed: clearly more than half of the samples fall
	// below the sample mean.
	var sum float64
	for _, s := range samples {
		sum += float64(s)
	}
	mean := sum / float64(len(samples))
	below := 0
	for _, s := range samples {
		if float64(s) < mean {
			below++
		}
	}
	if float64(below) < 0.52*float64(len(samples)) {
		t.Fatalf("lognormal not right-skewed: %d/%d samples below mean", below, len(samples))
	}
}

func TestLogNormalPaperParamsInRange(t *testing.T) {
	// The paper's Stream3 negPDF uses mu=3m/5, sigma=m; with that much spread
	// most draws clamp, but every sample must still be a valid id.
	const m = 10_000
	l, err := NewLogNormal(m, 3*float64(m)/5, float64(m))
	if err != nil {
		t.Fatal(err)
	}
	sampleMany(t, l, 20_000, 12)
}

func TestLogNormalRejectsBadParams(t *testing.T) {
	if _, err := NewLogNormal(0, 1, 1); err == nil {
		t.Fatalf("NewLogNormal accepted m=0")
	}
	if _, err := NewLogNormal(10, 1, -1); err == nil {
		t.Fatalf("NewLogNormal accepted negative sigma")
	}
}

func TestZipfHeadHeavierThanTail(t *testing.T) {
	const m = 10_000
	z, err := NewZipf(m, 1.1)
	if err != nil {
		t.Fatal(err)
	}
	samples, _ := sampleMany(t, z, 100_000, 7)
	head, tail := 0, 0
	for _, s := range samples {
		if s < m/100 {
			head++
		}
		if s >= m/2 {
			tail++
		}
	}
	if head <= tail {
		t.Fatalf("zipf head (%d) not heavier than tail (%d)", head, tail)
	}
	if head < len(samples)/4 {
		t.Fatalf("zipf head only %d/%d samples; expected a heavy head", head, len(samples))
	}
}

func TestZipfRankOrdering(t *testing.T) {
	const m = 100
	z, err := NewZipf(m, 1.5)
	if err != nil {
		t.Fatal(err)
	}
	samples, _ := sampleMany(t, z, 200_000, 8)
	counts := make([]int, m)
	for _, s := range samples {
		counts[s]++
	}
	// Popularity must broadly decrease with id; compare id 0 against id 10
	// and id 10 against id 90 with generous slack.
	if counts[0] <= counts[10] {
		t.Fatalf("zipf counts not decreasing: id0=%d id10=%d", counts[0], counts[10])
	}
	if counts[10] <= counts[90] {
		t.Fatalf("zipf counts not decreasing: id10=%d id90=%d", counts[10], counts[90])
	}
}

func TestZipfSingleID(t *testing.T) {
	z, err := NewZipf(1, 1.2)
	if err != nil {
		t.Fatal(err)
	}
	rng := NewRNG(1)
	for i := 0; i < 100; i++ {
		if v := z.Sample(rng); v != 0 {
			t.Fatalf("zipf over one id drew %d", v)
		}
	}
}

func TestZipfRejectsBadParams(t *testing.T) {
	if _, err := NewZipf(0, 1.1); err == nil {
		t.Fatalf("NewZipf accepted m=0")
	}
	if _, err := NewZipf(10, 0); err == nil {
		t.Fatalf("NewZipf accepted s=0")
	}
	if _, err := NewZipf(10, -1); err == nil {
		t.Fatalf("NewZipf accepted s<0")
	}
}

func TestHotSetConcentration(t *testing.T) {
	const m = 10_000
	h, err := NewHotSet(m, 10, 0.9)
	if err != nil {
		t.Fatal(err)
	}
	samples, _ := sampleMany(t, h, 50_000, 9)
	hot := 0
	for _, s := range samples {
		if s < 10 {
			hot++
		}
	}
	rate := float64(hot) / float64(len(samples))
	if rate < 0.85 {
		t.Fatalf("hot-set rate %.3f, want >= 0.85", rate)
	}
}

func TestHotSetRejectsBadParams(t *testing.T) {
	if _, err := NewHotSet(0, 1, 0.5); err == nil {
		t.Fatalf("NewHotSet accepted m=0")
	}
	if _, err := NewHotSet(10, 0, 0.5); err == nil {
		t.Fatalf("NewHotSet accepted hot=0")
	}
	if _, err := NewHotSet(10, 11, 0.5); err == nil {
		t.Fatalf("NewHotSet accepted hot>m")
	}
	if _, err := NewHotSet(10, 5, 1.5); err == nil {
		t.Fatalf("NewHotSet accepted p>1")
	}
}

func TestConstantAlwaysSameID(t *testing.T) {
	c, err := NewConstant(50, 7)
	if err != nil {
		t.Fatal(err)
	}
	rng := NewRNG(1)
	for i := 0; i < 100; i++ {
		if v := c.Sample(rng); v != 7 {
			t.Fatalf("constant drew %d, want 7", v)
		}
	}
}

func TestConstantRejectsBadParams(t *testing.T) {
	if _, err := NewConstant(0, 0); err == nil {
		t.Fatalf("NewConstant accepted m=0")
	}
	if _, err := NewConstant(10, 10); err == nil {
		t.Fatalf("NewConstant accepted id out of range")
	}
	if _, err := NewConstant(10, -1); err == nil {
		t.Fatalf("NewConstant accepted negative id")
	}
}

func TestRoundRobinCycles(t *testing.T) {
	rr, err := NewRoundRobin(5)
	if err != nil {
		t.Fatal(err)
	}
	rng := NewRNG(1)
	for cycle := 0; cycle < 3; cycle++ {
		for want := 0; want < 5; want++ {
			if got := rr.Sample(rng); got != want {
				t.Fatalf("cycle %d: round-robin drew %d, want %d", cycle, got, want)
			}
		}
	}
}

func TestMixtureWeights(t *testing.T) {
	const m = 1000
	hot, _ := NewConstant(m, 0)
	cold, _ := NewConstant(m, m-1)
	mix, err := NewMixture([]Distribution{hot, cold}, []float64{3, 1})
	if err != nil {
		t.Fatal(err)
	}
	samples, _ := sampleMany(t, mix, 100_000, 10)
	hotCount := 0
	for _, s := range samples {
		if s == 0 {
			hotCount++
		}
	}
	rate := float64(hotCount) / float64(len(samples))
	if math.Abs(rate-0.75) > 0.02 {
		t.Fatalf("mixture hot rate %.3f, want ~0.75", rate)
	}
}

func TestMixtureRejectsBadInputs(t *testing.T) {
	u10, _ := NewUniform(10)
	u20, _ := NewUniform(20)
	if _, err := NewMixture(nil, nil); err == nil {
		t.Fatalf("NewMixture accepted empty components")
	}
	if _, err := NewMixture([]Distribution{u10}, []float64{1, 2}); err == nil {
		t.Fatalf("NewMixture accepted mismatched weights")
	}
	if _, err := NewMixture([]Distribution{u10, u20}, []float64{1, 1}); err == nil {
		t.Fatalf("NewMixture accepted mismatched id spaces")
	}
	if _, err := NewMixture([]Distribution{u10}, []float64{0}); err == nil {
		t.Fatalf("NewMixture accepted zero weight")
	}
}

func TestDistributionsAlwaysInRangeProperty(t *testing.T) {
	f := func(seed uint64, rawM uint16) bool {
		m := int(rawM)%500 + 1
		rng := NewRNG(seed)
		dists := []Distribution{}
		if u, err := NewUniform(m); err == nil {
			dists = append(dists, u)
		}
		if n, err := NewNormal(m, float64(m)/2, float64(m)/4); err == nil {
			dists = append(dists, n)
		}
		if l, err := NewLogNormal(m, float64(m)/2, float64(m)); err == nil {
			dists = append(dists, l)
		}
		if z, err := NewZipf(m, 1.2); err == nil {
			dists = append(dists, z)
		}
		for _, d := range dists {
			for i := 0; i < 20; i++ {
				v := d.Sample(rng)
				if v < 0 || v >= m {
					return false
				}
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 100}); err != nil {
		t.Fatal(err)
	}
}

func TestClampID(t *testing.T) {
	cases := []struct {
		v    float64
		m    int
		want int
	}{
		{-5, 10, 0},
		{0, 10, 0},
		{3.7, 10, 3},
		{9.99, 10, 9},
		{10, 10, 9},
		{1e18, 10, 9},
		{math.NaN(), 10, 0},
	}
	for _, c := range cases {
		if got := clampID(c.v, c.m); got != c.want {
			t.Fatalf("clampID(%g, %d) = %d, want %d", c.v, c.m, got, c.want)
		}
	}
}
