package stream

import (
	"math"
	"testing"
	"testing/quick"
)

func TestRNGDeterminism(t *testing.T) {
	a := NewRNG(42)
	b := NewRNG(42)
	for i := 0; i < 1000; i++ {
		if got, want := a.Uint64(), b.Uint64(); got != want {
			t.Fatalf("draw %d: %d != %d for identical seeds", i, got, want)
		}
	}
}

func TestRNGDistinctSeedsDiffer(t *testing.T) {
	a := NewRNG(1)
	b := NewRNG(2)
	same := 0
	for i := 0; i < 100; i++ {
		if a.Uint64() == b.Uint64() {
			same++
		}
	}
	if same > 2 {
		t.Fatalf("distinct seeds produced %d/100 identical draws", same)
	}
}

func TestRNGSplitIndependence(t *testing.T) {
	parent := NewRNG(7)
	child := parent.Split()
	// The child must not merely mirror the parent's continued output.
	same := 0
	for i := 0; i < 100; i++ {
		if parent.Uint64() == child.Uint64() {
			same++
		}
	}
	if same > 2 {
		t.Fatalf("split stream mirrors parent in %d/100 draws", same)
	}
}

func TestRNGIntnRange(t *testing.T) {
	r := NewRNG(3)
	for _, n := range []int{1, 2, 3, 7, 100, 1_000_000} {
		for i := 0; i < 200; i++ {
			v := r.Intn(n)
			if v < 0 || v >= n {
				t.Fatalf("Intn(%d) = %d out of range", n, v)
			}
		}
	}
}

func TestRNGIntnPanicsOnNonPositive(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatalf("Intn(0) did not panic")
		}
	}()
	NewRNG(1).Intn(0)
}

func TestRNGUint64nSmallBoundCoversAllValues(t *testing.T) {
	r := NewRNG(11)
	seen := make(map[uint64]bool)
	for i := 0; i < 1000; i++ {
		seen[r.Uint64n(4)] = true
	}
	for v := uint64(0); v < 4; v++ {
		if !seen[v] {
			t.Fatalf("value %d never drawn from Uint64n(4) in 1000 draws", v)
		}
	}
}

func TestRNGFloat64Range(t *testing.T) {
	r := NewRNG(5)
	for i := 0; i < 10_000; i++ {
		f := r.Float64()
		if f < 0 || f >= 1 {
			t.Fatalf("Float64() = %g out of [0,1)", f)
		}
	}
}

func TestRNGBernoulliExtremes(t *testing.T) {
	r := NewRNG(9)
	for i := 0; i < 100; i++ {
		if r.Bernoulli(0) {
			t.Fatalf("Bernoulli(0) returned true")
		}
		if !r.Bernoulli(1) {
			t.Fatalf("Bernoulli(1) returned false")
		}
	}
}

func TestRNGBernoulliFrequency(t *testing.T) {
	r := NewRNG(13)
	const n = 200_000
	const p = 0.7
	hits := 0
	for i := 0; i < n; i++ {
		if r.Bernoulli(p) {
			hits++
		}
	}
	got := float64(hits) / n
	if math.Abs(got-p) > 0.01 {
		t.Fatalf("Bernoulli(%.1f) empirical rate %.4f, want within 0.01", p, got)
	}
}

func TestRNGNormalMoments(t *testing.T) {
	r := NewRNG(17)
	const n = 200_000
	var sum, sumSq float64
	for i := 0; i < n; i++ {
		v := r.NormFloat64()
		sum += v
		sumSq += v * v
	}
	mean := sum / n
	variance := sumSq/n - mean*mean
	if math.Abs(mean) > 0.02 {
		t.Fatalf("normal mean %.4f, want ~0", mean)
	}
	if math.Abs(variance-1) > 0.05 {
		t.Fatalf("normal variance %.4f, want ~1", variance)
	}
}

func TestRNGExpMean(t *testing.T) {
	r := NewRNG(19)
	const n = 200_000
	var sum float64
	for i := 0; i < n; i++ {
		v := r.ExpFloat64()
		if v < 0 {
			t.Fatalf("ExpFloat64() = %g negative", v)
		}
		sum += v
	}
	mean := sum / n
	if math.Abs(mean-1) > 0.02 {
		t.Fatalf("exponential mean %.4f, want ~1", mean)
	}
}

func TestRNGPermIsPermutation(t *testing.T) {
	r := NewRNG(23)
	for _, n := range []int{0, 1, 2, 10, 257} {
		p := r.Perm(n)
		if len(p) != n {
			t.Fatalf("Perm(%d) has length %d", n, len(p))
		}
		seen := make([]bool, n)
		for _, v := range p {
			if v < 0 || v >= n || seen[v] {
				t.Fatalf("Perm(%d) = %v is not a permutation", n, p)
			}
			seen[v] = true
		}
	}
}

func TestRNGShufflePreservesMultiset(t *testing.T) {
	r := NewRNG(29)
	xs := []int{1, 2, 3, 4, 5, 6, 7, 8}
	sum := 0
	for _, v := range xs {
		sum += v
	}
	r.Shuffle(len(xs), func(i, j int) { xs[i], xs[j] = xs[j], xs[i] })
	got := 0
	for _, v := range xs {
		got += v
	}
	if got != sum {
		t.Fatalf("shuffle changed element multiset: sum %d -> %d", sum, got)
	}
}

func TestRNGUint64nUnbiasedProperty(t *testing.T) {
	// Property: for any seed and bound, draws stay in range.
	f := func(seed uint64, bound uint16) bool {
		n := uint64(bound)%1000 + 1
		r := NewRNG(seed)
		for i := 0; i < 50; i++ {
			if r.Uint64n(n) >= n {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Fatal(err)
	}
}

func TestRNGSeedResetsSequence(t *testing.T) {
	r := NewRNG(101)
	first := make([]uint64, 16)
	for i := range first {
		first[i] = r.Uint64()
	}
	r.Seed(101)
	for i := range first {
		if got := r.Uint64(); got != first[i] {
			t.Fatalf("after re-seed, draw %d = %d, want %d", i, got, first[i])
		}
	}
}
