package stream

import (
	"math"
	"testing"

	"sprofile/internal/core"
)

func TestGeneratorDeterministic(t *testing.T) {
	a, err := Stream1(1000, 42)
	if err != nil {
		t.Fatal(err)
	}
	b, err := Stream1(1000, 42)
	if err != nil {
		t.Fatal(err)
	}
	ta := a.Generate(5000)
	tb := b.Generate(5000)
	for i := range ta {
		if ta[i] != tb[i] {
			t.Fatalf("tuple %d differs between identically-seeded generators: %+v vs %+v", i, ta[i], tb[i])
		}
	}
}

func TestGeneratorSeedSensitivity(t *testing.T) {
	a, _ := Stream1(1000, 1)
	b, _ := Stream1(1000, 2)
	ta := a.Generate(1000)
	tb := b.Generate(1000)
	same := 0
	for i := range ta {
		if ta[i] == tb[i] {
			same++
		}
	}
	if same > 100 {
		t.Fatalf("different seeds produced %d/1000 identical tuples", same)
	}
}

func TestGeneratorResetRewinds(t *testing.T) {
	g, _ := Stream2(500, 7)
	first := g.Generate(100)
	g.Reset()
	second := g.Generate(100)
	for i := range first {
		if first[i] != second[i] {
			t.Fatalf("tuple %d differs after Reset: %+v vs %+v", i, first[i], second[i])
		}
	}
	if g.Emitted() != 100 {
		t.Fatalf("Emitted() = %d after reset + 100 tuples, want 100", g.Emitted())
	}
}

func TestGeneratorAddFraction(t *testing.T) {
	for idx := 1; idx <= 3; idx++ {
		g, err := PaperStream(idx, 10_000, 11)
		if err != nil {
			t.Fatal(err)
		}
		const n = 100_000
		adds := 0
		for i := 0; i < n; i++ {
			tp := g.Next()
			if !tp.Action.Valid() {
				t.Fatalf("stream%d produced invalid action %d", idx, tp.Action)
			}
			if tp.Object < 0 || tp.Object >= 10_000 {
				t.Fatalf("stream%d produced out-of-range object %d", idx, tp.Object)
			}
			if tp.Action == core.ActionAdd {
				adds++
			}
		}
		rate := float64(adds) / n
		if math.Abs(rate-DefaultAddProb) > 0.01 {
			t.Fatalf("stream%d add rate %.4f, want ~%.2f", idx, rate, DefaultAddProb)
		}
	}
}

func TestStream2ObjectBias(t *testing.T) {
	// Stream2 adds around 2m/3 and removes around m/3, so after many tuples
	// high ids should have higher net frequency than low ids.
	const m = 3000
	g, _ := Stream2(m, 5)
	freqs := make([]int64, m)
	for i := 0; i < 300_000; i++ {
		tp := g.Next()
		freqs[tp.Object] += int64(tp.Action)
	}
	var low, high int64
	for i := 0; i < m/3; i++ {
		low += freqs[i]
	}
	for i := 2 * m / 3; i < m; i++ {
		high += freqs[i]
	}
	if high <= low {
		t.Fatalf("stream2 bias missing: net frequency high-third %d <= low-third %d", high, low)
	}
}

func TestPaperStreamBadIndex(t *testing.T) {
	for _, idx := range []int{0, 4, -1} {
		if _, err := PaperStream(idx, 100, 1); err == nil {
			t.Fatalf("PaperStream(%d) accepted invalid index", idx)
		}
	}
}

func TestPaperStreamNames(t *testing.T) {
	names := PaperStreamNames()
	if len(names) != 3 {
		t.Fatalf("PaperStreamNames() returned %d names, want 3", len(names))
	}
	for i, want := range []string{"stream1", "stream2", "stream3"} {
		if names[i] != want {
			t.Fatalf("PaperStreamNames()[%d] = %q, want %q", i, names[i], want)
		}
		g, err := PaperStream(i+1, 100, 1)
		if err != nil {
			t.Fatal(err)
		}
		if g.Name() != want {
			t.Fatalf("PaperStream(%d).Name() = %q, want %q", i+1, g.Name(), want)
		}
	}
}

func TestConfigValidate(t *testing.T) {
	u, _ := NewUniform(10)
	u20, _ := NewUniform(20)
	cases := []struct {
		name string
		cfg  Config
		ok   bool
	}{
		{"valid", Config{M: 10, AddProb: 0.7, PosPDF: u, NegPDF: u}, true},
		{"zero m", Config{M: 0, AddProb: 0.7, PosPDF: u, NegPDF: u}, false},
		{"bad prob", Config{M: 10, AddProb: 1.5, PosPDF: u, NegPDF: u}, false},
		{"negative prob", Config{M: 10, AddProb: -0.1, PosPDF: u, NegPDF: u}, false},
		{"nil pos", Config{M: 10, AddProb: 0.7, NegPDF: u}, false},
		{"nil neg", Config{M: 10, AddProb: 0.7, PosPDF: u}, false},
		{"mismatched pos", Config{M: 10, AddProb: 0.7, PosPDF: u20, NegPDF: u}, false},
		{"mismatched neg", Config{M: 10, AddProb: 0.7, PosPDF: u, NegPDF: u20}, false},
	}
	for _, c := range cases {
		err := c.cfg.Validate()
		if c.ok && err != nil {
			t.Fatalf("%s: unexpected error %v", c.name, err)
		}
		if !c.ok && err == nil {
			t.Fatalf("%s: validation passed, want error", c.name)
		}
	}
}

func TestGeneratorName(t *testing.T) {
	g, _ := Stream1(100, 1)
	if g.Name() != "stream1" {
		t.Fatalf("Name() = %q, want stream1", g.Name())
	}
	u, _ := NewUniform(100)
	anon := MustNewGenerator(Config{M: 100, AddProb: 0.5, PosPDF: u, NegPDF: u, Seed: 1})
	if anon.Name() == "" {
		t.Fatalf("anonymous generator has empty name")
	}
}

func TestGeneratorFillMatchesNext(t *testing.T) {
	a, _ := Stream3(200, 3)
	b, _ := Stream3(200, 3)
	buf := make([]core.Tuple, 64)
	a.Fill(buf)
	for i := range buf {
		if got := b.Next(); got != buf[i] {
			t.Fatalf("Fill tuple %d = %+v, Next = %+v", i, buf[i], got)
		}
	}
}

func TestGeneratorGenerateZero(t *testing.T) {
	g, _ := Stream1(10, 1)
	if got := g.Generate(0); got != nil {
		t.Fatalf("Generate(0) = %v, want nil", got)
	}
	if got := g.Generate(-5); got != nil {
		t.Fatalf("Generate(-5) = %v, want nil", got)
	}
}

func TestMustNewGeneratorPanicsOnBadConfig(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatalf("MustNewGenerator did not panic on invalid config")
		}
	}()
	MustNewGenerator(Config{})
}
