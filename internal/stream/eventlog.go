package stream

import (
	"bufio"
	"errors"
	"fmt"
	"io"
	"strconv"
	"strings"
	"time"

	"sprofile/internal/core"
	"sprofile/internal/idmap"
)

// This file implements a small text event-log format for interoperating with
// real systems: one event per line,
//
//	<timestamp>,<object-key>,<action>
//
// where <timestamp> is RFC 3339 ("2026-06-16T12:00:00Z") or an integer Unix
// time in seconds or milliseconds, <object-key> is any string without a
// comma, and <action> is "add"/"+"/"1" or "remove"/"-"/"-1". Lines starting
// with '#' and blank lines are ignored. This is the shape most access/audit
// logs can be transformed into with a one-line awk script, which is what the
// paper means by "S-Profile can be plugged into most of log streams".

// ErrBadEventLog is returned when parsing a malformed event-log line.
var ErrBadEventLog = errors.New("stream: invalid event log")

// KeyedEvent is one parsed event-log record: a wall-clock timestamp, a string
// object key, and an action.
type KeyedEvent struct {
	At     time.Time
	Key    string
	Action core.Action
}

// EventLogReader parses the text event-log format from an io.Reader.
type EventLogReader struct {
	sc     *bufio.Scanner
	lineNo int
}

// NewEventLogReader returns a reader over r.
func NewEventLogReader(r io.Reader) *EventLogReader {
	sc := bufio.NewScanner(r)
	sc.Buffer(make([]byte, 0, 64*1024), 1<<20)
	return &EventLogReader{sc: sc}
}

// Next returns the next event, or io.EOF after the last one.
func (r *EventLogReader) Next() (KeyedEvent, error) {
	for r.sc.Scan() {
		r.lineNo++
		line := strings.TrimSpace(r.sc.Text())
		if line == "" || strings.HasPrefix(line, "#") {
			continue
		}
		ev, err := parseEventLogLine(line)
		if err != nil {
			return KeyedEvent{}, fmt.Errorf("%w: line %d: %v", ErrBadEventLog, r.lineNo, err)
		}
		return ev, nil
	}
	if err := r.sc.Err(); err != nil {
		return KeyedEvent{}, fmt.Errorf("%w: %v", ErrBadEventLog, err)
	}
	return KeyedEvent{}, io.EOF
}

// ReadAll parses every remaining event.
func (r *EventLogReader) ReadAll() ([]KeyedEvent, error) {
	var out []KeyedEvent
	for {
		ev, err := r.Next()
		if errors.Is(err, io.EOF) {
			return out, nil
		}
		if err != nil {
			return out, err
		}
		out = append(out, ev)
	}
}

// parseEventLogLine splits "timestamp,key,action".
func parseEventLogLine(line string) (KeyedEvent, error) {
	first := strings.IndexByte(line, ',')
	if first < 0 {
		return KeyedEvent{}, fmt.Errorf("missing fields in %q", line)
	}
	last := strings.LastIndexByte(line, ',')
	if last == first {
		return KeyedEvent{}, fmt.Errorf("missing action field in %q", line)
	}
	tsField := strings.TrimSpace(line[:first])
	key := strings.TrimSpace(line[first+1 : last])
	actionField := strings.TrimSpace(line[last+1:])

	if key == "" {
		return KeyedEvent{}, fmt.Errorf("empty object key in %q", line)
	}
	at, err := parseEventTimestamp(tsField)
	if err != nil {
		return KeyedEvent{}, err
	}
	var action core.Action
	switch actionField {
	case "add", "+", "1":
		action = core.ActionAdd
	case "remove", "-", "-1":
		action = core.ActionRemove
	default:
		return KeyedEvent{}, fmt.Errorf("unknown action %q", actionField)
	}
	return KeyedEvent{At: at, Key: key, Action: action}, nil
}

// parseEventTimestamp accepts RFC 3339 or integer Unix seconds/milliseconds.
func parseEventTimestamp(s string) (time.Time, error) {
	if s == "" {
		return time.Time{}, fmt.Errorf("empty timestamp")
	}
	if t, err := time.Parse(time.RFC3339, s); err == nil {
		return t, nil
	}
	n, err := strconv.ParseInt(s, 10, 64)
	if err != nil {
		return time.Time{}, fmt.Errorf("bad timestamp %q (want RFC3339 or unix seconds/millis)", s)
	}
	// Heuristic: values above 10^12 are milliseconds (year 2001 in millis is
	// ~10^12; in seconds that far exceeds any plausible log).
	if n > 1_000_000_000_000 {
		return time.UnixMilli(n).UTC(), nil
	}
	return time.Unix(n, 0).UTC(), nil
}

// WriteEventLog writes events in the text format, one per line, with RFC 3339
// timestamps.
func WriteEventLog(w io.Writer, events []KeyedEvent) error {
	bw := bufio.NewWriter(w)
	for i, ev := range events {
		if ev.Key == "" {
			return fmt.Errorf("stream: event %d has an empty key", i)
		}
		if strings.ContainsRune(ev.Key, ',') {
			return fmt.Errorf("stream: event %d key %q contains a comma", i, ev.Key)
		}
		if !ev.Action.Valid() {
			return fmt.Errorf("stream: event %d has invalid action %d", i, ev.Action)
		}
		if _, err := fmt.Fprintf(bw, "%s,%s,%s\n", ev.At.UTC().Format(time.RFC3339), ev.Key, ev.Action); err != nil {
			return err
		}
	}
	return bw.Flush()
}

// Densify maps the string keys of an event log onto dense object ids so the
// events can drive a dense-id profiler. It returns the tuple sequence (in the
// original order) and the mapper used, whose Key method converts dense ids in
// query answers back to the original keys. capacity bounds the number of
// distinct keys; idmap.ErrFull is returned when the log contains more.
func Densify(events []KeyedEvent, capacity int) ([]core.Tuple, *idmap.Mapper[string], error) {
	mapper, err := idmap.New[string](capacity)
	if err != nil {
		return nil, nil, err
	}
	tuples := make([]core.Tuple, 0, len(events))
	for i, ev := range events {
		id, _, err := mapper.Acquire(ev.Key)
		if err != nil {
			return nil, nil, fmt.Errorf("stream: event %d (%q): %w", i, ev.Key, err)
		}
		tuples = append(tuples, core.Tuple{Object: id, Action: ev.Action})
	}
	return tuples, mapper, nil
}
