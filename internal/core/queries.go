package core

import (
	"fmt"
	"math"
)

// Entry pairs an object id with its frequency; query results are reported as
// entries. The JSON form is the one the composite-query wire format uses.
type Entry struct {
	Object    int   `json:"object"`
	Frequency int64 `json:"frequency"`
}

// FreqCount is one point of the frequency distribution: Count objects
// currently have frequency Freq.
type FreqCount struct {
	Freq  int64 `json:"freq"`
	Count int   `json:"count"`
}

// Mode returns one object with the maximum frequency, that frequency, and
// the number of objects sharing it. The representative is the object at the
// highest rank; ModeAll returns all of them.
func (p *Profile) Mode() (Entry, int, error) {
	if p.m == 0 {
		return Entry{}, 0, ErrEmptyProfile
	}
	b := p.arena.at(p.ptrB[p.m-1])
	return Entry{Object: int(p.tToF[p.m-1]), Frequency: b.f}, b.size(), nil
}

// ModeAll returns every object whose frequency equals the maximum, along
// with that frequency. The cost is proportional to the number of modes.
func (p *Profile) ModeAll() ([]int, int64, error) {
	if p.m == 0 {
		return nil, 0, ErrEmptyProfile
	}
	b := p.arena.at(p.ptrB[p.m-1])
	objs := make([]int, 0, b.size())
	for r := b.l; r <= b.r; r++ {
		objs = append(objs, int(p.tToF[r]))
	}
	return objs, b.f, nil
}

// Min returns one object with the minimum frequency, that frequency, and the
// number of objects sharing it (paper steps 29a/30a).
func (p *Profile) Min() (Entry, int, error) {
	if p.m == 0 {
		return Entry{}, 0, ErrEmptyProfile
	}
	b := p.arena.at(p.ptrB[0])
	return Entry{Object: int(p.tToF[0]), Frequency: b.f}, b.size(), nil
}

// MinAll returns every object whose frequency equals the minimum, along with
// that frequency.
func (p *Profile) MinAll() ([]int, int64, error) {
	if p.m == 0 {
		return nil, 0, ErrEmptyProfile
	}
	b := p.arena.at(p.ptrB[0])
	objs := make([]int, 0, b.size())
	for r := b.l; r <= b.r; r++ {
		objs = append(objs, int(p.tToF[r]))
	}
	return objs, b.f, nil
}

// Max is an alias for Mode's frequency: the largest frequency currently held
// by any object.
func (p *Profile) Max() (int64, error) {
	if p.m == 0 {
		return 0, ErrEmptyProfile
	}
	return p.arena.at(p.ptrB[p.m-1]).f, nil
}

// KthLargest returns the object holding the k-th largest frequency
// (1-based: k=1 is the mode representative). Ties within a block are broken
// by block position.
func (p *Profile) KthLargest(k int) (Entry, error) {
	if k < 1 || int32(k) > p.m {
		return Entry{}, errBadRank(k, int(p.m))
	}
	r := p.m - int32(k)
	return Entry{Object: int(p.tToF[r]), Frequency: p.arena.at(p.ptrB[r]).f}, nil
}

// KthSmallest returns the object holding the k-th smallest frequency
// (1-based: k=1 is the minimum representative).
func (p *Profile) KthSmallest(k int) (Entry, error) {
	if k < 1 || int32(k) > p.m {
		return Entry{}, errBadRank(k, int(p.m))
	}
	r := int32(k) - 1
	return Entry{Object: int(p.tToF[r]), Frequency: p.arena.at(p.ptrB[r]).f}, nil
}

// AtRank returns the entry at 0-based rank r of the ascending-sorted
// frequency array (rank 0 is the minimum, rank m-1 the maximum).
func (p *Profile) AtRank(r int) (Entry, error) {
	if r < 0 || int32(r) >= p.m {
		return Entry{}, errBadRank(r, int(p.m))
	}
	return Entry{Object: int(p.tToF[r]), Frequency: p.arena.at(p.ptrB[int32(r)]).f}, nil
}

// TopK returns the k objects with the largest frequencies in non-increasing
// frequency order. If k exceeds m every object is returned. Cost O(k).
func (p *Profile) TopK(k int) []Entry {
	if k <= 0 || p.m == 0 {
		return nil
	}
	if int32(k) > p.m {
		k = int(p.m)
	}
	out := make([]Entry, 0, k)
	for i := 0; i < k; i++ {
		r := p.m - 1 - int32(i)
		out = append(out, Entry{Object: int(p.tToF[r]), Frequency: p.arena.at(p.ptrB[r]).f})
	}
	return out
}

// BottomK returns the k objects with the smallest frequencies in
// non-decreasing frequency order.
func (p *Profile) BottomK(k int) []Entry {
	if k <= 0 || p.m == 0 {
		return nil
	}
	if int32(k) > p.m {
		k = int(p.m)
	}
	out := make([]Entry, 0, k)
	for i := int32(0); i < int32(k); i++ {
		out = append(out, Entry{Object: int(p.tToF[i]), Frequency: p.arena.at(p.ptrB[i]).f})
	}
	return out
}

// Median returns the lower-median entry of the frequency multiset over all m
// object slots: the element at rank floor((m-1)/2) of the sorted array.
func (p *Profile) Median() (Entry, error) {
	if p.m == 0 {
		return Entry{}, ErrEmptyProfile
	}
	return p.AtRank(int((p.m - 1) / 2))
}

// QuantileRank maps quantile q (clamped to [0, 1]) to the 0-based rank of
// the nearest element of an ascending m-element frequency array: the integer
// closest to q*(m-1). Every quantile query in the module — single profile or
// sharded merge — goes through this one function so the implementations can
// never disagree on rounding (truncating q*(m-1) would, e.g., send q=0.7 over
// m=11 slots to rank 6 instead of the nearest rank 7).
func QuantileRank(q float64, m int) int {
	if m <= 0 {
		return 0
	}
	if q < 0 {
		q = 0
	}
	if q > 1 {
		q = 1
	}
	return int(math.Round(q * float64(m-1)))
}

// CheckQuantile rejects quantile arguments no rank can be derived from. NaN
// is the only such value: finite arguments outside [0, 1] are clamped by
// QuantileRank (q = -0.3 answers like q = 0, q = 1.7 like q = 1), a contract
// every variant shares and the conformance suite pins.
func CheckQuantile(q float64) error {
	if math.IsNaN(q) {
		return fmt.Errorf("%w: quantile is NaN", ErrBadRank)
	}
	return nil
}

// Quantile returns the entry at quantile q in [0, 1] of the frequency
// multiset (q=0 minimum, q=0.5 median, q=1 maximum), using the
// nearest-rank definition of QuantileRank. Finite q outside [0, 1] is
// clamped; NaN is an error (see CheckQuantile).
func (p *Profile) Quantile(q float64) (Entry, error) {
	if p.m == 0 {
		return Entry{}, ErrEmptyProfile
	}
	if err := CheckQuantile(q); err != nil {
		return Entry{}, err
	}
	return p.AtRank(QuantileRank(q, int(p.m)))
}

// Majority returns the object whose frequency exceeds half of the total
// count, if one exists. Following Boyer–Moore semantics the total is the sum
// of all frequencies; only meaningful when all frequencies are non-negative.
func (p *Profile) Majority() (Entry, bool, error) {
	if p.m == 0 {
		return Entry{}, false, ErrEmptyProfile
	}
	e, _, err := p.Mode()
	if err != nil {
		return Entry{}, false, err
	}
	if p.total > 0 && e.Frequency*2 > p.total {
		return e, true, nil
	}
	return Entry{}, false, nil
}

// Distribution returns the frequency histogram in ascending frequency order:
// one FreqCount per distinct frequency currently present. Cost O(#blocks).
func (p *Profile) Distribution() []FreqCount {
	if p.m == 0 {
		return nil
	}
	out := make([]FreqCount, 0, p.arena.liveBlocks())
	for r := int32(0); r < p.m; {
		b := p.arena.at(p.ptrB[r])
		out = append(out, FreqCount{Freq: b.f, Count: b.size()})
		r = b.r + 1
	}
	return out
}

// CountWithFrequencyAtLeast returns how many objects currently have
// frequency >= f. Cost O(#blocks) via a scan of the block chain from the top.
func (p *Profile) CountWithFrequencyAtLeast(f int64) int {
	if p.m == 0 {
		return 0
	}
	n := 0
	for r := p.m - 1; r >= 0; {
		b := p.arena.at(p.ptrB[r])
		if b.f < f {
			break
		}
		n += b.size()
		r = b.l - 1
	}
	return n
}

// CountWithFrequencyAtMost returns how many objects currently have
// frequency <= f. Cost O(#blocks) via a scan of the block chain from the
// bottom.
func (p *Profile) CountWithFrequencyAtMost(f int64) int {
	if p.m == 0 {
		return 0
	}
	n := 0
	for r := int32(0); r < p.m; {
		b := p.arena.at(p.ptrB[r])
		if b.f > f {
			break
		}
		n += b.size()
		r = b.r + 1
	}
	return n
}

// CountWithFrequencyInRange returns how many objects currently have a
// frequency in the inclusive range [lo, hi]. Cost O(#blocks).
func (p *Profile) CountWithFrequencyInRange(lo, hi int64) int {
	if hi < lo {
		return 0
	}
	return p.CountWithFrequencyAtMost(hi) - p.CountWithFrequencyAtMost(lo-1)
}

// DistinctFrequencies returns the number of distinct frequency values
// currently present (equal to the number of live blocks).
func (p *Profile) DistinctFrequencies() int { return p.arena.liveBlocks() }

// Snapshot of summary statistics; cheap to produce and useful for logging.
// The JSON form is the one the composite-query wire format uses.
type Summary struct {
	Capacity            int    `json:"capacity"`
	Total               int64  `json:"total"`
	Active              int    `json:"active"`
	Negative            int    `json:"negative"`
	DistinctFrequencies int    `json:"distinct_frequencies"`
	MaxFrequency        int64  `json:"max_frequency"`
	MinFrequency        int64  `json:"min_frequency"`
	Adds                uint64 `json:"adds"`
	Removes             uint64 `json:"removes"`
}

// Summarize returns the current summary statistics of the profile.
func (p *Profile) Summarize() Summary {
	s := Summary{
		Capacity:            int(p.m),
		Total:               p.total,
		Active:              int(p.active),
		Negative:            int(p.negative),
		DistinctFrequencies: p.arena.liveBlocks(),
		Adds:                p.adds,
		Removes:             p.removes,
	}
	if p.m > 0 {
		s.MaxFrequency = p.arena.at(p.ptrB[p.m-1]).f
		s.MinFrequency = p.arena.at(p.ptrB[0]).f
	}
	return s
}

// Frequencies copies every object's current frequency into dst (which must
// have length >= m) and returns the slice of length m. Passing nil allocates.
// Cost O(m); intended for debugging, testing and snapshots, not hot paths.
func (p *Profile) Frequencies(dst []int64) []int64 {
	if dst == nil || len(dst) < int(p.m) {
		dst = make([]int64, p.m)
	}
	dst = dst[:p.m]
	for r := int32(0); r < p.m; {
		b := p.arena.at(p.ptrB[r])
		for i := b.l; i <= b.r; i++ {
			dst[p.tToF[i]] = b.f
		}
		r = b.r + 1
	}
	return dst
}
