package core

import (
	"bytes"
	"errors"
	"math/rand"
	"testing"
)

func TestSnapshotRoundTrip(t *testing.T) {
	p := mustProfile(t, 32)
	rng := rand.New(rand.NewSource(17))
	for i := 0; i < 2000; i++ {
		x := rng.Intn(32)
		if rng.Float64() < 0.7 {
			_ = p.Add(x)
		} else {
			_ = p.Remove(x)
		}
	}

	var buf bytes.Buffer
	if err := p.WriteSnapshot(&buf); err != nil {
		t.Fatalf("WriteSnapshot: %v", err)
	}
	q, err := ReadSnapshot(&buf)
	if err != nil {
		t.Fatalf("ReadSnapshot: %v", err)
	}
	if err := q.CheckInvariants(); err != nil {
		t.Fatalf("restored profile invariants: %v", err)
	}

	if q.Cap() != p.Cap() || q.Total() != p.Total() || q.Active() != p.Active() {
		t.Errorf("restored summary mismatch: %+v vs %+v", q.Summarize(), p.Summarize())
	}
	pa, pr := p.Events()
	qa, qr := q.Events()
	if pa != qa || pr != qr {
		t.Errorf("restored event counters (%d,%d), want (%d,%d)", qa, qr, pa, pr)
	}
	for x := 0; x < 32; x++ {
		cp, _ := p.Count(x)
		cq, _ := q.Count(x)
		if cp != cq {
			t.Errorf("Count(%d): restored %d, want %d", x, cq, cp)
		}
	}
	// The restored profile must remain updatable.
	if err := q.Add(0); err != nil {
		t.Fatal(err)
	}
	if err := q.CheckInvariants(); err != nil {
		t.Fatal(err)
	}
}

func TestSnapshotPreservesStrictMode(t *testing.T) {
	p := mustProfile(t, 4, WithStrictNonNegative())
	_ = p.Add(1)
	var buf bytes.Buffer
	if err := p.WriteSnapshot(&buf); err != nil {
		t.Fatal(err)
	}
	q, err := ReadSnapshot(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if err := q.Remove(0); !errors.Is(err, ErrNegativeFrequency) {
		t.Errorf("restored profile lost strict mode: Remove error = %v", err)
	}
}

func TestSnapshotEmptyProfile(t *testing.T) {
	p := mustProfile(t, 0)
	var buf bytes.Buffer
	if err := p.WriteSnapshot(&buf); err != nil {
		t.Fatal(err)
	}
	q, err := ReadSnapshot(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if q.Cap() != 0 {
		t.Errorf("restored capacity = %d, want 0", q.Cap())
	}
}

func TestReadSnapshotRejectsCorruptInput(t *testing.T) {
	cases := map[string][]byte{
		"empty":       {},
		"short magic": []byte("SP"),
		"bad magic":   []byte("XXXX\x00\x00\x00\x00"),
		"truncated":   append([]byte("SPF1\x00"), 0xFF), // uvarint cut short
	}
	for name, data := range cases {
		if _, err := ReadSnapshot(bytes.NewReader(data)); !errors.Is(err, ErrBadSnapshot) {
			t.Errorf("%s: error = %v, want ErrBadSnapshot", name, err)
		}
	}

	// A valid header that promises more frequencies than it carries.
	p := mustProfile(t, 8)
	var buf bytes.Buffer
	if err := p.WriteSnapshot(&buf); err != nil {
		t.Fatal(err)
	}
	data := buf.Bytes()
	if _, err := ReadSnapshot(bytes.NewReader(data[:len(data)-3])); !errors.Is(err, ErrBadSnapshot) {
		t.Errorf("truncated body: error = %v, want ErrBadSnapshot", err)
	}
}

func TestFromFrequenciesValidation(t *testing.T) {
	if _, err := FromFrequencies([]int64{1, -1}, WithStrictNonNegative()); !errors.Is(err, ErrNegativeFrequency) {
		t.Errorf("strict FromFrequencies with negative input error = %v, want ErrNegativeFrequency", err)
	}
	p, err := FromFrequencies(nil)
	if err != nil {
		t.Fatalf("FromFrequencies(nil): %v", err)
	}
	if p.Cap() != 0 {
		t.Errorf("Cap = %d, want 0", p.Cap())
	}
}

func TestFromFrequenciesEventAttribution(t *testing.T) {
	p, err := FromFrequencies([]int64{3, -2, 0})
	if err != nil {
		t.Fatal(err)
	}
	adds, removes := p.Events()
	if adds != 3 || removes != 2 {
		t.Errorf("Events = (%d,%d), want (3,2)", adds, removes)
	}
	if p.Total() != 1 {
		t.Errorf("Total = %d, want 1", p.Total())
	}
}

func TestClone(t *testing.T) {
	p := mustProfile(t, 16)
	rng := rand.New(rand.NewSource(23))
	for i := 0; i < 500; i++ {
		_ = p.Add(rng.Intn(16))
	}
	q := p.Clone()
	if err := q.CheckInvariants(); err != nil {
		t.Fatalf("clone invariants: %v", err)
	}
	// Mutating the clone must not affect the original.
	before, _ := p.Count(3)
	for i := 0; i < 10; i++ {
		_ = q.Add(3)
	}
	after, _ := p.Count(3)
	if before != after {
		t.Errorf("mutating clone changed original: %d -> %d", before, after)
	}
	qc, _ := q.Count(3)
	if qc != before+10 {
		t.Errorf("clone Count(3) = %d, want %d", qc, before+10)
	}
	if err := p.CheckInvariants(); err != nil {
		t.Fatal(err)
	}
	if err := q.CheckInvariants(); err != nil {
		t.Fatal(err)
	}
}
