package core

import (
	"bytes"
	"errors"
	"math/rand"
	"testing"
)

func TestSnapshotRoundTrip(t *testing.T) {
	p := mustProfile(t, 32)
	rng := rand.New(rand.NewSource(17))
	for i := 0; i < 2000; i++ {
		x := rng.Intn(32)
		if rng.Float64() < 0.7 {
			_ = p.Add(x)
		} else {
			_ = p.Remove(x)
		}
	}

	var buf bytes.Buffer
	if err := p.WriteSnapshot(&buf); err != nil {
		t.Fatalf("WriteSnapshot: %v", err)
	}
	q, err := ReadSnapshot(&buf)
	if err != nil {
		t.Fatalf("ReadSnapshot: %v", err)
	}
	if err := q.CheckInvariants(); err != nil {
		t.Fatalf("restored profile invariants: %v", err)
	}

	if q.Cap() != p.Cap() || q.Total() != p.Total() || q.Active() != p.Active() {
		t.Errorf("restored summary mismatch: %+v vs %+v", q.Summarize(), p.Summarize())
	}
	pa, pr := p.Events()
	qa, qr := q.Events()
	if pa != qa || pr != qr {
		t.Errorf("restored event counters (%d,%d), want (%d,%d)", qa, qr, pa, pr)
	}
	for x := 0; x < 32; x++ {
		cp, _ := p.Count(x)
		cq, _ := q.Count(x)
		if cp != cq {
			t.Errorf("Count(%d): restored %d, want %d", x, cq, cp)
		}
	}
	// The restored profile must remain updatable.
	if err := q.Add(0); err != nil {
		t.Fatal(err)
	}
	if err := q.CheckInvariants(); err != nil {
		t.Fatal(err)
	}
}

func TestSnapshotPreservesStrictMode(t *testing.T) {
	p := mustProfile(t, 4, WithStrictNonNegative())
	_ = p.Add(1)
	var buf bytes.Buffer
	if err := p.WriteSnapshot(&buf); err != nil {
		t.Fatal(err)
	}
	q, err := ReadSnapshot(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if err := q.Remove(0); !errors.Is(err, ErrNegativeFrequency) {
		t.Errorf("restored profile lost strict mode: Remove error = %v", err)
	}
}

func TestSnapshotEmptyProfile(t *testing.T) {
	p := mustProfile(t, 0)
	var buf bytes.Buffer
	if err := p.WriteSnapshot(&buf); err != nil {
		t.Fatal(err)
	}
	q, err := ReadSnapshot(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if q.Cap() != 0 {
		t.Errorf("restored capacity = %d, want 0", q.Cap())
	}
}

func TestReadSnapshotRejectsCorruptInput(t *testing.T) {
	cases := map[string][]byte{
		"empty":       {},
		"short magic": []byte("SP"),
		"bad magic":   []byte("XXXX\x00\x00\x00\x00"),
		"truncated":   append([]byte("SPF1\x00"), 0xFF), // uvarint cut short
	}
	for name, data := range cases {
		if _, err := ReadSnapshot(bytes.NewReader(data)); !errors.Is(err, ErrBadSnapshot) {
			t.Errorf("%s: error = %v, want ErrBadSnapshot", name, err)
		}
	}

	// A valid header that promises more frequencies than it carries.
	p := mustProfile(t, 8)
	var buf bytes.Buffer
	if err := p.WriteSnapshot(&buf); err != nil {
		t.Fatal(err)
	}
	data := buf.Bytes()
	if _, err := ReadSnapshot(bytes.NewReader(data[:len(data)-3])); !errors.Is(err, ErrBadSnapshot) {
		t.Errorf("truncated body: error = %v, want ErrBadSnapshot", err)
	}
}

func TestFromFrequenciesValidation(t *testing.T) {
	if _, err := FromFrequencies([]int64{1, -1}, WithStrictNonNegative()); !errors.Is(err, ErrNegativeFrequency) {
		t.Errorf("strict FromFrequencies with negative input error = %v, want ErrNegativeFrequency", err)
	}
	p, err := FromFrequencies(nil)
	if err != nil {
		t.Fatalf("FromFrequencies(nil): %v", err)
	}
	if p.Cap() != 0 {
		t.Errorf("Cap = %d, want 0", p.Cap())
	}
}

func TestFromFrequenciesEventAttribution(t *testing.T) {
	p, err := FromFrequencies([]int64{3, -2, 0})
	if err != nil {
		t.Fatal(err)
	}
	adds, removes := p.Events()
	if adds != 3 || removes != 2 {
		t.Errorf("Events = (%d,%d), want (3,2)", adds, removes)
	}
	if p.Total() != 1 {
		t.Errorf("Total = %d, want 1", p.Total())
	}
}

func TestClone(t *testing.T) {
	p := mustProfile(t, 16)
	rng := rand.New(rand.NewSource(23))
	for i := 0; i < 500; i++ {
		_ = p.Add(rng.Intn(16))
	}
	q := p.Clone()
	if err := q.CheckInvariants(); err != nil {
		t.Fatalf("clone invariants: %v", err)
	}
	// Mutating the clone must not affect the original.
	before, _ := p.Count(3)
	for i := 0; i < 10; i++ {
		_ = q.Add(3)
	}
	after, _ := p.Count(3)
	if before != after {
		t.Errorf("mutating clone changed original: %d -> %d", before, after)
	}
	qc, _ := q.Count(3)
	if qc != before+10 {
		t.Errorf("clone Count(3) = %d, want %d", qc, before+10)
	}
	if err := p.CheckInvariants(); err != nil {
		t.Fatal(err)
	}
	if err := q.CheckInvariants(); err != nil {
		t.Fatal(err)
	}
}

func TestLoadFrequencies(t *testing.T) {
	p := MustNew(5)
	// Build a reference history: object 1 has 3 adds and 1 remove (net 2).
	freqs := []int64{0, 2, -1, 4, 0}
	// Historical counters: synthetic minimum is adds=6, removes=1; two extra
	// cancelled pairs on top must be preserved verbatim.
	if err := p.LoadFrequencies(freqs, 8, 3); err != nil {
		t.Fatal(err)
	}
	for x, want := range freqs {
		if got, _ := p.Count(x); got != want {
			t.Fatalf("Count(%d) = %d, want %d", x, got, want)
		}
	}
	adds, removes := p.Events()
	if adds != 8 || removes != 3 {
		t.Fatalf("events = %d/%d, want 8/3", adds, removes)
	}
	if got := p.Total(); got != 5 {
		t.Fatalf("Total = %d, want 5", got)
	}
	if err := p.CheckInvariants(); err != nil {
		t.Fatalf("invariants after load: %v", err)
	}

	// Reloading replaces the state rather than accumulating.
	if err := p.LoadFrequencies([]int64{1, 1, 1, 1, 1}, 5, 0); err != nil {
		t.Fatal(err)
	}
	if got := p.Total(); got != 5 {
		t.Fatalf("Total after reload = %d, want 5", got)
	}

	// Length mismatch.
	if err := p.LoadFrequencies([]int64{1}, 1, 0); !errors.Is(err, ErrBadSnapshot) {
		t.Fatalf("short load = %v, want ErrBadSnapshot", err)
	}
	// Counters that do not net to the frequencies.
	if err := p.LoadFrequencies([]int64{1, 0, 0, 0, 0}, 2, 0); !errors.Is(err, ErrBadSnapshot) {
		t.Fatalf("inconsistent counters = %v, want ErrBadSnapshot", err)
	}
	// Strict profiles reject negative loads, without mutating.
	strict := MustNew(2, WithStrictNonNegative())
	if err := strict.Add(0); err != nil {
		t.Fatal(err)
	}
	if err := strict.LoadFrequencies([]int64{1, -1}, 1, 1); !errors.Is(err, ErrNegativeFrequency) {
		t.Fatalf("strict negative load = %v, want ErrNegativeFrequency", err)
	}
	if got, _ := strict.Count(0); got != 1 {
		t.Fatalf("failed load mutated the profile: Count(0) = %d, want 1", got)
	}
	if !strict.StrictNonNegative() {
		t.Fatal("StrictNonNegative accessor = false on a strict profile")
	}
}
