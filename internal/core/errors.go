package core

import (
	"errors"
	"fmt"
)

// Taxonomy roots. Every operational error a profile can return resolves, via
// errors.Is, to exactly one of these classes (the root package re-exports
// them), so callers — and the HTTP layer mapping errors onto status codes —
// branch on a closed set instead of matching message strings.
var (
	// ErrOutOfRange classifies every argument outside its domain: object
	// ids outside [0, m), ranks and K parameters outside [1, m], NaN
	// quantiles. ErrObjectRange and ErrBadRank both resolve to it.
	ErrOutOfRange = errors.New("sprofile: argument out of range")

	// ErrStrictViolation classifies updates a strict non-negative profile
	// must refuse. ErrNegativeFrequency resolves to it.
	ErrStrictViolation = errors.New("sprofile: strict non-negativity violated")

	// ErrCapExceeded classifies requests that need more object slots than
	// the profile has; the keyed mappers' full condition resolves to it.
	ErrCapExceeded = errors.New("sprofile: capacity exceeded")

	// ErrInvalidAction reports a log tuple whose action is neither add nor
	// remove.
	ErrInvalidAction = errors.New("sprofile: invalid action")

	// ErrInvalidQuery reports a malformed composite Query; the specific
	// offence is wrapped alongside it (usually an ErrOutOfRange argument),
	// so errors.Is matches both.
	ErrInvalidQuery = errors.New("sprofile: invalid query")
)

// Tagged returns a sentinel error with its own message that errors.Is also
// matches class. It is how the package's concrete sentinels (and those of
// sibling packages such as idmap) are filed under the taxonomy roots above
// without contorting their messages.
func Tagged(class error, msg string) error {
	return &taggedError{msg: msg, class: class}
}

type taggedError struct {
	msg   string
	class error
}

func (e *taggedError) Error() string { return e.msg }
func (e *taggedError) Unwrap() error { return e.class }

// Sentinel errors returned by Profile operations. They are wrapped with
// contextual detail; use errors.Is to test for them (or for the taxonomy
// roots they resolve to).
var (
	// ErrObjectRange is returned when an object id lies outside [0, m).
	// Resolves to ErrOutOfRange.
	ErrObjectRange = Tagged(ErrOutOfRange, "core: object id out of range")

	// ErrNegativeFrequency is returned by Remove in strict mode when the
	// removal would drive an object's frequency below zero. Resolves to
	// ErrStrictViolation.
	ErrNegativeFrequency = Tagged(ErrStrictViolation, "core: frequency would become negative")

	// ErrEmptyProfile is returned when a query needs at least one object
	// slot but the profile was built with m == 0.
	ErrEmptyProfile = errors.New("core: profile has no object slots")

	// ErrBadRank is returned when a rank or K parameter is out of range
	// (including NaN quantiles). Resolves to ErrOutOfRange.
	ErrBadRank = Tagged(ErrOutOfRange, "core: rank out of range")

	// ErrBadSnapshot is returned when decoding a snapshot that is
	// truncated, corrupt, or produced by an incompatible version.
	ErrBadSnapshot = errors.New("core: invalid snapshot")

	// ErrCapacity is returned by New when the requested capacity is
	// negative or exceeds the addressable limit.
	ErrCapacity = errors.New("core: invalid capacity")
)

func errObjectRange(x, m int) error {
	return fmt.Errorf("%w: id %d, capacity %d", ErrObjectRange, x, m)
}

func errBadRank(k, m int) error {
	return fmt.Errorf("%w: k %d, capacity %d", ErrBadRank, k, m)
}

func errInvalidAction(a Action) error {
	return fmt.Errorf("%w %d", ErrInvalidAction, a)
}
