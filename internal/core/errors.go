package core

import (
	"errors"
	"fmt"
)

// Sentinel errors returned by Profile operations. They are wrapped with
// contextual detail; use errors.Is to test for them.
var (
	// ErrObjectRange is returned when an object id lies outside [0, m).
	ErrObjectRange = errors.New("core: object id out of range")

	// ErrNegativeFrequency is returned by Remove in strict mode when the
	// removal would drive an object's frequency below zero.
	ErrNegativeFrequency = errors.New("core: frequency would become negative")

	// ErrEmptyProfile is returned when a query needs at least one object
	// slot but the profile was built with m == 0.
	ErrEmptyProfile = errors.New("core: profile has no object slots")

	// ErrBadRank is returned when a rank or K parameter is out of range.
	ErrBadRank = errors.New("core: rank out of range")

	// ErrBadSnapshot is returned when decoding a snapshot that is
	// truncated, corrupt, or produced by an incompatible version.
	ErrBadSnapshot = errors.New("core: invalid snapshot")

	// ErrCapacity is returned by New when the requested capacity is
	// negative or exceeds the addressable limit.
	ErrCapacity = errors.New("core: invalid capacity")
)

func errObjectRange(x, m int) error {
	return fmt.Errorf("%w: id %d, capacity %d", ErrObjectRange, x, m)
}

func errBadRank(k, m int) error {
	return fmt.Errorf("%w: k %d, capacity %d", ErrBadRank, k, m)
}
