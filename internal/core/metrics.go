package core

import (
	"errors"

	"sprofile/internal/metrics"
)

// Ingest-plane metric families, updated at batch granularity only: one or two
// atomic adds per coalesce/apply batch, never per event, so the paper's O(1)
// per-event hot path stays untouched. The coalesce pair exposes the
// coalescing ratio (events in over deltas out) directly in PromQL:
// rate(events)/rate(deltas).
var (
	mCoalesceEvents = metrics.Default().Counter("sprofile_ingest_coalesce_events_total",
		"Tuples folded by Coalesce batches (the gross event count).")
	mCoalescedDeltas = metrics.Default().Counter("sprofile_ingest_coalesced_deltas_total",
		"Net per-object deltas Coalesce produced (the post-coalescing count).")
	mAppliedDeltas = metrics.Default().Counter("sprofile_ingest_applied_deltas_total",
		"Coalesced deltas applied to profiles via the batch path.")
	mStrictViolations = metrics.Default().Counter("sprofile_ingest_strict_violations_total",
		"Batch applies rejected by strict non-negative mode.")
)

// countApplied is the ApplyDeltas epilogue: n deltas landed, and err (if any)
// is classified. Split out so the loop above it stays branch-free.
func countApplied(n int, err error) {
	mAppliedDeltas.Add(uint64(n))
	if err != nil && errors.Is(err, ErrNegativeFrequency) {
		mStrictViolations.Inc()
	}
}
