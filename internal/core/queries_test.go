package core

import (
	"errors"
	"math/rand"
	"sort"
	"testing"
)

// buildFrom applies adds so that object x ends with frequency freqs[x],
// using only the public Add/Remove API (unlike FromFrequencies).
func buildFrom(t *testing.T, freqs []int64) *Profile {
	t.Helper()
	p := mustProfile(t, len(freqs))
	for x, f := range freqs {
		for ; f > 0; f-- {
			if err := p.Add(x); err != nil {
				t.Fatal(err)
			}
		}
		for ; f < 0; f++ {
			if err := p.Remove(x); err != nil {
				t.Fatal(err)
			}
		}
	}
	if err := p.CheckInvariants(); err != nil {
		t.Fatal(err)
	}
	return p
}

func TestModeAndMin(t *testing.T) {
	p := buildFrom(t, []int64{5, 2, 5, 0, 1})
	mode, n, err := p.Mode()
	if err != nil {
		t.Fatal(err)
	}
	if mode.Frequency != 5 || n != 2 {
		t.Errorf("Mode = %+v count %d, want freq 5 count 2", mode, n)
	}
	objs, f, err := p.ModeAll()
	if err != nil {
		t.Fatal(err)
	}
	sort.Ints(objs)
	if f != 5 || len(objs) != 2 || objs[0] != 0 || objs[1] != 2 {
		t.Errorf("ModeAll = %v freq %d, want [0 2] freq 5", objs, f)
	}

	min, n, err := p.Min()
	if err != nil {
		t.Fatal(err)
	}
	if min.Object != 3 || min.Frequency != 0 || n != 1 {
		t.Errorf("Min = %+v count %d, want object 3 freq 0 count 1", min, n)
	}
	minObjs, minF, err := p.MinAll()
	if err != nil {
		t.Fatal(err)
	}
	if minF != 0 || len(minObjs) != 1 || minObjs[0] != 3 {
		t.Errorf("MinAll = %v freq %d, want [3] freq 0", minObjs, minF)
	}

	max, err := p.Max()
	if err != nil {
		t.Fatal(err)
	}
	if max != 5 {
		t.Errorf("Max = %d, want 5", max)
	}
}

func TestKthLargestAndSmallest(t *testing.T) {
	freqs := []int64{5, 2, 5, 0, 1}
	p := buildFrom(t, freqs)
	sorted := append([]int64(nil), freqs...)
	sort.Slice(sorted, func(i, j int) bool { return sorted[i] < sorted[j] })

	for k := 1; k <= len(freqs); k++ {
		e, err := p.KthLargest(k)
		if err != nil {
			t.Fatal(err)
		}
		if want := sorted[len(sorted)-k]; e.Frequency != want {
			t.Errorf("KthLargest(%d).Frequency = %d, want %d", k, e.Frequency, want)
		}
		s, err := p.KthSmallest(k)
		if err != nil {
			t.Fatal(err)
		}
		if want := sorted[k-1]; s.Frequency != want {
			t.Errorf("KthSmallest(%d).Frequency = %d, want %d", k, s.Frequency, want)
		}
	}
	for _, k := range []int{0, -1, 6} {
		if _, err := p.KthLargest(k); !errors.Is(err, ErrBadRank) {
			t.Errorf("KthLargest(%d) error = %v, want ErrBadRank", k, err)
		}
		if _, err := p.KthSmallest(k); !errors.Is(err, ErrBadRank) {
			t.Errorf("KthSmallest(%d) error = %v, want ErrBadRank", k, err)
		}
	}
}

func TestAtRankBounds(t *testing.T) {
	p := buildFrom(t, []int64{1, 2, 3})
	if _, err := p.AtRank(-1); !errors.Is(err, ErrBadRank) {
		t.Errorf("AtRank(-1) error = %v, want ErrBadRank", err)
	}
	if _, err := p.AtRank(3); !errors.Is(err, ErrBadRank) {
		t.Errorf("AtRank(3) error = %v, want ErrBadRank", err)
	}
	e, err := p.AtRank(0)
	if err != nil || e.Frequency != 1 {
		t.Errorf("AtRank(0) = %+v, %v; want freq 1", e, err)
	}
	e, err = p.AtRank(2)
	if err != nil || e.Frequency != 3 {
		t.Errorf("AtRank(2) = %+v, %v; want freq 3", e, err)
	}
}

func TestTopKAndBottomK(t *testing.T) {
	freqs := []int64{7, 1, 4, 4, 9, 0}
	p := buildFrom(t, freqs)

	top := p.TopK(3)
	if len(top) != 3 {
		t.Fatalf("TopK(3) returned %d entries", len(top))
	}
	wantTop := []int64{9, 7, 4}
	for i, e := range top {
		if e.Frequency != wantTop[i] {
			t.Errorf("TopK[%d].Frequency = %d, want %d", i, e.Frequency, wantTop[i])
		}
	}

	bottom := p.BottomK(2)
	wantBottom := []int64{0, 1}
	for i, e := range bottom {
		if e.Frequency != wantBottom[i] {
			t.Errorf("BottomK[%d].Frequency = %d, want %d", i, e.Frequency, wantBottom[i])
		}
	}

	if got := p.TopK(0); got != nil {
		t.Errorf("TopK(0) = %v, want nil", got)
	}
	if got := p.BottomK(-1); got != nil {
		t.Errorf("BottomK(-1) = %v, want nil", got)
	}
	if got := p.TopK(100); len(got) != len(freqs) {
		t.Errorf("TopK(100) returned %d entries, want %d", len(got), len(freqs))
	}
	if got := p.BottomK(100); len(got) != len(freqs) {
		t.Errorf("BottomK(100) returned %d entries, want %d", len(got), len(freqs))
	}
}

func TestMedianAndQuantile(t *testing.T) {
	freqs := []int64{10, 20, 30, 40, 50}
	p := buildFrom(t, freqs)
	med, err := p.Median()
	if err != nil {
		t.Fatal(err)
	}
	if med.Frequency != 30 {
		t.Errorf("Median.Frequency = %d, want 30", med.Frequency)
	}

	cases := []struct {
		q    float64
		want int64
	}{
		{0, 10}, {0.25, 20}, {0.5, 30}, {0.75, 40}, {1, 50},
		{-0.5, 10}, {1.5, 50}, // clamped
	}
	for _, c := range cases {
		e, err := p.Quantile(c.q)
		if err != nil {
			t.Fatal(err)
		}
		if e.Frequency != c.want {
			t.Errorf("Quantile(%v).Frequency = %d, want %d", c.q, e.Frequency, c.want)
		}
	}

	// Even number of slots: lower median.
	p2 := buildFrom(t, []int64{1, 2, 3, 4})
	med2, err := p2.Median()
	if err != nil {
		t.Fatal(err)
	}
	if med2.Frequency != 2 {
		t.Errorf("lower median of {1,2,3,4} = %d, want 2", med2.Frequency)
	}
}

func TestMajority(t *testing.T) {
	p := buildFrom(t, []int64{8, 1, 1, 1})
	e, ok, err := p.Majority()
	if err != nil {
		t.Fatal(err)
	}
	if !ok || e.Object != 0 {
		t.Errorf("Majority = %+v ok=%v, want object 0", e, ok)
	}

	p2 := buildFrom(t, []int64{3, 3, 3})
	if _, ok, _ := p2.Majority(); ok {
		t.Error("Majority reported on a stream with no majority element")
	}

	p3 := mustProfile(t, 3)
	if _, ok, _ := p3.Majority(); ok {
		t.Error("Majority reported on an empty stream")
	}
}

func TestDistributionMatchesFrequencies(t *testing.T) {
	rng := rand.New(rand.NewSource(11))
	freqs := make([]int64, 50)
	for i := range freqs {
		freqs[i] = int64(rng.Intn(8)) - 2
	}
	p, err := FromFrequencies(freqs)
	if err != nil {
		t.Fatal(err)
	}
	dist := p.Distribution()
	// Rebuild a histogram from raw frequencies and compare.
	hist := map[int64]int{}
	for _, f := range freqs {
		hist[f]++
	}
	if len(dist) != len(hist) {
		t.Fatalf("distribution has %d buckets, want %d", len(dist), len(hist))
	}
	var prev int64
	for i, fc := range dist {
		if i > 0 && fc.Freq <= prev {
			t.Errorf("distribution not strictly ascending at index %d", i)
		}
		prev = fc.Freq
		if hist[fc.Freq] != fc.Count {
			t.Errorf("distribution[%d] = %+v, want count %d", i, fc, hist[fc.Freq])
		}
	}

	total := 0
	for _, fc := range dist {
		total += fc.Count
	}
	if total != len(freqs) {
		t.Errorf("distribution counts sum to %d, want %d", total, len(freqs))
	}
}

func TestCountWithFrequencyAtLeast(t *testing.T) {
	freqs := []int64{0, 1, 2, 3, 4, 5, 5, 5}
	p, err := FromFrequencies(freqs)
	if err != nil {
		t.Fatal(err)
	}
	cases := []struct {
		f    int64
		want int
	}{
		{0, 8}, {1, 7}, {3, 5}, {5, 3}, {6, 0}, {-10, 8},
	}
	for _, c := range cases {
		if got := p.CountWithFrequencyAtLeast(c.f); got != c.want {
			t.Errorf("CountWithFrequencyAtLeast(%d) = %d, want %d", c.f, got, c.want)
		}
	}
	empty := mustProfile(t, 0)
	if got := empty.CountWithFrequencyAtLeast(0); got != 0 {
		t.Errorf("empty profile CountWithFrequencyAtLeast = %d, want 0", got)
	}
}

func TestSummarize(t *testing.T) {
	p := buildFrom(t, []int64{3, 0, -1, 7})
	s := p.Summarize()
	if s.Capacity != 4 || s.Total != 9 || s.Active != 2 || s.Negative != 1 {
		t.Errorf("Summary = %+v", s)
	}
	if s.MaxFrequency != 7 || s.MinFrequency != -1 {
		t.Errorf("Summary extremes = %d/%d, want 7/-1", s.MaxFrequency, s.MinFrequency)
	}
	if s.DistinctFrequencies != 4 {
		t.Errorf("DistinctFrequencies = %d, want 4", s.DistinctFrequencies)
	}

	empty := mustProfile(t, 0)
	es := empty.Summarize()
	if es.Capacity != 0 || es.MaxFrequency != 0 || es.MinFrequency != 0 {
		t.Errorf("empty Summary = %+v", es)
	}
}

func TestFrequenciesExport(t *testing.T) {
	want := []int64{4, -2, 0, 9, 9}
	p, err := FromFrequencies(want)
	if err != nil {
		t.Fatal(err)
	}
	got := p.Frequencies(nil)
	if len(got) != len(want) {
		t.Fatalf("Frequencies returned %d values, want %d", len(got), len(want))
	}
	for i := range want {
		if got[i] != want[i] {
			t.Errorf("Frequencies[%d] = %d, want %d", i, got[i], want[i])
		}
	}
	// Reuse a destination buffer.
	buf := make([]int64, 10)
	got2 := p.Frequencies(buf)
	if len(got2) != len(want) {
		t.Fatalf("Frequencies with buffer returned %d values, want %d", len(got2), len(want))
	}
	for i := range want {
		if got2[i] != want[i] {
			t.Errorf("Frequencies(buf)[%d] = %d, want %d", i, got2[i], want[i])
		}
	}
}

func TestDistinctFrequencies(t *testing.T) {
	p := buildFrom(t, []int64{0, 0, 1, 1, 2})
	if got := p.DistinctFrequencies(); got != 3 {
		t.Errorf("DistinctFrequencies = %d, want 3", got)
	}
}

func TestTopKOrderIsNonIncreasing(t *testing.T) {
	rng := rand.New(rand.NewSource(5))
	p := mustProfile(t, 200)
	for i := 0; i < 5000; i++ {
		_ = p.Add(rng.Intn(200))
	}
	top := p.TopK(200)
	for i := 1; i < len(top); i++ {
		if top[i].Frequency > top[i-1].Frequency {
			t.Fatalf("TopK not sorted at %d: %d > %d", i, top[i].Frequency, top[i-1].Frequency)
		}
	}
	bottom := p.BottomK(200)
	for i := 1; i < len(bottom); i++ {
		if bottom[i].Frequency < bottom[i-1].Frequency {
			t.Fatalf("BottomK not sorted at %d", i)
		}
	}
}
