package core

import (
	"errors"
	"math/rand"
	"testing"
)

func mustProfile(t *testing.T, m int, opts ...Option) *Profile {
	t.Helper()
	p, err := New(m, opts...)
	if err != nil {
		t.Fatalf("New(%d): %v", m, err)
	}
	return p
}

func checkCount(t *testing.T, p *Profile, x int, want int64) {
	t.Helper()
	got, err := p.Count(x)
	if err != nil {
		t.Fatalf("Count(%d): %v", x, err)
	}
	if got != want {
		t.Fatalf("Count(%d) = %d, want %d", x, got, want)
	}
}

func TestNewValidation(t *testing.T) {
	if _, err := New(-1); !errors.Is(err, ErrCapacity) {
		t.Errorf("New(-1) error = %v, want ErrCapacity", err)
	}
	if _, err := New(0); err != nil {
		t.Errorf("New(0) error = %v, want nil", err)
	}
	if _, err := New(10); err != nil {
		t.Errorf("New(10) error = %v, want nil", err)
	}
}

func TestMustNewPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Error("MustNew(-1) did not panic")
		}
	}()
	MustNew(-1)
}

func TestInitialState(t *testing.T) {
	p := mustProfile(t, 8)
	if p.Cap() != 8 {
		t.Errorf("Cap = %d, want 8", p.Cap())
	}
	if p.Total() != 0 || p.Active() != 0 || p.NegativeCount() != 0 {
		t.Errorf("fresh profile: total=%d active=%d negative=%d, want zeros",
			p.Total(), p.Active(), p.NegativeCount())
	}
	if p.Blocks() != 1 {
		t.Errorf("fresh profile has %d blocks, want 1", p.Blocks())
	}
	for x := 0; x < 8; x++ {
		checkCount(t, p, x, 0)
	}
	if err := p.CheckInvariants(); err != nil {
		t.Fatal(err)
	}
}

// TestPaperFigure1 replays the "add" example of Figure 1: starting from
// frequencies [0 3 1 3 0 0 0 0] an add of object 0 ("1" in the paper's
// 1-based ids) must move it into its own block with frequency 1.
func TestPaperFigure1(t *testing.T) {
	initial := []int64{0, 3, 1, 3, 0, 0, 0, 0}
	p, err := FromFrequencies(initial)
	if err != nil {
		t.Fatal(err)
	}
	if err := p.CheckInvariants(); err != nil {
		t.Fatal(err)
	}
	// The paper's Figure 1(c) block set for the sorted array
	// [0 0 0 0 0 1 3 3] is (1,5,0)(6,6,1)(7,8,3) in 1-based indexing.
	dist := p.Distribution()
	wantDist := []FreqCount{{0, 5}, {1, 1}, {3, 2}}
	if len(dist) != len(wantDist) {
		t.Fatalf("distribution = %v, want %v", dist, wantDist)
	}
	for i := range dist {
		if dist[i] != wantDist[i] {
			t.Fatalf("distribution[%d] = %v, want %v", i, dist[i], wantDist[i])
		}
	}

	if err := p.Add(0); err != nil {
		t.Fatal(err)
	}
	if err := p.CheckInvariants(); err != nil {
		t.Fatal(err)
	}
	checkCount(t, p, 0, 1)
	// Figure 1(d): sorted array [0 0 0 0 1 1 3 3], blocks (1,4,0)(5,6,1)(7,8,3).
	dist = p.Distribution()
	wantDist = []FreqCount{{0, 4}, {1, 2}, {3, 2}}
	for i := range wantDist {
		if i >= len(dist) || dist[i] != wantDist[i] {
			t.Fatalf("after add: distribution = %v, want %v", dist, wantDist)
		}
	}
}

// TestPaperFigure2 replays the "remove" example of Figure 2: from
// frequencies [1 3 1 3 0 0 0 0] removing object 3 ("4" in 1-based ids)
// splits the top block and creates a new block with frequency 2.
func TestPaperFigure2(t *testing.T) {
	p, err := FromFrequencies([]int64{1, 3, 1, 3, 0, 0, 0, 0})
	if err != nil {
		t.Fatal(err)
	}
	if err := p.Remove(3); err != nil {
		t.Fatal(err)
	}
	if err := p.CheckInvariants(); err != nil {
		t.Fatal(err)
	}
	checkCount(t, p, 3, 2)
	// Figure 2(b): sorted array [0 0 0 0 1 1 2 3], blocks (1,4,0)(5,6,1)(7,7,2)(8,8,3).
	dist := p.Distribution()
	wantDist := []FreqCount{{0, 4}, {1, 2}, {2, 1}, {3, 1}}
	if len(dist) != len(wantDist) {
		t.Fatalf("distribution = %v, want %v", dist, wantDist)
	}
	for i := range dist {
		if dist[i] != wantDist[i] {
			t.Fatalf("distribution[%d] = %v, want %v", i, dist[i], wantDist[i])
		}
	}
	mode, n, err := p.Mode()
	if err != nil {
		t.Fatal(err)
	}
	if mode.Object != 1 || mode.Frequency != 3 || n != 1 {
		t.Errorf("mode = %+v (count %d), want object 1, freq 3, count 1", mode, n)
	}
}

func TestAddRemoveRoundTrip(t *testing.T) {
	p := mustProfile(t, 4)
	for i := 0; i < 5; i++ {
		if err := p.Add(2); err != nil {
			t.Fatal(err)
		}
	}
	checkCount(t, p, 2, 5)
	for i := 0; i < 5; i++ {
		if err := p.Remove(2); err != nil {
			t.Fatal(err)
		}
	}
	checkCount(t, p, 2, 0)
	if p.Total() != 0 {
		t.Errorf("Total = %d, want 0", p.Total())
	}
	if err := p.CheckInvariants(); err != nil {
		t.Fatal(err)
	}
}

func TestObjectRangeErrors(t *testing.T) {
	p := mustProfile(t, 3)
	for _, x := range []int{-1, 3, 1000} {
		if err := p.Add(x); !errors.Is(err, ErrObjectRange) {
			t.Errorf("Add(%d) error = %v, want ErrObjectRange", x, err)
		}
		if err := p.Remove(x); !errors.Is(err, ErrObjectRange) {
			t.Errorf("Remove(%d) error = %v, want ErrObjectRange", x, err)
		}
		if _, err := p.Count(x); !errors.Is(err, ErrObjectRange) {
			t.Errorf("Count(%d) error = %v, want ErrObjectRange", x, err)
		}
		if _, err := p.Rank(x); !errors.Is(err, ErrObjectRange) {
			t.Errorf("Rank(%d) error = %v, want ErrObjectRange", x, err)
		}
	}
}

func TestNegativeFrequenciesAllowedByDefault(t *testing.T) {
	p := mustProfile(t, 3)
	if err := p.Remove(1); err != nil {
		t.Fatalf("Remove on zero frequency: %v", err)
	}
	checkCount(t, p, 1, -1)
	if p.NegativeCount() != 1 {
		t.Errorf("NegativeCount = %d, want 1", p.NegativeCount())
	}
	min, n, err := p.Min()
	if err != nil {
		t.Fatal(err)
	}
	if min.Object != 1 || min.Frequency != -1 || n != 1 {
		t.Errorf("Min = %+v count %d, want object 1 freq -1 count 1", min, n)
	}
	if err := p.Add(1); err != nil {
		t.Fatal(err)
	}
	if p.NegativeCount() != 0 {
		t.Errorf("NegativeCount after recovery = %d, want 0", p.NegativeCount())
	}
	if err := p.CheckInvariants(); err != nil {
		t.Fatal(err)
	}
}

func TestStrictNonNegative(t *testing.T) {
	p := mustProfile(t, 3, WithStrictNonNegative())
	if err := p.Remove(0); !errors.Is(err, ErrNegativeFrequency) {
		t.Fatalf("Remove on empty object error = %v, want ErrNegativeFrequency", err)
	}
	// The failed remove must not have changed anything.
	checkCount(t, p, 0, 0)
	if err := p.CheckInvariants(); err != nil {
		t.Fatal(err)
	}
	if err := p.Add(0); err != nil {
		t.Fatal(err)
	}
	if err := p.Remove(0); err != nil {
		t.Fatal(err)
	}
	if err := p.Remove(0); !errors.Is(err, ErrNegativeFrequency) {
		t.Errorf("second Remove error = %v, want ErrNegativeFrequency", err)
	}
}

func TestApply(t *testing.T) {
	p := mustProfile(t, 4)
	if err := p.Apply(Tuple{Object: 1, Action: ActionAdd}); err != nil {
		t.Fatal(err)
	}
	if err := p.Apply(Tuple{Object: 1, Action: ActionRemove}); err != nil {
		t.Fatal(err)
	}
	if err := p.Apply(Tuple{Object: 1, Action: Action(9)}); err == nil {
		t.Error("Apply with invalid action did not fail")
	}
	adds, removes := p.Events()
	if adds != 1 || removes != 1 {
		t.Errorf("Events = (%d, %d), want (1, 1)", adds, removes)
	}
}

func TestApplyAllStopsAtError(t *testing.T) {
	p := mustProfile(t, 2)
	tuples := []Tuple{
		{Object: 0, Action: ActionAdd},
		{Object: 5, Action: ActionAdd}, // out of range
		{Object: 1, Action: ActionAdd},
	}
	n, err := p.ApplyAll(tuples)
	if err == nil {
		t.Fatal("ApplyAll did not return an error")
	}
	if n != 1 {
		t.Errorf("ApplyAll applied %d tuples, want 1", n)
	}
	checkCount(t, p, 0, 1)
	checkCount(t, p, 1, 0)
}

func TestReset(t *testing.T) {
	p := mustProfile(t, 5)
	for i := 0; i < 5; i++ {
		for j := 0; j <= i; j++ {
			if err := p.Add(i); err != nil {
				t.Fatal(err)
			}
		}
	}
	p.Reset()
	if p.Total() != 0 || p.Active() != 0 || p.Blocks() != 1 {
		t.Errorf("after Reset: total=%d active=%d blocks=%d", p.Total(), p.Active(), p.Blocks())
	}
	if err := p.CheckInvariants(); err != nil {
		t.Fatal(err)
	}
	for x := 0; x < 5; x++ {
		checkCount(t, p, x, 0)
	}
}

func TestZeroCapacityProfile(t *testing.T) {
	p := mustProfile(t, 0)
	if err := p.Add(0); !errors.Is(err, ErrObjectRange) {
		t.Errorf("Add on empty profile error = %v, want ErrObjectRange", err)
	}
	if _, _, err := p.Mode(); !errors.Is(err, ErrEmptyProfile) {
		t.Errorf("Mode on empty profile error = %v, want ErrEmptyProfile", err)
	}
	if _, _, err := p.Min(); !errors.Is(err, ErrEmptyProfile) {
		t.Errorf("Min on empty profile error = %v, want ErrEmptyProfile", err)
	}
	if _, err := p.Median(); !errors.Is(err, ErrEmptyProfile) {
		t.Errorf("Median on empty profile error = %v, want ErrEmptyProfile", err)
	}
	if d := p.Distribution(); d != nil {
		t.Errorf("Distribution on empty profile = %v, want nil", d)
	}
	if err := p.CheckInvariants(); err != nil {
		t.Fatal(err)
	}
}

func TestSingleObjectProfile(t *testing.T) {
	p := mustProfile(t, 1)
	for i := 1; i <= 100; i++ {
		if err := p.Add(0); err != nil {
			t.Fatal(err)
		}
		mode, n, err := p.Mode()
		if err != nil {
			t.Fatal(err)
		}
		if mode.Object != 0 || mode.Frequency != int64(i) || n != 1 {
			t.Fatalf("after %d adds: mode=%+v count=%d", i, mode, n)
		}
	}
	if err := p.CheckInvariants(); err != nil {
		t.Fatal(err)
	}
}

func TestActionHelpers(t *testing.T) {
	if ActionAdd.Opposite() != ActionRemove || ActionRemove.Opposite() != ActionAdd {
		t.Error("Opposite is not an involution on the defined actions")
	}
	if got := Action(7).Opposite(); got != Action(7) {
		t.Errorf("Opposite of invalid action = %v, want unchanged", got)
	}
	if ActionAdd.String() != "add" || ActionRemove.String() != "remove" {
		t.Errorf("String() = %q/%q", ActionAdd.String(), ActionRemove.String())
	}
	if Action(7).String() == "" {
		t.Error("String of invalid action is empty")
	}
	if !ActionAdd.Valid() || !ActionRemove.Valid() || Action(0).Valid() {
		t.Error("Valid() misclassifies actions")
	}
}

func TestEventCountersAndMemoryFootprint(t *testing.T) {
	p := mustProfile(t, 100)
	rng := rand.New(rand.NewSource(1))
	wantAdds, wantRemoves := uint64(0), uint64(0)
	for i := 0; i < 1000; i++ {
		x := rng.Intn(100)
		if rng.Intn(2) == 0 {
			if err := p.Add(x); err != nil {
				t.Fatal(err)
			}
			wantAdds++
		} else {
			if err := p.Remove(x); err != nil {
				t.Fatal(err)
			}
			wantRemoves++
		}
	}
	adds, removes := p.Events()
	if adds != wantAdds || removes != wantRemoves {
		t.Errorf("Events = (%d,%d), want (%d,%d)", adds, removes, wantAdds, wantRemoves)
	}
	if p.Total() != int64(wantAdds)-int64(wantRemoves) {
		t.Errorf("Total = %d, want %d", p.Total(), int64(wantAdds)-int64(wantRemoves))
	}
	if p.MemoryFootprint() <= 0 {
		t.Errorf("MemoryFootprint = %d, want > 0", p.MemoryFootprint())
	}
}

func TestBlockCountNeverExceedsCapacity(t *testing.T) {
	const m = 64
	p := mustProfile(t, m)
	rng := rand.New(rand.NewSource(42))
	for i := 0; i < 20000; i++ {
		x := rng.Intn(m)
		if rng.Float64() < 0.7 {
			_ = p.Add(x)
		} else {
			_ = p.Remove(x)
		}
		if p.Blocks() > m {
			t.Fatalf("step %d: %d blocks exceed capacity %d", i, p.Blocks(), m)
		}
	}
	if err := p.CheckInvariants(); err != nil {
		t.Fatal(err)
	}
}

func TestRankConsistency(t *testing.T) {
	p := mustProfile(t, 10)
	rng := rand.New(rand.NewSource(7))
	for i := 0; i < 500; i++ {
		_ = p.Add(rng.Intn(10))
	}
	for x := 0; x < 10; x++ {
		r, err := p.Rank(x)
		if err != nil {
			t.Fatal(err)
		}
		e, err := p.AtRank(r)
		if err != nil {
			t.Fatal(err)
		}
		if e.Object != x {
			t.Errorf("AtRank(Rank(%d)) = object %d", x, e.Object)
		}
		c, _ := p.Count(x)
		if e.Frequency != c {
			t.Errorf("AtRank(Rank(%d)).Frequency = %d, Count = %d", x, e.Frequency, c)
		}
	}
}

func TestWithBlockHint(t *testing.T) {
	p := mustProfile(t, 16, WithBlockHint(64))
	if got := p.arena.capBlocks(); got < 64 {
		t.Errorf("block slab capacity = %d, want >= 64", got)
	}
	for i := 0; i < 16; i++ {
		for j := 0; j <= i; j++ {
			if err := p.Add(i); err != nil {
				t.Fatal(err)
			}
		}
	}
	if err := p.CheckInvariants(); err != nil {
		t.Fatal(err)
	}
	if p.Blocks() != 16 {
		t.Errorf("Blocks = %d, want 16 (all distinct frequencies)", p.Blocks())
	}
}
