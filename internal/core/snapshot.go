package core

import (
	"bufio"
	"encoding/binary"
	"fmt"
	"io"
	"slices"
)

// Snapshot format:
//
//	magic   [4]byte  "SPF1"
//	flags   uint8    bit0 = StrictNonNegative
//	m       uvarint
//	adds    uvarint
//	removes uvarint
//	freqs   m × svarint (zigzag), in object-id order
//
// The block structure is not serialised; WriteSnapshot stores only the
// frequencies and ReadSnapshot rebuilds the sorted profile, which costs
// O(m log m) once rather than complicating the O(1) hot path.

var snapshotMagic = [4]byte{'S', 'P', 'F', '1'}

// WriteSnapshot serialises the profile to w.
func (p *Profile) WriteSnapshot(w io.Writer) error {
	bw := bufio.NewWriter(w)
	if _, err := bw.Write(snapshotMagic[:]); err != nil {
		return err
	}
	var flags byte
	if p.opts.StrictNonNegative {
		flags |= 1
	}
	if err := bw.WriteByte(flags); err != nil {
		return err
	}
	var buf [binary.MaxVarintLen64]byte
	writeUvarint := func(v uint64) error {
		n := binary.PutUvarint(buf[:], v)
		_, err := bw.Write(buf[:n])
		return err
	}
	writeVarint := func(v int64) error {
		n := binary.PutVarint(buf[:], v)
		_, err := bw.Write(buf[:n])
		return err
	}
	if err := writeUvarint(uint64(p.m)); err != nil {
		return err
	}
	if err := writeUvarint(p.adds); err != nil {
		return err
	}
	if err := writeUvarint(p.removes); err != nil {
		return err
	}
	freqs := p.Frequencies(nil)
	for _, f := range freqs {
		if err := writeVarint(f); err != nil {
			return err
		}
	}
	return bw.Flush()
}

// ReadSnapshot reconstructs a profile previously written by WriteSnapshot.
func ReadSnapshot(r io.Reader) (*Profile, error) {
	br := bufio.NewReader(r)
	var magic [4]byte
	if _, err := io.ReadFull(br, magic[:]); err != nil {
		return nil, fmt.Errorf("%w: %v", ErrBadSnapshot, err)
	}
	if magic != snapshotMagic {
		return nil, fmt.Errorf("%w: bad magic %q", ErrBadSnapshot, magic[:])
	}
	flags, err := br.ReadByte()
	if err != nil {
		return nil, fmt.Errorf("%w: %v", ErrBadSnapshot, err)
	}
	mu, err := binary.ReadUvarint(br)
	if err != nil {
		return nil, fmt.Errorf("%w: %v", ErrBadSnapshot, err)
	}
	if mu > MaxCapacity {
		return nil, fmt.Errorf("%w: capacity %d exceeds limit", ErrBadSnapshot, mu)
	}
	adds, err := binary.ReadUvarint(br)
	if err != nil {
		return nil, fmt.Errorf("%w: %v", ErrBadSnapshot, err)
	}
	removes, err := binary.ReadUvarint(br)
	if err != nil {
		return nil, fmt.Errorf("%w: %v", ErrBadSnapshot, err)
	}
	freqs := make([]int64, mu)
	for i := range freqs {
		f, err := binary.ReadVarint(br)
		if err != nil {
			return nil, fmt.Errorf("%w: frequency %d: %v", ErrBadSnapshot, i, err)
		}
		freqs[i] = f
	}
	var opts Options
	if flags&1 != 0 {
		opts.StrictNonNegative = true
	}
	p := newProfile(int32(mu), opts)
	p.loadFrequencies(freqs)
	p.adds = adds
	p.removes = removes
	return p, nil
}

// FromFrequencies builds a profile whose object x starts at frequency
// freqs[x]. It is equivalent to applying |freqs[x]| add/remove events per
// object but costs O(m log m) regardless of the magnitudes.
func FromFrequencies(freqs []int64, opts ...Option) (*Profile, error) {
	if len(freqs) > MaxCapacity {
		return nil, fmt.Errorf("%w: %d", ErrCapacity, len(freqs))
	}
	var o Options
	for _, opt := range opts {
		opt(&o)
	}
	if o.StrictNonNegative {
		for x, f := range freqs {
			if f < 0 {
				return nil, fmt.Errorf("%w: object %d has frequency %d", ErrNegativeFrequency, x, f)
			}
		}
	}
	p := newProfile(int32(len(freqs)), o)
	p.loadFrequencies(freqs)
	// Attribute the initial state to synthetic events for bookkeeping.
	for _, f := range freqs {
		if f > 0 {
			p.adds += uint64(f)
		} else {
			p.removes += uint64(-f)
		}
	}
	return p, nil
}

// StrictNonNegative reports whether the profile was built with
// WithStrictNonNegative.
func (p *Profile) StrictNonNegative() bool { return p.opts.StrictNonNegative }

// LoadFrequencies replaces the profile's entire state: object x ends at
// frequency freqs[x] and the adds/removes counters are set to the given
// historical totals (they must net out to the summed frequencies). It is the
// restore half of checkpointing — unlike FromFrequencies it preserves the
// original event bookkeeping instead of synthesising a minimal one — and
// costs O(m log m). Validation happens before any mutation, so a failed load
// leaves the profile untouched.
func (p *Profile) LoadFrequencies(freqs []int64, adds, removes uint64) error {
	if len(freqs) != int(p.m) {
		return fmt.Errorf("%w: %d frequencies for capacity %d", ErrBadSnapshot, len(freqs), p.m)
	}
	var net int64
	for x, f := range freqs {
		if f < 0 && p.opts.StrictNonNegative {
			return fmt.Errorf("%w: object %d has frequency %d", ErrNegativeFrequency, x, f)
		}
		net += f
	}
	if int64(adds)-int64(removes) != net {
		return fmt.Errorf("%w: %d adds - %d removes does not net to total %d",
			ErrBadSnapshot, adds, removes, net)
	}
	p.loadFrequencies(freqs)
	p.adds = adds
	p.removes = removes
	return nil
}

// loadFrequencies overwrites the profile's state so that object x has
// frequency freqs[x]; len(freqs) must equal p.m.
func (p *Profile) loadFrequencies(freqs []int64) {
	m := int(p.m)
	// Sort packed (frequency, id) pairs rather than ids with an indirect
	// comparator: restore sorts hundreds of thousands of entries, and the
	// contiguous layout keeps the comparisons out of random memory.
	type freqID struct {
		f  int64
		id int32
	}
	order := make([]freqID, m)
	for i := range order {
		order[i] = freqID{f: freqs[i], id: int32(i)}
	}
	slices.SortFunc(order, func(a, b freqID) int {
		if a.f != b.f {
			if a.f < b.f {
				return -1
			}
			return 1
		}
		return int(a.id - b.id)
	})

	p.arena.reset()
	p.total = 0
	p.active = 0
	p.negative = 0
	for r := 0; r < m; r++ {
		x := order[r].id
		p.tToF[r] = x
		p.fToT[x] = int32(r)
	}
	for r := 0; r < m; {
		f := order[r].f
		end := r
		for end+1 < m && order[end+1].f == f {
			end++
		}
		h := p.arena.alloc(int32(r), int32(end), f)
		for i := r; i <= end; i++ {
			p.ptrB[i] = h
		}
		count := int64(end - r + 1)
		p.total += f * count
		if f > 0 {
			p.active += int32(count)
		}
		if f < 0 {
			p.negative += int32(count)
		}
		r = end + 1
	}
}

// Snapshot returns a point-in-time deep copy of the profile. It exists so
// that a plain Profile offers the same consistent-snapshot capability as the
// concurrency wrappers (see sprofile.Snapshotter); the error is always nil.
func (p *Profile) Snapshot() (*Profile, error) { return p.Clone(), nil }

// Clone returns a deep copy of the profile.
func (p *Profile) Clone() *Profile {
	q := &Profile{
		m:        p.m,
		opts:     p.opts,
		fToT:     append([]int32(nil), p.fToT...),
		tToF:     append([]int32(nil), p.tToF...),
		ptrB:     append([]int32(nil), p.ptrB...),
		arena:    &blockArena{slab: append([]block(nil), p.arena.slab...), free: p.arena.free, live: p.arena.live},
		total:    p.total,
		active:   p.active,
		negative: p.negative,
		adds:     p.adds,
		removes:  p.removes,
	}
	return q
}
