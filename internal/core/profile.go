package core

import (
	"fmt"
	"math"
)

// Action describes one event of a log stream: an object is either added
// (frequency +1) or removed (frequency -1).
type Action int8

const (
	// ActionAdd increments the frequency of an object.
	ActionAdd Action = 1
	// ActionRemove decrements the frequency of an object.
	ActionRemove Action = -1
)

// String implements fmt.Stringer.
func (a Action) String() string {
	switch a {
	case ActionAdd:
		return "add"
	case ActionRemove:
		return "remove"
	default:
		return fmt.Sprintf("Action(%d)", int8(a))
	}
}

// Opposite returns the inverse action, used by sliding-window adapters to
// expire tuples (paper §2.3).
func (a Action) Opposite() Action {
	switch a {
	case ActionAdd:
		return ActionRemove
	case ActionRemove:
		return ActionAdd
	default:
		return a
	}
}

// Valid reports whether a is one of the two defined actions.
func (a Action) Valid() bool { return a == ActionAdd || a == ActionRemove }

// Tuple is one log-stream event (x_i, c_i) in the paper's notation.
type Tuple struct {
	Object int
	Action Action
}

// MaxCapacity is the largest number of object slots a Profile can hold. The
// internal rank arrays use 32-bit indices so the limit is MaxInt32.
const MaxCapacity = math.MaxInt32

// Options configures a Profile. The zero value matches the paper's setting:
// frequencies may go negative (a remove may precede any add) and the block
// slab starts with a small default capacity.
type Options struct {
	// StrictNonNegative makes Remove fail with ErrNegativeFrequency instead
	// of letting a frequency drop below zero.
	StrictNonNegative bool

	// BlockHint pre-sizes the block slab. Zero selects a small default.
	// The worst case is m blocks, but real streams use far fewer.
	BlockHint int
}

// Option mutates Options; see With* helpers.
type Option func(*Options)

// WithStrictNonNegative makes removals of absent objects an error rather
// than producing negative frequencies.
func WithStrictNonNegative() Option {
	return func(o *Options) { o.StrictNonNegative = true }
}

// WithBlockHint pre-sizes the block slab to hold hint blocks.
func WithBlockHint(hint int) Option {
	return func(o *Options) { o.BlockHint = hint }
}

// Profile is the S-Profile data structure: a constant-time-per-update
// profile of the frequencies of m objects under a ±1 log stream.
//
// Objects are identified by dense ids in [0, m). Mapping sparse or string
// identifiers onto dense ids is the job of package idmap (and of the public
// sprofile.Keyed wrapper).
//
// A Profile is not safe for concurrent use; wrap it (see sprofile.Concurrent)
// or shard it if multiple goroutines must update it.
type Profile struct {
	m    int32
	opts Options

	// fToT[x] is the rank of object x in the conceptual ascending-sorted
	// frequency array T; tToF[r] is the object at rank r. They are inverse
	// permutations of each other.
	fToT []int32
	tToF []int32

	// ptrB[r] is the arena handle of the block covering rank r.
	ptrB  []int32
	arena *blockArena

	total    int64  // sum of all frequencies
	active   int32  // number of objects with frequency > 0
	negative int32  // number of objects with frequency < 0
	adds     uint64 // count of applied add events
	removes  uint64 // count of applied remove events
}

// New returns a Profile for m object slots, all starting at frequency zero.
func New(m int, opts ...Option) (*Profile, error) {
	if m < 0 || m > MaxCapacity {
		return nil, fmt.Errorf("%w: %d", ErrCapacity, m)
	}
	var o Options
	for _, opt := range opts {
		opt(&o)
	}
	return newProfile(int32(m), o), nil
}

// MustNew is New for callers with a known-good capacity; it panics on error.
func MustNew(m int, opts ...Option) *Profile {
	p, err := New(m, opts...)
	if err != nil {
		panic(err)
	}
	return p
}

func newProfile(m int32, o Options) *Profile {
	hint := o.BlockHint
	if hint <= 0 {
		hint = 16
	}
	p := &Profile{
		m:     m,
		opts:  o,
		fToT:  make([]int32, m),
		tToF:  make([]int32, m),
		ptrB:  make([]int32, m),
		arena: newBlockArena(hint),
	}
	p.initZero()
	return p
}

// initZero sets every frequency to zero: identity permutations and a single
// block covering every rank.
func (p *Profile) initZero() {
	for i := int32(0); i < p.m; i++ {
		p.fToT[i] = i
		p.tToF[i] = i
	}
	p.arena.reset()
	if p.m > 0 {
		h := p.arena.alloc(0, p.m-1, 0)
		for i := int32(0); i < p.m; i++ {
			p.ptrB[i] = h
		}
	}
	p.total = 0
	p.active = 0
	p.negative = 0
	p.adds = 0
	p.removes = 0
}

// Reset restores the profile to its initial all-zero state without releasing
// its memory.
func (p *Profile) Reset() { p.initZero() }

// Cap returns m, the number of object slots.
func (p *Profile) Cap() int { return int(p.m) }

// Total returns the sum of all frequencies (adds minus removes applied).
func (p *Profile) Total() int64 { return p.total }

// Active returns the number of objects whose frequency is strictly positive.
func (p *Profile) Active() int { return int(p.active) }

// NegativeCount returns the number of objects whose frequency is negative.
// It is always zero when the profile was built with WithStrictNonNegative.
func (p *Profile) NegativeCount() int { return int(p.negative) }

// Events returns the number of add and remove events applied since the last
// reset.
func (p *Profile) Events() (adds, removes uint64) { return p.adds, p.removes }

// Blocks returns the number of live blocks, i.e. the number of distinct
// frequency values currently present.
func (p *Profile) Blocks() int { return p.arena.liveBlocks() }

// MemoryFootprint returns an estimate, in bytes, of the heap memory retained
// by the profile (the three rank arrays plus the block slab).
func (p *Profile) MemoryFootprint() int64 {
	const int32Size, blockSize = 4, 16
	return int64(len(p.fToT)+len(p.tToF)+len(p.ptrB))*int32Size +
		int64(p.arena.capBlocks())*blockSize
}

// Count returns the current frequency of object x.
func (p *Profile) Count(x int) (int64, error) {
	if x < 0 || int32(x) >= p.m {
		return 0, errObjectRange(x, int(p.m))
	}
	return p.arena.at(p.ptrB[p.fToT[x]]).f, nil
}

// Rank returns the 0-based position of object x in the ascending-sorted
// frequency array. Objects sharing a frequency occupy an arbitrary but
// consistent order inside their block.
func (p *Profile) Rank(x int) (int, error) {
	if x < 0 || int32(x) >= p.m {
		return 0, errObjectRange(x, int(p.m))
	}
	return int(p.fToT[x]), nil
}

// Add applies an "add" event for object x: its frequency increases by one.
// The amortised and worst-case cost is O(1).
func (p *Profile) Add(x int) error {
	if x < 0 || int32(x) >= p.m {
		return errObjectRange(x, int(p.m))
	}
	p.add(int32(x))
	return nil
}

// Remove applies a "remove" event for object x: its frequency decreases by
// one. In strict mode removing an object with frequency zero (or less)
// returns ErrNegativeFrequency and leaves the profile unchanged.
func (p *Profile) Remove(x int) error {
	if x < 0 || int32(x) >= p.m {
		return errObjectRange(x, int(p.m))
	}
	if p.opts.StrictNonNegative {
		if f := p.arena.at(p.ptrB[p.fToT[x]]).f; f <= 0 {
			return fmt.Errorf("%w: object %d has frequency %d", ErrNegativeFrequency, x, f)
		}
	}
	p.remove(int32(x))
	return nil
}

// Apply applies one log-stream tuple.
func (p *Profile) Apply(t Tuple) error {
	switch t.Action {
	case ActionAdd:
		return p.Add(t.Object)
	case ActionRemove:
		return p.Remove(t.Object)
	default:
		return errInvalidAction(t.Action)
	}
}

// ApplyAll applies tuples in order, stopping at the first error. It returns
// the number of tuples applied.
func (p *Profile) ApplyAll(tuples []Tuple) (int, error) {
	for i, t := range tuples {
		if err := p.Apply(t); err != nil {
			return i, err
		}
	}
	return len(tuples), nil
}

// add is Algorithm 1, "add" branch. The frequency of object x rises from f
// to f+1: x is swapped to the right end of its block, the block shrinks by
// one, and the vacated rank joins the right neighbour block (if it already
// holds f+1) or becomes a fresh single-rank block.
func (p *Profile) add(x int32) {
	r0 := p.fToT[x]
	bh := p.ptrB[r0]
	b := p.arena.at(bh)
	f := b.f
	last := b.r

	if r0 != last {
		y := p.tToF[last]
		p.tToF[last] = x
		p.tToF[r0] = y
		p.fToT[x] = last
		p.fToT[y] = r0
	}

	b.r--
	emptied := b.r < b.l

	if last < p.m-1 && p.arena.at(p.ptrB[last+1]).f == f+1 {
		nh := p.ptrB[last+1]
		p.arena.at(nh).l = last
		p.ptrB[last] = nh
	} else {
		// alloc may grow the slab; b must not be dereferenced afterwards.
		nh := p.arena.alloc(last, last, f+1)
		p.ptrB[last] = nh
	}
	if emptied {
		p.arena.release(bh)
	}

	p.total++
	p.adds++
	switch f {
	case 0:
		p.active++
	case -1:
		p.negative--
	}
}

// remove is Algorithm 1, "remove" branch, the mirror image of add: x is
// swapped to the left end of its block, the block shrinks by one, and the
// vacated rank joins the left neighbour block (if it already holds f-1) or
// becomes a fresh single-rank block.
func (p *Profile) remove(x int32) {
	r0 := p.fToT[x]
	bh := p.ptrB[r0]
	b := p.arena.at(bh)
	f := b.f
	first := b.l

	if r0 != first {
		y := p.tToF[first]
		p.tToF[first] = x
		p.tToF[r0] = y
		p.fToT[x] = first
		p.fToT[y] = r0
	}

	b.l++
	emptied := b.r < b.l

	if first > 0 && p.arena.at(p.ptrB[first-1]).f == f-1 {
		nh := p.ptrB[first-1]
		p.arena.at(nh).r = first
		p.ptrB[first] = nh
	} else {
		nh := p.arena.alloc(first, first, f-1)
		p.ptrB[first] = nh
	}
	if emptied {
		p.arena.release(bh)
	}

	p.total--
	p.removes++
	switch f {
	case 1:
		p.active--
	case 0:
		p.negative++
	}
}
