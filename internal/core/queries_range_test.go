package core

import (
	"testing"
	"testing/quick"
)

// buildFromFreqs returns a profile whose object x starts at freqs[x],
// failing the test on error.
func buildFromFreqs(t *testing.T, freqs []int64) *Profile {
	t.Helper()
	p, err := FromFrequencies(freqs)
	if err != nil {
		t.Fatal(err)
	}
	return p
}

func TestCountWithFrequencyAtMost(t *testing.T) {
	p := buildFromFreqs(t, []int64{0, 3, 3, -1, 7, 0})
	cases := []struct {
		f    int64
		want int
	}{
		{-2, 0},
		{-1, 1},
		{0, 3},
		{2, 3},
		{3, 5},
		{7, 6},
		{100, 6},
	}
	for _, c := range cases {
		if got := p.CountWithFrequencyAtMost(c.f); got != c.want {
			t.Fatalf("CountWithFrequencyAtMost(%d) = %d, want %d", c.f, got, c.want)
		}
	}
}

func TestCountWithFrequencyInRange(t *testing.T) {
	p := buildFromFreqs(t, []int64{0, 3, 3, -1, 7, 0})
	cases := []struct {
		lo, hi int64
		want   int
	}{
		{0, 0, 2},
		{-1, 0, 3},
		{3, 3, 2},
		{0, 7, 5},
		{-10, 10, 6},
		{4, 6, 0},
		{5, 2, 0}, // inverted range
	}
	for _, c := range cases {
		if got := p.CountWithFrequencyInRange(c.lo, c.hi); got != c.want {
			t.Fatalf("CountWithFrequencyInRange(%d, %d) = %d, want %d", c.lo, c.hi, got, c.want)
		}
	}
}

func TestRangeCountsEmptyProfile(t *testing.T) {
	p := MustNew(0)
	if p.CountWithFrequencyAtMost(10) != 0 {
		t.Fatalf("CountWithFrequencyAtMost on empty profile != 0")
	}
	if p.CountWithFrequencyInRange(-5, 5) != 0 {
		t.Fatalf("CountWithFrequencyInRange on empty profile != 0")
	}
}

func TestRangeCountsConsistencyProperty(t *testing.T) {
	// For any operation sequence, AtLeast(f) + AtMost(f-1) == m, and the
	// range count must match a brute-force count over Frequencies().
	f := func(seed uint64, rawM uint8, rawN uint16, probe int8) bool {
		m := int(rawM)%30 + 1
		n := int(rawN) % 400
		p := MustNew(m)
		rng := newTestRNG(seed)
		for i := 0; i < n; i++ {
			x := int(rng.next() % uint64(m))
			if rng.next()%10 < 6 {
				if p.Add(x) != nil {
					return false
				}
			} else if p.Remove(x) != nil {
				return false
			}
		}
		threshold := int64(probe)
		if p.CountWithFrequencyAtLeast(threshold)+p.CountWithFrequencyAtMost(threshold-1) != m {
			return false
		}
		lo, hi := int64(probe)-2, int64(probe)+2
		want := 0
		for _, fr := range p.Frequencies(nil) {
			if fr >= lo && fr <= hi {
				want++
			}
		}
		return p.CountWithFrequencyInRange(lo, hi) == want
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 150}); err != nil {
		t.Fatal(err)
	}
}

// newTestRNG is a tiny splitmix64 used only by this test file, to avoid a
// dependency from the core package's tests on the stream package.
type testRNG struct{ s uint64 }

func newTestRNG(seed uint64) *testRNG { return &testRNG{s: seed} }

func (r *testRNG) next() uint64 {
	r.s += 0x9e3779b97f4a7c15
	z := r.s
	z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9
	z = (z ^ (z >> 27)) * 0x94d049bb133111eb
	return z ^ (z >> 31)
}
