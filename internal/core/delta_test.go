package core

import (
	"errors"
	"testing"
)

// mustEqualState fails unless a and b hold identical frequencies, counters
// and invariants.
func mustEqualState(t *testing.T, a, b *Profile, label string) {
	t.Helper()
	if err := a.CheckInvariants(); err != nil {
		t.Fatalf("%s: first profile invariants: %v", label, err)
	}
	if err := b.CheckInvariants(); err != nil {
		t.Fatalf("%s: second profile invariants: %v", label, err)
	}
	fa, fb := a.Frequencies(nil), b.Frequencies(nil)
	for x := range fa {
		if fa[x] != fb[x] {
			t.Fatalf("%s: object %d frequency %d vs %d", label, x, fa[x], fb[x])
		}
	}
	aAdds, aRemoves := a.Events()
	bAdds, bRemoves := b.Events()
	if aAdds != bAdds || aRemoves != bRemoves {
		t.Fatalf("%s: counters (%d,%d) vs (%d,%d)", label, aAdds, aRemoves, bAdds, bRemoves)
	}
	if a.Total() != b.Total() || a.Active() != b.Active() || a.NegativeCount() != b.NegativeCount() {
		t.Fatalf("%s: total/active/negative (%d,%d,%d) vs (%d,%d,%d)", label,
			a.Total(), a.Active(), a.NegativeCount(), b.Total(), b.Active(), b.NegativeCount())
	}
}

// splitmix64 is a tiny deterministic RNG for the property tests.
type splitmix64 uint64

func (s *splitmix64) next() uint64 {
	*s += 0x9e3779b97f4a7c15
	z := uint64(*s)
	z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9
	z = (z ^ (z >> 27)) * 0x94d049bb133111eb
	return z ^ (z >> 31)
}

func (s *splitmix64) intn(n int) int { return int(s.next() % uint64(n)) }

func TestAddNMatchesRepeatedAdd(t *testing.T) {
	// BlockHint 1 forces slab growth during the walk-heavy phase.
	batched := MustNew(64, WithBlockHint(1))
	single := MustNew(64, WithBlockHint(1))
	rng := splitmix64(1)
	for step := 0; step < 500; step++ {
		x := rng.intn(64)
		k := int64(rng.intn(20))
		if err := batched.AddN(x, k); err != nil {
			t.Fatalf("AddN(%d, %d): %v", x, k, err)
		}
		for i := int64(0); i < k; i++ {
			if err := single.Add(x); err != nil {
				t.Fatalf("Add(%d): %v", x, err)
			}
		}
	}
	mustEqualState(t, batched, single, "AddN")
}

func TestRemoveNMatchesRepeatedRemove(t *testing.T) {
	batched := MustNew(64, WithBlockHint(1))
	single := MustNew(64, WithBlockHint(1))
	rng := splitmix64(2)
	for step := 0; step < 500; step++ {
		x := rng.intn(64)
		k := int64(rng.intn(20))
		if rng.intn(3) == 0 {
			// Interleave adds so frequencies cross zero in both directions.
			if err := batched.AddN(x, k); err != nil {
				t.Fatal(err)
			}
			for i := int64(0); i < k; i++ {
				if err := single.Add(x); err != nil {
					t.Fatal(err)
				}
			}
			continue
		}
		if err := batched.RemoveN(x, k); err != nil {
			t.Fatalf("RemoveN(%d, %d): %v", x, k, err)
		}
		for i := int64(0); i < k; i++ {
			if err := single.Remove(x); err != nil {
				t.Fatalf("Remove(%d): %v", x, err)
			}
		}
	}
	if batched.NegativeCount() == 0 {
		t.Fatal("workload never drove a frequency negative; weak test")
	}
	mustEqualState(t, batched, single, "RemoveN")
}

func TestAddNRemoveNArguments(t *testing.T) {
	p := MustNew(4)
	if err := p.AddN(-1, 1); !errors.Is(err, ErrObjectRange) {
		t.Fatalf("AddN(-1): %v", err)
	}
	if err := p.RemoveN(4, 1); !errors.Is(err, ErrObjectRange) {
		t.Fatalf("RemoveN(4): %v", err)
	}
	if err := p.AddN(0, -3); err == nil {
		t.Fatal("AddN with negative count succeeded")
	}
	if err := p.RemoveN(0, -3); err == nil {
		t.Fatal("RemoveN with negative count succeeded")
	}
	if err := p.AddN(0, 0); err != nil {
		t.Fatalf("AddN zero: %v", err)
	}
	if f, _ := p.Count(0); f != 0 {
		t.Fatalf("zero AddN moved the frequency to %d", f)
	}
}

func TestRemoveNStrictChecksNetResult(t *testing.T) {
	p := MustNew(4, WithStrictNonNegative())
	if err := p.AddN(1, 3); err != nil {
		t.Fatal(err)
	}
	if err := p.RemoveN(1, 4); !errors.Is(err, ErrNegativeFrequency) {
		t.Fatalf("over-remove: %v", err)
	}
	if f, _ := p.Count(1); f != 3 {
		t.Fatalf("failed RemoveN changed the frequency to %d", f)
	}
	if err := p.RemoveN(1, 3); err != nil {
		t.Fatalf("exact RemoveN: %v", err)
	}
	if err := p.CheckInvariants(); err != nil {
		t.Fatal(err)
	}
}

func TestApplyDeltaGrossCounters(t *testing.T) {
	p := MustNew(4)
	// 5 adds and 2 removes that net to +3.
	if err := p.ApplyDelta(Delta{Object: 2, Delta: 3, Adds: 5, Removes: 2}); err != nil {
		t.Fatal(err)
	}
	if f, _ := p.Count(2); f != 3 {
		t.Fatalf("frequency %d, want 3", f)
	}
	adds, removes := p.Events()
	if adds != 5 || removes != 2 {
		t.Fatalf("counters (%d,%d), want (5,2)", adds, removes)
	}
	// A fully cancelled delta moves nothing but still counts.
	if err := p.ApplyDelta(Delta{Object: 0, Delta: 0, Adds: 4, Removes: 4}); err != nil {
		t.Fatal(err)
	}
	if f, _ := p.Count(0); f != 0 {
		t.Fatalf("cancelled delta moved object 0 to %d", f)
	}
	adds, removes = p.Events()
	if adds != 9 || removes != 6 {
		t.Fatalf("counters (%d,%d), want (9,6)", adds, removes)
	}
	if err := p.CheckInvariants(); err != nil {
		t.Fatal(err)
	}
}

func TestApplyDeltaRejectsInconsistentGross(t *testing.T) {
	p := MustNew(4)
	if err := p.ApplyDelta(Delta{Object: 0, Delta: 2, Adds: 1, Removes: 2}); err == nil {
		t.Fatal("inconsistent gross counts accepted")
	}
	if adds, removes := p.Events(); adds != 0 || removes != 0 {
		t.Fatalf("rejected delta advanced counters to (%d,%d)", adds, removes)
	}
}

func TestApplyDeltasStopsAtStrictViolation(t *testing.T) {
	p := MustNew(8, WithStrictNonNegative())
	deltas := []Delta{
		{Object: 0, Delta: 2},
		{Object: 1, Delta: -1}, // frequency 0 - 1 < 0
		{Object: 2, Delta: 5},
	}
	n, err := p.ApplyDeltas(deltas)
	if !errors.Is(err, ErrNegativeFrequency) {
		t.Fatalf("ApplyDeltas: %v", err)
	}
	if n != 1 {
		t.Fatalf("applied %d deltas, want 1", n)
	}
	if f, _ := p.Count(0); f != 2 {
		t.Fatalf("prefix delta lost: object 0 at %d", f)
	}
	if f, _ := p.Count(2); f != 0 {
		t.Fatalf("suffix delta applied: object 2 at %d", f)
	}
	if err := p.CheckInvariants(); err != nil {
		t.Fatal(err)
	}
}

func TestCoalesceFirstTouchOrderAndReuse(t *testing.T) {
	c, err := NewCoalescer(8)
	if err != nil {
		t.Fatal(err)
	}
	batch := []Tuple{
		{Object: 3, Action: ActionAdd},
		{Object: 1, Action: ActionRemove},
		{Object: 3, Action: ActionAdd},
		{Object: 1, Action: ActionAdd},
		{Object: 5, Action: ActionAdd},
		{Object: 5, Action: ActionRemove},
	}
	deltas, err := c.Coalesce(batch)
	if err != nil {
		t.Fatal(err)
	}
	want := []Delta{
		{Object: 3, Delta: 2, Adds: 2},
		{Object: 1, Delta: 0, Adds: 1, Removes: 1},
		{Object: 5, Delta: 0, Adds: 1, Removes: 1},
	}
	if len(deltas) != len(want) {
		t.Fatalf("got %d deltas, want %d", len(deltas), len(want))
	}
	for i := range want {
		if deltas[i] != want[i] {
			t.Fatalf("delta[%d] = %+v, want %+v", i, deltas[i], want[i])
		}
	}
	// Reuse: a second batch must not inherit the first batch's state.
	deltas, err = c.Coalesce([]Tuple{{Object: 3, Action: ActionRemove}})
	if err != nil {
		t.Fatal(err)
	}
	if len(deltas) != 1 || deltas[0] != (Delta{Object: 3, Delta: -1, Removes: 1}) {
		t.Fatalf("second batch: %+v", deltas)
	}
	// Errors leave the coalescer reusable.
	if _, err := c.Coalesce([]Tuple{{Object: 99, Action: ActionAdd}}); !errors.Is(err, ErrObjectRange) {
		t.Fatalf("out-of-range object: %v", err)
	}
	if _, err := c.Coalesce([]Tuple{{Object: 0, Action: Action(7)}}); err == nil {
		t.Fatal("invalid action accepted")
	}
	deltas, err = c.Coalesce([]Tuple{{Object: 2, Action: ActionAdd}})
	if err != nil || len(deltas) != 1 || deltas[0] != (Delta{Object: 2, Delta: 1, Adds: 1}) {
		t.Fatalf("post-error batch: %+v, %v", deltas, err)
	}
}

// randomStream generates n tuples over m objects. When strictSafe is set,
// removes are only emitted for objects with a positive running count, so the
// stream is valid for a strict profile under any per-event replay.
func randomStream(rng *splitmix64, m, n int, strictSafe bool) []Tuple {
	counts := make([]int64, m)
	out := make([]Tuple, 0, n)
	for len(out) < n {
		x := rng.intn(m)
		if rng.intn(2) == 0 || (strictSafe && counts[x] <= 0) {
			counts[x]++
			out = append(out, Tuple{Object: x, Action: ActionAdd})
		} else {
			counts[x]--
			out = append(out, Tuple{Object: x, Action: ActionRemove})
		}
	}
	return out
}

// TestCoalescedDeltasMatchPerEvent is the central property of the batch
// path: ApplyDeltas(Coalesce(batch)) is state-identical to per-event
// ApplyAll(batch), across random streams, in both strict and default mode,
// with a tiny block hint so slab growth and block merges happen constantly.
func TestCoalescedDeltasMatchPerEvent(t *testing.T) {
	for _, tc := range []struct {
		name   string
		strict bool
		m      int
	}{
		{"default", false, 16},
		{"default-wide", false, 300},
		{"strict", true, 16},
		{"strict-wide", true, 300},
	} {
		t.Run(tc.name, func(t *testing.T) {
			var opts []Option
			if tc.strict {
				opts = append(opts, WithStrictNonNegative())
			}
			opts = append(opts, WithBlockHint(1))
			perEvent := MustNew(tc.m, opts...)
			batched := MustNew(tc.m, opts...)
			c, err := NewCoalescer(tc.m)
			if err != nil {
				t.Fatal(err)
			}
			rng := splitmix64(uint64(tc.m) + 17)
			for batch := 0; batch < 40; batch++ {
				size := 1 + rng.intn(400)
				tuples := randomStream(&rng, tc.m, size, tc.strict)
				if _, err := perEvent.ApplyAll(tuples); err != nil {
					t.Fatalf("batch %d: per-event: %v", batch, err)
				}
				deltas, err := c.Coalesce(tuples)
				if err != nil {
					t.Fatalf("batch %d: coalesce: %v", batch, err)
				}
				if _, err := batched.ApplyDeltas(deltas); err != nil {
					t.Fatalf("batch %d: deltas: %v", batch, err)
				}
				mustEqualState(t, batched, perEvent, "batch")
			}
		})
	}
}

// FuzzCoalescedDeltasMatchPerEvent decodes an arbitrary byte string into a
// tuple stream and checks the same equivalence the property test asserts.
func FuzzCoalescedDeltasMatchPerEvent(f *testing.F) {
	f.Add([]byte{0x01, 0x82, 0x01, 0x82})
	f.Add([]byte{0xFF, 0x00, 0x7F, 0x80, 0x03, 0x83})
	f.Fuzz(func(t *testing.T, data []byte) {
		const m = 32
		tuples := make([]Tuple, 0, len(data))
		for _, b := range data {
			action := ActionAdd
			if b&0x80 != 0 {
				action = ActionRemove
			}
			tuples = append(tuples, Tuple{Object: int(b&0x7f) % m, Action: action})
		}
		perEvent := MustNew(m, WithBlockHint(1))
		batched := MustNew(m, WithBlockHint(1))
		if _, err := perEvent.ApplyAll(tuples); err != nil {
			t.Fatalf("per-event: %v", err)
		}
		c, err := NewCoalescer(m)
		if err != nil {
			t.Fatal(err)
		}
		deltas, err := c.Coalesce(tuples)
		if err != nil {
			t.Fatalf("coalesce: %v", err)
		}
		if _, err := batched.ApplyDeltas(deltas); err != nil {
			t.Fatalf("deltas: %v", err)
		}
		mustEqualState(t, batched, perEvent, "fuzz")
	})
}

// TestAddNLandingCases pins the three landing shapes of the block walk:
// joining an existing block, opening a singleton between blocks, and walking
// to the very top of the rank array.
func TestAddNLandingCases(t *testing.T) {
	p := MustNew(6, WithBlockHint(1))
	// Frequencies: {0:0, 1:2, 2:2, 3:5, 4:9, 5:9}
	for x, f := range map[int]int64{1: 2, 2: 2, 3: 5, 4: 9, 5: 9} {
		if err := p.AddN(x, f); err != nil {
			t.Fatal(err)
		}
	}
	// Join: 0 -> 2 joins the {1,2} block.
	if err := p.AddN(0, 2); err != nil {
		t.Fatal(err)
	}
	// Between: 1: 2 -> 7 lands strictly between 5 and 9.
	if err := p.AddN(1, 5); err != nil {
		t.Fatal(err)
	}
	// Top: 2: 2 -> 12 walks past everything.
	if err := p.AddN(2, 10); err != nil {
		t.Fatal(err)
	}
	if err := p.CheckInvariants(); err != nil {
		t.Fatal(err)
	}
	for x, want := range map[int]int64{0: 2, 1: 7, 2: 12, 3: 5, 4: 9, 5: 9} {
		if f, _ := p.Count(x); f != want {
			t.Fatalf("object %d at %d, want %d", x, f, want)
		}
	}
	if e, _, err := p.Mode(); err != nil || e.Object != 2 || e.Frequency != 12 {
		t.Fatalf("mode %+v, %v", e, err)
	}
	// And back down: 2: 12 -> 0 walks to the bottom.
	if err := p.RemoveN(2, 12); err != nil {
		t.Fatal(err)
	}
	if err := p.CheckInvariants(); err != nil {
		t.Fatal(err)
	}
	if e, _, err := p.Min(); err != nil || e.Frequency != 0 {
		t.Fatalf("min %+v, %v", e, err)
	}
}
