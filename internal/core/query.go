package core

import (
	"fmt"
	"math"
)

// Query selects any subset of the profile's statistics to be answered
// together, from one consistent cut of the frequency multiset. The zero
// value selects nothing and yields an empty QueryResult.
//
// A zero or nil field means "not requested": TopK/BottomK request the K most
// or least frequent entries when positive, KthLargest lists 1-based ranks,
// Quantiles lists quantile arguments in [0, 1] (finite values outside are
// clamped, exactly like the Quantile getter), and Count lists object ids
// whose frequencies should be read. The JSON form is the composite-query
// wire format served by POST /v1/query.
type Query struct {
	Count        []int     `json:"count,omitempty"`
	Mode         bool      `json:"mode,omitempty"`
	Min          bool      `json:"min,omitempty"`
	TopK         int       `json:"top_k,omitempty"`
	BottomK      int       `json:"bottom_k,omitempty"`
	KthLargest   []int     `json:"kth_largest,omitempty"`
	Median       bool      `json:"median,omitempty"`
	Quantiles    []float64 `json:"quantiles,omitempty"`
	Majority     bool      `json:"majority,omitempty"`
	Distribution bool      `json:"distribution,omitempty"`
	Summary      bool      `json:"summary,omitempty"`
}

// Extreme is a Mode or Min answer inside a QueryResult: the representative
// entry plus how many objects tie with it.
type Extreme struct {
	Entry
	Ties int `json:"ties"`
}

// QuantileEntry is one Quantiles answer: the requested quantile argument and
// the entry holding it.
type QuantileEntry struct {
	Q float64 `json:"q"`
	Entry
}

// MajorityEntry is the Majority answer: Majority reports whether a strict
// majority holder exists, and Entry identifies it when it does.
type MajorityEntry struct {
	Entry
	Majority bool `json:"majority"`
}

// QueryResult carries the answers to exactly the statistics the Query
// selected; fields of unrequested statistics stay nil. All answers are taken
// from one consistent cut: each implementation documents how it pins the cut
// (one pass, one lock acquisition, one merged distribution, one quiesce).
type QueryResult struct {
	Counts       []Entry         `json:"counts,omitempty"`
	Mode         *Extreme        `json:"mode,omitempty"`
	Min          *Extreme        `json:"min,omitempty"`
	TopK         []Entry         `json:"top_k,omitempty"`
	BottomK      []Entry         `json:"bottom_k,omitempty"`
	KthLargest   []Entry         `json:"kth_largest,omitempty"`
	Median       *Entry          `json:"median,omitempty"`
	Quantiles    []QuantileEntry `json:"quantiles,omitempty"`
	Majority     *MajorityEntry  `json:"majority,omitempty"`
	Distribution []FreqCount     `json:"distribution,omitempty"`
	Summary      *Summary        `json:"summary,omitempty"`
}

// RequiresNonEmpty reports whether the query selects a statistic that has no
// answer on a profile with zero object slots.
func (q Query) RequiresNonEmpty() bool {
	return q.Mode || q.Min || q.Median || q.Majority ||
		len(q.Quantiles) > 0 || len(q.KthLargest) > 0
}

// NeedsDistribution reports whether answering the query involves the merged
// frequency distribution on implementations that must build one (sharded
// profiles); they build it once and share it across every rank answer.
func (q Query) NeedsDistribution() bool {
	return q.Median || q.Distribution || q.Summary ||
		len(q.Quantiles) > 0 || len(q.KthLargest) > 0
}

// Validate checks every query argument against capacity m before anything is
// evaluated, so a composite query fails whole or not at all. Violations wrap
// both ErrInvalidQuery and the same taxonomy class the corresponding getter
// returns (ErrBadRank, ErrObjectRange — both ErrOutOfRange), and an
// unanswerable statistic on an empty profile fails with ErrEmptyProfile
// exactly like the getter would.
func (q Query) Validate(m int) error {
	if q.TopK < 0 {
		return fmt.Errorf("%w: top_k: %w", ErrInvalidQuery, errBadRank(q.TopK, m))
	}
	if q.BottomK < 0 {
		return fmt.Errorf("%w: bottom_k: %w", ErrInvalidQuery, errBadRank(q.BottomK, m))
	}
	for _, k := range q.KthLargest {
		if k < 1 || k > m {
			return fmt.Errorf("%w: kth_largest: %w", ErrInvalidQuery, errBadRank(k, m))
		}
	}
	for _, qq := range q.Quantiles {
		if math.IsNaN(qq) {
			return fmt.Errorf("%w: %w", ErrInvalidQuery, CheckQuantile(qq))
		}
	}
	for _, x := range q.Count {
		if x < 0 || x >= m {
			return fmt.Errorf("%w: count: %w", ErrInvalidQuery, errObjectRange(x, m))
		}
	}
	if m == 0 && q.RequiresNonEmpty() {
		return ErrEmptyProfile
	}
	return nil
}

// Queryable is the getter surface EvalQuery needs — the Reader half of the
// root package's Profiler contract. It is satisfied by *Profile and by every
// profile variant.
type Queryable interface {
	Count(x int) (int64, error)
	Mode() (Entry, int, error)
	Min() (Entry, int, error)
	TopK(k int) []Entry
	BottomK(k int) []Entry
	KthLargest(k int) (Entry, error)
	Median() (Entry, error)
	Quantile(q float64) (Entry, error)
	Majority() (Entry, bool, error)
	Distribution() []FreqCount
	Summarize() Summary
	Cap() int
	Total() int64
}

// resultBacking is the single allocation behind every pointer field of a
// QueryResult — and, for the common dashboard case of a handful of
// quantiles, the Quantiles slice too — so a composite query costs one heap
// object for all its scalar answers instead of one each.
type resultBacking struct {
	mode, min Extreme
	median    Entry
	majority  MajorityEntry
	summary   Summary
	quantiles [4]QuantileEntry
}

// EvalQuery validates q and answers it getter by getter against r. It is the
// shared evaluation every implementation funnels through; pinning the cut —
// holding a lock, quiescing writers, snapshotting first — is the caller's
// job. On a plain *Profile the whole composite costs what the individual
// getters cost: O(1) per scalar statistic, O(k) for top/bottom-k, O(#blocks)
// for the distribution.
func EvalQuery(r Queryable, q Query) (QueryResult, error) {
	var res QueryResult
	if err := q.Validate(r.Cap()); err != nil {
		return res, err
	}
	bk := &resultBacking{}
	if len(q.Count) > 0 {
		res.Counts = make([]Entry, len(q.Count))
		for i, x := range q.Count {
			f, err := r.Count(x)
			if err != nil {
				return QueryResult{}, err
			}
			res.Counts[i] = Entry{Object: x, Frequency: f}
		}
	}
	if q.Mode {
		e, ties, err := r.Mode()
		if err != nil {
			return QueryResult{}, err
		}
		bk.mode = Extreme{Entry: e, Ties: ties}
		res.Mode = &bk.mode
	}
	if q.Min {
		e, ties, err := r.Min()
		if err != nil {
			return QueryResult{}, err
		}
		bk.min = Extreme{Entry: e, Ties: ties}
		res.Min = &bk.min
	}
	if q.TopK > 0 {
		res.TopK = r.TopK(q.TopK)
	}
	if q.BottomK > 0 {
		res.BottomK = r.BottomK(q.BottomK)
	}
	if len(q.KthLargest) > 0 {
		res.KthLargest = make([]Entry, len(q.KthLargest))
		for i, k := range q.KthLargest {
			e, err := r.KthLargest(k)
			if err != nil {
				return QueryResult{}, err
			}
			res.KthLargest[i] = e
		}
	}
	if q.Median {
		e, err := r.Median()
		if err != nil {
			return QueryResult{}, err
		}
		bk.median = e
		res.Median = &bk.median
	}
	if n := len(q.Quantiles); n > 0 {
		if n <= len(bk.quantiles) {
			res.Quantiles = bk.quantiles[:n:n]
		} else {
			res.Quantiles = make([]QuantileEntry, n)
		}
		for i, qq := range q.Quantiles {
			e, err := r.Quantile(qq)
			if err != nil {
				return QueryResult{}, err
			}
			res.Quantiles[i] = QuantileEntry{Q: qq, Entry: e}
		}
	}
	if q.Majority {
		e, ok, err := r.Majority()
		if err != nil {
			return QueryResult{}, err
		}
		bk.majority = MajorityEntry{Entry: e, Majority: ok}
		res.Majority = &bk.majority
	}
	if q.Distribution {
		res.Distribution = r.Distribution()
	}
	if q.Summary {
		bk.summary = r.Summarize()
		res.Summary = &bk.summary
	}
	return res, nil
}

// Query answers a composite query from the profile in one pass. A *Profile
// is single-goroutine, so the pass is trivially one consistent cut; the
// concurrency variants wrap this same evaluation in their own cut-pinning
// (read lock, merged distribution, quiesce).
func (p *Profile) Query(q Query) (QueryResult, error) {
	return EvalQuery(p, q)
}
