package core

import (
	"math/rand"
	"sort"
	"testing"
	"testing/quick"
)

// refProfile is a deliberately naive reference implementation: a plain
// frequency array whose statistics are recomputed by sorting on demand.
// Property tests drive it and the real Profile with the same operations and
// compare every observable.
type refProfile struct {
	freqs []int64
}

func newRef(m int) *refProfile { return &refProfile{freqs: make([]int64, m)} }

func (r *refProfile) apply(x int, add bool) {
	if add {
		r.freqs[x]++
	} else {
		r.freqs[x]--
	}
}

func (r *refProfile) sorted() []int64 {
	s := append([]int64(nil), r.freqs...)
	sort.Slice(s, func(i, j int) bool { return s[i] < s[j] })
	return s
}

func (r *refProfile) mode() (int64, int) {
	s := r.sorted()
	maxF := s[len(s)-1]
	n := 0
	for _, f := range s {
		if f == maxF {
			n++
		}
	}
	return maxF, n
}

func (r *refProfile) min() (int64, int) {
	s := r.sorted()
	minF := s[0]
	n := 0
	for _, f := range s {
		if f == minF {
			n++
		}
	}
	return minF, n
}

func (r *refProfile) total() int64 {
	var t int64
	for _, f := range r.freqs {
		t += f
	}
	return t
}

func (r *refProfile) active() int {
	n := 0
	for _, f := range r.freqs {
		if f > 0 {
			n++
		}
	}
	return n
}

func (r *refProfile) distribution() []FreqCount {
	hist := map[int64]int{}
	for _, f := range r.freqs {
		hist[f]++
	}
	keys := make([]int64, 0, len(hist))
	for k := range hist {
		keys = append(keys, k)
	}
	sort.Slice(keys, func(i, j int) bool { return keys[i] < keys[j] })
	out := make([]FreqCount, 0, len(keys))
	for _, k := range keys {
		out = append(out, FreqCount{Freq: k, Count: hist[k]})
	}
	return out
}

// op is a randomly generated profile operation for property tests.
type op struct {
	Object uint16
	Add    bool
}

// compareAgainstReference drives both implementations with the same
// operations and cross-checks every query after every step.
func compareAgainstReference(t *testing.T, m int, ops []op, checkEvery int) {
	t.Helper()
	p := mustProfile(t, m)
	ref := newRef(m)
	for i, o := range ops {
		x := int(o.Object) % m
		if o.Add {
			if err := p.Add(x); err != nil {
				t.Fatalf("op %d: %v", i, err)
			}
		} else {
			if err := p.Remove(x); err != nil {
				t.Fatalf("op %d: %v", i, err)
			}
		}
		ref.apply(x, o.Add)

		if checkEvery > 0 && i%checkEvery != 0 && i != len(ops)-1 {
			continue
		}

		if err := p.CheckInvariants(); err != nil {
			t.Fatalf("op %d: invariants: %v", i, err)
		}
		wantMode, wantModeN := ref.mode()
		gotMode, gotModeN, err := p.Mode()
		if err != nil {
			t.Fatalf("op %d: Mode: %v", i, err)
		}
		if gotMode.Frequency != wantMode || gotModeN != wantModeN {
			t.Fatalf("op %d: Mode = (%d, %d), want (%d, %d)",
				i, gotMode.Frequency, gotModeN, wantMode, wantModeN)
		}
		wantMin, wantMinN := ref.min()
		gotMin, gotMinN, err := p.Min()
		if err != nil {
			t.Fatalf("op %d: Min: %v", i, err)
		}
		if gotMin.Frequency != wantMin || gotMinN != wantMinN {
			t.Fatalf("op %d: Min = (%d, %d), want (%d, %d)",
				i, gotMin.Frequency, gotMinN, wantMin, wantMinN)
		}
		if p.Total() != ref.total() {
			t.Fatalf("op %d: Total = %d, want %d", i, p.Total(), ref.total())
		}
		if p.Active() != ref.active() {
			t.Fatalf("op %d: Active = %d, want %d", i, p.Active(), ref.active())
		}
		// Spot-check per-object counts and the sorted array via ranks.
		sorted := ref.sorted()
		for k := 1; k <= m; k++ {
			e, err := p.KthSmallest(k)
			if err != nil {
				t.Fatalf("op %d: KthSmallest(%d): %v", i, k, err)
			}
			if e.Frequency != sorted[k-1] {
				t.Fatalf("op %d: KthSmallest(%d) = %d, want %d", i, k, e.Frequency, sorted[k-1])
			}
		}
		for x := 0; x < m; x++ {
			c, err := p.Count(x)
			if err != nil {
				t.Fatalf("op %d: Count(%d): %v", i, x, err)
			}
			if c != ref.freqs[x] {
				t.Fatalf("op %d: Count(%d) = %d, want %d", i, x, c, ref.freqs[x])
			}
		}
		wantDist := ref.distribution()
		gotDist := p.Distribution()
		if len(wantDist) != len(gotDist) {
			t.Fatalf("op %d: distribution length %d, want %d", i, len(gotDist), len(wantDist))
		}
		for j := range wantDist {
			if wantDist[j] != gotDist[j] {
				t.Fatalf("op %d: distribution[%d] = %+v, want %+v", i, j, gotDist[j], wantDist[j])
			}
		}
	}
}

func TestQuickMatchesReferenceSmall(t *testing.T) {
	f := func(ops []op) bool {
		if len(ops) > 400 {
			ops = ops[:400]
		}
		compareAgainstReference(t, 7, ops, 1)
		return true
	}
	cfg := &quick.Config{MaxCount: 30}
	if err := quick.Check(f, cfg); err != nil {
		t.Fatal(err)
	}
}

func TestQuickMatchesReferenceMedium(t *testing.T) {
	f := func(ops []op, mSeed uint8) bool {
		m := int(mSeed)%50 + 2
		if len(ops) > 600 {
			ops = ops[:600]
		}
		compareAgainstReference(t, m, ops, 25)
		return true
	}
	cfg := &quick.Config{MaxCount: 20}
	if err := quick.Check(f, cfg); err != nil {
		t.Fatal(err)
	}
}

func TestQuickFromFrequenciesMatchesIncremental(t *testing.T) {
	// Building a profile from a frequency vector must be indistinguishable
	// from applying the equivalent add/remove events one at a time.
	f := func(raw []int8) bool {
		if len(raw) == 0 || len(raw) > 64 {
			return true
		}
		freqs := make([]int64, len(raw))
		for i, v := range raw {
			freqs[i] = int64(v % 16)
		}
		direct, err := FromFrequencies(freqs)
		if err != nil {
			t.Fatalf("FromFrequencies: %v", err)
		}
		incremental := mustProfile(t, len(freqs))
		for x, fr := range freqs {
			for ; fr > 0; fr-- {
				_ = incremental.Add(x)
			}
			for ; fr < 0; fr++ {
				_ = incremental.Remove(x)
			}
		}
		if err := direct.CheckInvariants(); err != nil {
			t.Fatalf("direct invariants: %v", err)
		}
		if err := incremental.CheckInvariants(); err != nil {
			t.Fatalf("incremental invariants: %v", err)
		}
		dd, di := direct.Distribution(), incremental.Distribution()
		if len(dd) != len(di) {
			return false
		}
		for i := range dd {
			if dd[i] != di[i] {
				return false
			}
		}
		for x := range freqs {
			cd, _ := direct.Count(x)
			ci, _ := incremental.Count(x)
			if cd != ci {
				return false
			}
		}
		return direct.Total() == incremental.Total() && direct.Active() == incremental.Active()
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 50}); err != nil {
		t.Fatal(err)
	}
}

func TestLongRandomRunInvariants(t *testing.T) {
	const m = 128
	p := mustProfile(t, m)
	rng := rand.New(rand.NewSource(99))
	for i := 0; i < 100000; i++ {
		x := rng.Intn(m)
		if rng.Float64() < 0.7 {
			_ = p.Add(x)
		} else {
			_ = p.Remove(x)
		}
		if i%10000 == 0 {
			if err := p.CheckInvariants(); err != nil {
				t.Fatalf("step %d: %v", i, err)
			}
		}
	}
	if err := p.CheckInvariants(); err != nil {
		t.Fatal(err)
	}
}

func TestSkewedWorkloadInvariants(t *testing.T) {
	// Heavily skewed stream: a handful of hot objects, long tails of cold
	// ones, plus bursts of removals that drive frequencies negative.
	const m = 64
	p := mustProfile(t, m)
	rng := rand.New(rand.NewSource(3))
	zipf := rand.NewZipf(rng, 1.3, 1, m-1)
	for i := 0; i < 50000; i++ {
		x := int(zipf.Uint64())
		switch {
		case rng.Float64() < 0.6:
			_ = p.Add(x)
		case rng.Float64() < 0.9:
			_ = p.Remove(x)
		default:
			// burst: remove a cold object repeatedly
			cold := rng.Intn(m)
			for j := 0; j < 5; j++ {
				_ = p.Remove(cold)
			}
		}
	}
	if err := p.CheckInvariants(); err != nil {
		t.Fatal(err)
	}
	// Mode must match a full recomputation.
	freqs := p.Frequencies(nil)
	want := freqs[0]
	for _, f := range freqs {
		if f > want {
			want = f
		}
	}
	got, err := p.Max()
	if err != nil {
		t.Fatal(err)
	}
	if got != want {
		t.Fatalf("Max = %d, recomputed %d", got, want)
	}
}
