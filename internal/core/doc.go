// Package core implements S-Profile, the O(1)-per-update data structure for
// profiling dynamic arrays with finite values described in
//
//	Dingcheng Yang, Wenjian Yu, Junhui Deng, Shenghua Liu.
//	"Optimal Algorithm for Profiling Dynamic Arrays with Finite Values."
//	EDBT 2019 (arXiv:1812.05306).
//
// A Profile tracks the frequencies of up to m distinct objects under a log
// stream of (object, add|remove) events, each changing one frequency by
// exactly ±1. It maintains a conceptual ascending-sorted frequency array T
// through three permutation/pointer arrays and a set of "blocks" (maximal
// runs of equal frequency in T). Every update touches a constant number of
// array cells and at most two blocks, so the worst-case cost per event is
// O(1) and the space is O(m).
//
// With the profile maintained, order-statistic queries over the frequency
// multiset — mode, minimum, K-th largest, median, arbitrary quantiles,
// top-K, majority and the full frequency distribution — are answered without
// scanning the frequencies.
//
// The package is deliberately allocation-free on the hot path: blocks live in
// a slab with an intrusive free list, and updates never allocate once the
// slab has grown to its working size.
package core
