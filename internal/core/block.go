package core

// A block describes a maximal run of equal values in the conceptual sorted
// frequency array T: every rank in [l, r] holds frequency f, the rank l-1 (if
// any) holds a strictly smaller frequency and the rank r+1 (if any) holds a
// strictly larger one. Ranks are 0-based.
type block struct {
	l, r int32
	f    int64
}

// size returns the number of ranks covered by the block.
func (b block) size() int { return int(b.r-b.l) + 1 }

// noBlock marks an unused ptrB slot or an exhausted free list.
const noBlock int32 = -1

// blockArena is a slab allocator for blocks. Blocks are referenced by dense
// int32 handles so that the per-rank pointer array can be 4 bytes per slot.
// Freed blocks are chained through their l field and reused before the slab
// grows, which keeps steady-state updates allocation-free.
type blockArena struct {
	slab []block
	free int32 // head of the free list, noBlock if empty
	live int   // number of live (allocated, not freed) blocks
}

// newBlockArena returns an arena with room for hint blocks before the first
// slab growth. A hint of zero is valid.
func newBlockArena(hint int) *blockArena {
	if hint < 0 {
		hint = 0
	}
	return &blockArena{
		slab: make([]block, 0, hint),
		free: noBlock,
	}
}

// alloc returns a handle to a block initialised to (l, r, f).
func (a *blockArena) alloc(l, r int32, f int64) int32 {
	a.live++
	if a.free != noBlock {
		h := a.free
		a.free = a.slab[h].l
		a.slab[h] = block{l: l, r: r, f: f}
		return h
	}
	a.slab = append(a.slab, block{l: l, r: r, f: f})
	return int32(len(a.slab) - 1)
}

// release returns the block h to the free list. The block contents become
// undefined; callers must drop every reference to h first.
func (a *blockArena) release(h int32) {
	a.slab[h].l = a.free
	a.free = h
	a.live--
}

// at returns a pointer to the block with handle h. The pointer is valid only
// until the next alloc call (the slab may be reallocated when it grows).
func (a *blockArena) at(h int32) *block { return &a.slab[h] }

// liveBlocks returns the number of currently allocated blocks.
func (a *blockArena) liveBlocks() int { return a.live }

// capBlocks returns the total number of slots the slab can hold before the
// next growth.
func (a *blockArena) capBlocks() int { return cap(a.slab) }

// reset discards every block, live or free, without shrinking the slab.
func (a *blockArena) reset() {
	a.slab = a.slab[:0]
	a.free = noBlock
	a.live = 0
}
