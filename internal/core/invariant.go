package core

import "fmt"

// CheckInvariants validates the internal consistency of the profile from
// first principles. It is O(m) and intended for tests and debugging; the
// production hot path never calls it.
//
// The checked properties are exactly the block-set definition from the paper
// plus the bookkeeping counters:
//
//  1. fToT and tToF are inverse permutations of [0, m).
//  2. Every rank's block covers that rank (PtrB[i].l <= i <= PtrB[i].r).
//  3. Blocks partition [0, m) into contiguous, non-overlapping runs.
//  4. Block frequencies are strictly increasing left to right (so the
//     conceptual array T is sorted and blocks are maximal).
//  5. The number of live arena blocks equals the number of distinct blocks
//     reachable from ptrB.
//  6. total, active and negative match the frequencies implied by the blocks.
func (p *Profile) CheckInvariants() error {
	m := int(p.m)
	if len(p.fToT) != m || len(p.tToF) != m || len(p.ptrB) != m {
		return fmt.Errorf("core: array lengths %d/%d/%d do not match m=%d",
			len(p.fToT), len(p.tToF), len(p.ptrB), m)
	}

	// 1. Inverse permutations.
	for x := 0; x < m; x++ {
		r := p.fToT[x]
		if r < 0 || int(r) >= m {
			return fmt.Errorf("core: fToT[%d]=%d out of range", x, r)
		}
		if int(p.tToF[r]) != x {
			return fmt.Errorf("core: tToF[fToT[%d]]=%d, want %d", x, p.tToF[r], x)
		}
	}
	for r := 0; r < m; r++ {
		x := p.tToF[r]
		if x < 0 || int(x) >= m {
			return fmt.Errorf("core: tToF[%d]=%d out of range", r, x)
		}
		if int(p.fToT[x]) != r {
			return fmt.Errorf("core: fToT[tToF[%d]]=%d, want %d", r, p.fToT[x], r)
		}
	}

	// 2-4. Walk the block chain.
	seen := make(map[int32]bool)
	var (
		total    int64
		active   int
		negative int
		prevF    int64
		havePrev bool
	)
	for r := int32(0); int(r) < m; {
		h := p.ptrB[r]
		b := p.arena.at(h)
		if b.l != r {
			return fmt.Errorf("core: block at rank %d starts at %d", r, b.l)
		}
		if b.r < b.l || int(b.r) >= m {
			return fmt.Errorf("core: block [%d,%d] malformed (m=%d)", b.l, b.r, m)
		}
		if havePrev && b.f <= prevF {
			return fmt.Errorf("core: block frequency %d not greater than previous %d", b.f, prevF)
		}
		for i := b.l; i <= b.r; i++ {
			if p.ptrB[i] != h {
				return fmt.Errorf("core: ptrB[%d]=%d, want %d (block [%d,%d])",
					i, p.ptrB[i], h, b.l, b.r)
			}
		}
		if seen[h] {
			return fmt.Errorf("core: block handle %d reached twice", h)
		}
		seen[h] = true
		total += b.f * int64(b.size())
		if b.f > 0 {
			active += b.size()
		}
		if b.f < 0 {
			negative += b.size()
		}
		prevF, havePrev = b.f, true
		r = b.r + 1
	}

	// 5. Live block accounting.
	if m > 0 && len(seen) != p.arena.liveBlocks() {
		return fmt.Errorf("core: %d blocks reachable, arena reports %d live",
			len(seen), p.arena.liveBlocks())
	}

	// 6. Counters.
	if total != p.total {
		return fmt.Errorf("core: total=%d, blocks imply %d", p.total, total)
	}
	if active != int(p.active) {
		return fmt.Errorf("core: active=%d, blocks imply %d", p.active, active)
	}
	if negative != int(p.negative) {
		return fmt.Errorf("core: negative=%d, blocks imply %d", p.negative, negative)
	}
	return nil
}
