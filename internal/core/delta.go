package core

import "fmt"

// This file implements the delta-batched update path. The paper's structure
// pays O(1) per ±1 event; real traffic arrives in batches that are heavily
// skewed, so the same hot object often moves many times inside one batch.
// Coalescing a batch into net per-object deltas and applying each delta with
// one block-boundary walk turns k repeated ±1 steps for a hot object into a
// single O(blocks crossed) move — a hot object going +500 in one batch
// crosses a handful of distinct frequency values, not 500 ranks.

// Delta is the net effect of a coalesced run of events on one object.
//
// Adds and Removes record the gross event counts the delta coalesces, so a
// profile applying the delta keeps its adds/removes counters identical to the
// per-event path (Adds - Removes must equal Delta). When both are zero and
// Delta is nonzero, the minimal gross counts are assumed (Delta adds or
// -Delta removes). A Delta of zero with nonzero gross counts is a valid
// record of events that cancelled out: it moves no frequency but still
// advances the counters.
type Delta struct {
	Object        int
	Delta         int64
	Adds, Removes uint64
}

// Gross returns the delta's gross event counts, synthesizing the minimal
// counts implied by the net delta when both are zero. It is the single
// normalization rule shared by everything that applies or journals a delta,
// so the write-ahead-log record of a delta always matches its in-memory
// effect.
func (d Delta) Gross() (adds, removes uint64) {
	adds, removes = d.Adds, d.Removes
	if adds == 0 && removes == 0 {
		switch {
		case d.Delta > 0:
			adds = uint64(d.Delta)
		case d.Delta < 0:
			removes = uint64(-d.Delta)
		}
	}
	return adds, removes
}

// AddN raises the frequency of object x by k in one step, exactly as k Add
// calls would but at cost O(blocks crossed) instead of O(k). k must be
// non-negative; k = 0 is a no-op.
func (p *Profile) AddN(x int, k int64) error {
	if x < 0 || int32(x) >= p.m {
		return errObjectRange(x, int(p.m))
	}
	if k < 0 {
		return fmt.Errorf("%w: negative add count %d for object %d", ErrOutOfRange, k, x)
	}
	if k == 0 {
		return nil
	}
	p.addN(int32(x), k)
	return nil
}

// RemoveN lowers the frequency of object x by k in one step, exactly as k
// Remove calls would but at cost O(blocks crossed) instead of O(k). In strict
// mode the check applies to the net result: RemoveN fails with
// ErrNegativeFrequency if the final frequency would be negative, and leaves
// the profile unchanged. k must be non-negative; k = 0 is a no-op.
func (p *Profile) RemoveN(x int, k int64) error {
	if x < 0 || int32(x) >= p.m {
		return errObjectRange(x, int(p.m))
	}
	if k < 0 {
		return fmt.Errorf("%w: negative remove count %d for object %d", ErrOutOfRange, k, x)
	}
	if k == 0 {
		return nil
	}
	if p.opts.StrictNonNegative {
		if f := p.arena.at(p.ptrB[p.fToT[x]]).f; f-k < 0 {
			return fmt.Errorf("%w: object %d has frequency %d, removing %d", ErrNegativeFrequency, x, f, k)
		}
	}
	p.removeN(int32(x), k)
	return nil
}

// ApplyDelta applies one coalesced delta. Strict mode checks the net result:
// a delta whose final frequency is non-negative succeeds even if some
// per-event interleaving of its gross counts would have failed mid-way
// (e.g. a remove arriving before the add that covers it).
func (p *Profile) ApplyDelta(d Delta) error {
	x := d.Object
	if x < 0 || int32(x) >= p.m {
		return errObjectRange(x, int(p.m))
	}
	adds, removes := d.Gross()
	if adds == 0 && removes == 0 {
		return nil
	}
	if int64(adds)-int64(removes) != d.Delta {
		return fmt.Errorf("core: delta for object %d nets %+d but records %d adds and %d removes",
			x, d.Delta, adds, removes)
	}
	switch {
	case d.Delta > 0:
		p.addN(int32(x), d.Delta)
	case d.Delta < 0:
		if p.opts.StrictNonNegative {
			if f := p.arena.at(p.ptrB[p.fToT[x]]).f; f+d.Delta < 0 {
				return fmt.Errorf("%w: object %d has frequency %d, delta %+d", ErrNegativeFrequency, x, f, d.Delta)
			}
		}
		p.removeN(int32(x), -d.Delta)
	}
	// The structural move counted only the net events; credit the cancelled
	// add/remove pairs so the counters match the per-event path.
	var cancelled uint64
	if d.Delta > 0 {
		cancelled = adds - uint64(d.Delta)
	} else {
		cancelled = adds
	}
	p.adds += cancelled
	p.removes += cancelled
	return nil
}

// ApplyDeltas applies deltas in order, stopping at the first error; it
// returns the number of deltas applied. Combined with a Coalescer it is the
// batch fast path: state-identical to applying the original events one by
// one (including the adds/removes counters), at a cost of one block-boundary
// walk per distinct object instead of one block operation per event.
func (p *Profile) ApplyDeltas(deltas []Delta) (int, error) {
	for i := range deltas {
		if err := p.ApplyDelta(deltas[i]); err != nil {
			countApplied(i, err)
			return i, err
		}
	}
	countApplied(len(deltas), nil)
	return len(deltas), nil
}

// addN is the generalised Algorithm 1 "add" branch: the frequency of object
// x rises from f to f+k in one pass. x is detached from its block and then
// walked right across whole blocks whose frequency is below the target —
// each crossing is O(1), swapping x with the crossed block's rightmost
// member and shifting the block one rank left — before landing by joining an
// existing f+k block or opening a fresh singleton.
func (p *Profile) addN(x int32, k int64) {
	r0 := p.fToT[x]
	bh := p.ptrB[r0]
	b := p.arena.at(bh)
	f := b.f
	target := f + k
	last := b.r

	if r0 != last {
		y := p.tToF[last]
		p.tToF[last] = x
		p.tToF[r0] = y
		p.fToT[x] = last
		p.fToT[y] = r0
	}
	b.r--
	if b.r < b.l {
		p.arena.release(bh)
	}

	pos := last
	for pos < p.m-1 {
		nh := p.ptrB[pos+1]
		nb := p.arena.at(nh)
		if nb.f >= target {
			break
		}
		// Move x past nb: swap with its rightmost member and shift the block
		// one rank left. The block keeps its size, so it can never empty.
		r := nb.r
		y := p.tToF[r]
		p.tToF[pos] = y
		p.tToF[r] = x
		p.fToT[y] = pos
		p.fToT[x] = r
		nb.l = pos
		nb.r = r - 1
		p.ptrB[pos] = nh
		pos = r
	}

	if pos < p.m-1 && p.arena.at(p.ptrB[pos+1]).f == target {
		nh := p.ptrB[pos+1]
		p.arena.at(nh).l = pos
		p.ptrB[pos] = nh
	} else {
		// alloc may grow the slab; no block pointer is dereferenced after it.
		nh := p.arena.alloc(pos, pos, target)
		p.ptrB[pos] = nh
	}

	p.total += k
	p.adds += uint64(k)
	if f <= 0 && target > 0 {
		p.active++
	}
	if f < 0 && target >= 0 {
		p.negative--
	}
}

// removeN is the mirror image of addN: the frequency of object x drops from
// f to f-k, walking x left across whole blocks whose frequency is above the
// target.
func (p *Profile) removeN(x int32, k int64) {
	r0 := p.fToT[x]
	bh := p.ptrB[r0]
	b := p.arena.at(bh)
	f := b.f
	target := f - k
	first := b.l

	if r0 != first {
		y := p.tToF[first]
		p.tToF[first] = x
		p.tToF[r0] = y
		p.fToT[x] = first
		p.fToT[y] = r0
	}
	b.l++
	if b.r < b.l {
		p.arena.release(bh)
	}

	pos := first
	for pos > 0 {
		ph := p.ptrB[pos-1]
		pb := p.arena.at(ph)
		if pb.f <= target {
			break
		}
		l := pb.l
		y := p.tToF[l]
		p.tToF[pos] = y
		p.tToF[l] = x
		p.fToT[y] = pos
		p.fToT[x] = l
		pb.l = l + 1
		pb.r = pos
		p.ptrB[pos] = ph
		pos = l
	}

	if pos > 0 && p.arena.at(p.ptrB[pos-1]).f == target {
		ph := p.ptrB[pos-1]
		p.arena.at(ph).r = pos
		p.ptrB[pos] = ph
	} else {
		nh := p.arena.alloc(pos, pos, target)
		p.ptrB[pos] = nh
	}

	p.total -= k
	p.removes += uint64(k)
	if f > 0 && target <= 0 {
		p.active--
	}
	if f >= 0 && target < 0 {
		p.negative++
	}
}

// Coalescer folds a tuple batch into net per-object deltas. It keeps an
// m-sized scratch index and a reusable delta buffer, so steady-state
// coalescing allocates nothing. A Coalescer is not safe for concurrent use;
// the returned slice is valid until the next Coalesce call.
type Coalescer struct {
	m      int
	pos    []int32 // object -> index into deltas for the current batch, -1 = absent
	deltas []Delta
}

// NewCoalescer returns a Coalescer for object ids in [0, m).
func NewCoalescer(m int) (*Coalescer, error) {
	if m < 0 || m > MaxCapacity {
		return nil, fmt.Errorf("%w: %d", ErrCapacity, m)
	}
	pos := make([]int32, m)
	for i := range pos {
		pos[i] = -1
	}
	return &Coalescer{m: m, pos: pos}, nil
}

// Coalesce folds tuples into one Delta per distinct object, in first-touch
// order, recording both the net frequency change and the gross add/remove
// counts. Objects whose events cancel out are kept (with Delta zero), so
// applying the result still advances the event counters exactly like the
// per-event path. An out-of-range object or invalid action fails without
// producing a partial result.
func (c *Coalescer) Coalesce(tuples []Tuple) ([]Delta, error) {
	// Reset the index entries the previous batch touched.
	for i := range c.deltas {
		c.pos[c.deltas[i].Object] = -1
	}
	c.deltas = c.deltas[:0]
	for _, t := range tuples {
		if t.Object < 0 || t.Object >= c.m {
			return nil, errObjectRange(t.Object, c.m)
		}
		j := c.pos[t.Object]
		if j < 0 {
			j = int32(len(c.deltas))
			c.deltas = append(c.deltas, Delta{Object: t.Object})
			c.pos[t.Object] = j
		}
		d := &c.deltas[j]
		switch t.Action {
		case ActionAdd:
			d.Delta++
			d.Adds++
		case ActionRemove:
			d.Delta--
			d.Removes++
		default:
			return nil, fmt.Errorf("core: invalid action %d", t.Action)
		}
	}
	mCoalesceEvents.Add(uint64(len(tuples)))
	mCoalescedDeltas.Add(uint64(len(c.deltas)))
	return c.deltas, nil
}
