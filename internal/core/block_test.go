package core

import "testing"

func TestBlockSize(t *testing.T) {
	cases := []struct {
		b    block
		want int
	}{
		{block{l: 0, r: 0, f: 5}, 1},
		{block{l: 3, r: 9, f: 0}, 7},
		{block{l: 7, r: 7, f: -2}, 1},
	}
	for _, c := range cases {
		if got := c.b.size(); got != c.want {
			t.Errorf("size(%+v) = %d, want %d", c.b, got, c.want)
		}
	}
}

func TestArenaAllocRelease(t *testing.T) {
	a := newBlockArena(2)
	h1 := a.alloc(0, 4, 0)
	h2 := a.alloc(5, 9, 3)
	if a.liveBlocks() != 2 {
		t.Fatalf("liveBlocks = %d, want 2", a.liveBlocks())
	}
	if got := *a.at(h1); got != (block{0, 4, 0}) {
		t.Errorf("block h1 = %+v", got)
	}
	if got := *a.at(h2); got != (block{5, 9, 3}) {
		t.Errorf("block h2 = %+v", got)
	}

	a.release(h1)
	if a.liveBlocks() != 1 {
		t.Fatalf("liveBlocks after release = %d, want 1", a.liveBlocks())
	}
	// The freed handle must be reused before the slab grows.
	h3 := a.alloc(1, 1, 7)
	if h3 != h1 {
		t.Errorf("alloc after release = handle %d, want reuse of %d", h3, h1)
	}
	if got := *a.at(h3); got != (block{1, 1, 7}) {
		t.Errorf("reused block = %+v", got)
	}
	if a.liveBlocks() != 2 {
		t.Errorf("liveBlocks = %d, want 2", a.liveBlocks())
	}
}

func TestArenaFreeListChain(t *testing.T) {
	a := newBlockArena(0)
	handles := make([]int32, 10)
	for i := range handles {
		handles[i] = a.alloc(int32(i), int32(i), int64(i))
	}
	for _, h := range handles {
		a.release(h)
	}
	if a.liveBlocks() != 0 {
		t.Fatalf("liveBlocks = %d, want 0", a.liveBlocks())
	}
	// All ten slots must come back out of the free list without growing.
	capBefore := a.capBlocks()
	seen := map[int32]bool{}
	for i := 0; i < 10; i++ {
		h := a.alloc(0, 0, 0)
		if seen[h] {
			t.Fatalf("handle %d returned twice", h)
		}
		seen[h] = true
	}
	if a.capBlocks() != capBefore {
		t.Errorf("slab grew from %d to %d despite free list", capBefore, a.capBlocks())
	}
}

func TestArenaReset(t *testing.T) {
	a := newBlockArena(4)
	a.alloc(0, 1, 0)
	a.alloc(2, 3, 1)
	a.reset()
	if a.liveBlocks() != 0 {
		t.Errorf("liveBlocks after reset = %d, want 0", a.liveBlocks())
	}
	h := a.alloc(0, 3, 0)
	if h != 0 {
		t.Errorf("first handle after reset = %d, want 0", h)
	}
}

func TestArenaNegativeHint(t *testing.T) {
	a := newBlockArena(-5)
	if a == nil {
		t.Fatal("newBlockArena(-5) returned nil")
	}
	h := a.alloc(0, 0, 1)
	if got := *a.at(h); got != (block{0, 0, 1}) {
		t.Errorf("block = %+v", got)
	}
}
