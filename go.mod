module sprofile

go 1.24
