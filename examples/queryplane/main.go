// Query plane end to end: an in-process sprofile server, the typed client
// SDK, bulk NDJSON ingestion, and one atomic composite query.
//
// Run with:
//
//	go run ./examples/queryplane
//
// The example stands up the same HTTP server cmd/sprofiled runs (on an
// ephemeral port), streams a skewed click stream into it through the
// client's bulk fast path, and then renders a small dashboard from ONE
// POST /v1/query — every statistic in it taken from the same consistent cut
// of the server's profile. It also shows the error taxonomy surviving the
// wire: errors.Is against sprofile sentinels works on client-side errors.
package main

import (
	"context"
	"errors"
	"fmt"
	"log"
	"math/rand"
	"net/http/httptest"

	"sprofile"
	"sprofile/client"
	"sprofile/internal/server"
)

const (
	capacity = 10_000
	events   = 200_000
)

func main() {
	// The server side: exactly what cmd/sprofiled serves.
	srv, err := server.New(server.Config{Capacity: capacity})
	if err != nil {
		log.Fatal(err)
	}
	defer srv.Close()
	ts := httptest.NewServer(srv)
	defer ts.Close()

	c, err := client.New(ts.URL)
	if err != nil {
		log.Fatal(err)
	}
	ctx := context.Background()

	// Ingest a skewed stream through the bulk NDJSON fast path: the server
	// coalesces each chunk into net per-key deltas, so the hot keys cost one
	// block walk per chunk instead of one per event.
	rng := rand.New(rand.NewSource(1))
	batch := make([]client.Event, 0, events)
	for i := 0; i < events; i++ {
		var key string
		if rng.Float64() < 0.4 {
			key = fmt.Sprintf("hot-%d", rng.Intn(20))
		} else {
			key = fmt.Sprintf("page-%d", rng.Intn(capacity-20))
		}
		batch = append(batch, client.Event{Object: key, Action: client.ActionAdd})
	}
	applied, err := c.BulkIngest(ctx, batch)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("ingested %d events through /v1/events/bulk\n\n", applied)

	// One composite query = one consistent dashboard. All of these come from
	// a single quiesced cut of the server's profile; a sequence of GETs could
	// interleave with concurrent producers and disagree with itself.
	res, err := c.Query(ctx, sprofile.KeyedQuery[string]{
		Count:     []string{"hot-0", "page-1", "never-seen"},
		Mode:      true,
		TopK:      5,
		Median:    true,
		Quantiles: []float64{0.9, 0.99},
		Summary:   true,
	})
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("mode: %q with frequency %d (%d tied)\n", res.Mode.Key, res.Mode.Frequency, res.Mode.Ties)
	fmt.Println("top 5:")
	for i, e := range res.TopK {
		fmt.Printf("  #%d %-8q %d\n", i+1, e.Key, e.Frequency)
	}
	fmt.Printf("median frequency: %d, p90: %d, p99: %d\n",
		res.Median.Frequency, res.Quantiles[0].Frequency, res.Quantiles[1].Frequency)
	for _, e := range res.Counts {
		fmt.Printf("count %-12q = %d\n", e.Key, e.Frequency)
	}
	fmt.Printf("summary: %d events over %d active keys\n\n", res.Summary.Total, res.Summary.Active)

	// The error taxonomy crosses the wire: a remove of an unknown key is a
	// 404 whose code resolves back to sprofile.ErrUnknownKey.
	err = c.Remove(ctx, "never-seen")
	switch {
	case errors.Is(err, sprofile.ErrUnknownKey):
		fmt.Println("removing an unknown key fails with sprofile.ErrUnknownKey, as it would locally")
	case err == nil:
		log.Fatal("remove of an unknown key unexpectedly succeeded")
	default:
		log.Fatalf("unexpected error class: %v", err)
	}
}
