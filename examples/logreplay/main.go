// Log replay: profile an existing, timestamped application log.
//
// Run with:
//
//	go run ./examples/logreplay
//
// Most systems already have the log stream the paper talks about — access
// logs, audit logs, engagement events — they just store it as text. This
// example takes a timestamped event log in the repository's simple text
// format ("<timestamp>,<object>,<action>"), maps the string object keys onto
// dense ids, and replays it through a time-based sliding window so that, at
// every point of the replay, the profile answers "what was hot in the last
// five minutes?" — each answer in O(1).
//
// The log here is generated in-process to keep the example self-contained;
// point ParseAndReplay at a real file to use it on your own data.
package main

import (
	"fmt"
	"io"
	"log"
	"math/rand"
	"strings"
	"time"

	"sprofile"
	"sprofile/internal/stream"
)

const (
	services    = 12
	totalEvents = 20_000
	windowSpan  = 5 * time.Minute
)

func main() {
	logText := synthesizeLog()
	if err := parseAndReplay(strings.NewReader(logText)); err != nil {
		log.Fatal(err)
	}
}

// synthesizeLog produces a plausible "requests per service" event log: every
// event is an add for one of a handful of service names, with one service
// suffering a traffic spike halfway through.
func synthesizeLog() string {
	rng := rand.New(rand.NewSource(2026))
	start := time.Date(2026, 6, 16, 9, 0, 0, 0, time.UTC)
	var sb strings.Builder
	sb.WriteString("# synthetic request log: timestamp,service,action\n")
	for i := 0; i < totalEvents; i++ {
		at := start.Add(time.Duration(i) * 50 * time.Millisecond) // ~20 events/s
		var svc int
		if i > totalEvents/2 && rng.Float64() < 0.5 {
			svc = 7 // the spiking service
		} else {
			svc = rng.Intn(services)
		}
		fmt.Fprintf(&sb, "%s,service-%02d,add\n", at.Format(time.RFC3339), svc)
	}
	return sb.String()
}

func parseAndReplay(r io.Reader) error {
	events, err := stream.NewEventLogReader(r).ReadAll()
	if err != nil {
		return err
	}
	fmt.Printf("parsed %d events\n", len(events))

	// Map string service names to dense ids.
	tuples, mapper, err := stream.Densify(events, services)
	if err != nil {
		return err
	}

	// The concrete TimeWindow is needed for PushAt (replaying historical
	// timestamps); all the statistics below are answered by the window itself
	// through the shared Reader surface.
	profile, err := sprofile.New(services)
	if err != nil {
		return err
	}
	window, err := sprofile.NewTimeWindow(profile, windowSpan)
	if err != nil {
		return err
	}

	reportEvery := len(events) / 4
	for i, tuple := range tuples {
		if err := window.PushAt(tuple, events[i].At); err != nil {
			return err
		}
		if (i+1)%reportEvery == 0 {
			mode, _, err := window.Mode()
			if err != nil {
				return err
			}
			name, _ := mapper.Key(mode.Object)
			fmt.Printf("at %s: busiest service in the last %v is %s with %d requests (window holds %d events)\n",
				events[i].At.Format(time.TimeOnly), windowSpan, name, mode.Frequency, window.Len())
		}
	}

	// Final per-service request counts inside the last window.
	fmt.Printf("\nrequests in the final %v window:\n", windowSpan)
	for _, e := range window.TopK(services) {
		name, ok := mapper.Key(e.Object)
		if !ok || e.Frequency == 0 {
			continue
		}
		fmt.Printf("  %-12s %5d\n", name, e.Frequency)
	}
	return nil
}
