// Quickstart: profile a small log stream and query its statistics.
//
// Run with:
//
//	go run ./examples/quickstart
//
// The example follows the paper's setting directly: a stream of (object,
// add|remove) tuples arrives one by one, and after every update the profile
// can answer "what is the most popular object right now?", "what are the
// top-K?", "what does the frequency distribution look like?" — each in
// constant time.
package main

import (
	"fmt"
	"log"

	"sprofile"
)

func main() {
	// Track up to 8 distinct objects (dense ids 0..7). Build returns the
	// sprofile.Profiler interface; adding sprofile.Synchronized() or
	// sprofile.WithSharding(n) here later changes nothing below.
	profile, err := sprofile.Build(8)
	if err != nil {
		log.Fatal(err)
	}

	// A tiny log stream: objects are "liked" (add) and "disliked" (remove).
	events := []sprofile.Tuple{
		{Object: 3, Action: sprofile.ActionAdd},
		{Object: 1, Action: sprofile.ActionAdd},
		{Object: 3, Action: sprofile.ActionAdd},
		{Object: 5, Action: sprofile.ActionAdd},
		{Object: 3, Action: sprofile.ActionAdd},
		{Object: 1, Action: sprofile.ActionAdd},
		{Object: 5, Action: sprofile.ActionRemove},
		{Object: 2, Action: sprofile.ActionAdd},
	}
	for _, e := range events {
		if err := profile.Apply(e); err != nil {
			log.Fatal(err)
		}
		// The mode is available after every single update at O(1) cost.
		mode, ties, _ := profile.Mode()
		fmt.Printf("after %-6s of object %d: mode is object %d with frequency %d (%d tied)\n",
			e.Action, e.Object, mode.Object, mode.Frequency, ties)
	}

	fmt.Println()
	fmt.Println("top 3 objects:")
	for rank, entry := range profile.TopK(3) {
		fmt.Printf("  #%d object %d, frequency %d\n", rank+1, entry.Object, entry.Frequency)
	}

	median, _ := profile.Median()
	fmt.Printf("\nmedian frequency over all %d slots: %d\n", profile.Cap(), median.Frequency)

	fmt.Println("\nfrequency distribution (ascending):")
	for _, fc := range profile.Distribution() {
		fmt.Printf("  frequency %d: %d object(s)\n", fc.Freq, fc.Count)
	}

	if majority, ok, _ := profile.Majority(); ok {
		fmt.Printf("\nobject %d holds a strict majority of all %d events\n", majority.Object, profile.Total())
	} else {
		fmt.Printf("\nno object holds a strict majority (total count %d)\n", profile.Total())
	}

	// Composite queries: any subset of the statistics above can be answered
	// in ONE atomic request — one lock acquisition on the concurrency
	// variants — instead of one call per statistic.
	res, err := sprofile.QueryProfiler(profile, sprofile.Query{
		Mode:      true,
		TopK:      3,
		Quantiles: []float64{0.5, 0.99},
		Summary:   true,
	})
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("\ncomposite query: mode=obj%d(freq %d) top=%v p50=%d p99=%d total=%d\n",
		res.Mode.Object, res.Mode.Frequency, res.TopK,
		res.Quantiles[0].Frequency, res.Quantiles[1].Frequency, res.Summary.Total)
}
