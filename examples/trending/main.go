// Trending: a "most popular live channels right now" dashboard.
//
// Run with:
//
//	go run ./examples/trending
//
// This is the scenario from the paper's introduction: a system with many
// users emits a log stream of enter/exit events for live video channels, and
// the operator wants the most and top-popular channels at any moment.
//
// Two profiles are maintained side by side:
//
//   - an all-time profile over every event seen so far (Keyed, so channels
//     are identified by name rather than by pre-assigned integer ids), and
//   - a sliding-window profile over the most recent events only, which is
//     what "trending" usually means; expiring old events costs one extra O(1)
//     update per push (paper §2.3).
package main

import (
	"fmt"
	"log"
	"math/rand"

	"sprofile"
)

const (
	channels    = 200
	totalEvents = 100_000
	windowSize  = 5_000
	reportEvery = 25_000
)

func main() {
	rng := rand.New(rand.NewSource(42))

	// All-time popularity, keyed by channel name.
	allTime, err := sprofile.NewKeyed[string](channels)
	if err != nil {
		log.Fatal(err)
	}

	// Trending = popularity inside a sliding window of recent events. The
	// windowed profile is assembled with Build and queried through the same
	// Profiler interface as any other variant.
	window, err := sprofile.Build(channels, sprofile.Windowed(windowSize))
	if err != nil {
		log.Fatal(err)
	}

	// Channel popularity drifts over time: early on, low-numbered channels
	// dominate; later, a "breaking news" channel takes over. The all-time and
	// windowed views should therefore disagree at the end.
	for i := 0; i < totalEvents; i++ {
		ch := pickChannel(rng, i)
		name := fmt.Sprintf("channel-%03d", ch)

		// 80% of events are viewers entering, 20% leaving.
		if rng.Float64() < 0.8 {
			if err := allTime.Add(name); err != nil {
				log.Fatal(err)
			}
			if err := window.Add(ch); err != nil {
				log.Fatal(err)
			}
		} else {
			// Leaving a channel the windowed profile no longer remembers is
			// fine: frequencies may dip below zero in the dense profile, and
			// the all-time keyed profile just skips unknown channels.
			if f, _ := allTime.Count(name); f > 0 {
				if err := allTime.Remove(name); err != nil {
					log.Fatal(err)
				}
			}
			if err := window.Remove(ch); err != nil {
				log.Fatal(err)
			}
		}

		if (i+1)%reportEvery == 0 {
			report(i+1, allTime, window)
		}
	}
}

// pickChannel models drifting popularity: the hot set moves from the low ids
// to the high ids as the stream progresses.
func pickChannel(rng *rand.Rand, event int) int {
	phase := float64(event) / float64(totalEvents)
	if rng.Float64() < 0.6 {
		// Hot traffic: early on channels 0-9, later channels 190-199.
		hotBase := int(phase * float64(channels-10))
		return hotBase + rng.Intn(10)
	}
	return rng.Intn(channels)
}

func report(event int, allTime *sprofile.Keyed[string], window sprofile.Profiler) {
	fmt.Printf("=== after %d events ===\n", event)

	fmt.Println("all-time top 5:")
	for rank, e := range allTime.TopK(5) {
		fmt.Printf("  #%d %-12s %6d viewers-net\n", rank+1, e.Key, e.Frequency)
	}

	fmt.Printf("trending top 5 (last %d events):\n", windowSize)
	for rank, e := range window.TopK(5) {
		fmt.Printf("  #%d channel-%03d %6d viewers-net\n", rank+1, e.Object, e.Frequency)
	}

	mode, ties, err := window.Mode()
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("hottest right now: channel-%03d (net %d, %d tied)\n\n", mode.Object, mode.Frequency, ties)
}
