// Fraud-ring detection by graph shaving.
//
// Run with:
//
//	go run ./examples/fraudring
//
// Paper §2.3 points out that heuristic "shaving" algorithms for fraud
// detection in big graphs (FRAUDAR-style greedy peeling) spend their inner
// loop repeatedly finding a node of minimum degree while degrees drop by one
// as neighbours are removed — exactly the ±1 update pattern S-Profile serves
// in O(1).
//
// This example builds a synthetic "users rate products" interaction graph:
// mostly sparse organic traffic, plus a small ring of colluding accounts that
// all rate the same handful of products many times. Greedy peeling with the
// S-Profile-backed minimum-degree tracker recovers the injected ring as the
// densest remaining subgraph.
package main

import (
	"fmt"
	"log"
	"math/rand"
	"sort"

	"sprofile/internal/graph"
)

const (
	organicNodes = 3_000 // legitimate users + products
	organicEdges = 9_000 // sparse organic ratings
	ringUsers    = 25    // colluding accounts
	ringProducts = 8     // products they boost
	ringRepeats  = 6     // how many times each account hits each product
)

func main() {
	rng := rand.New(rand.NewSource(7))

	totalNodes := organicNodes + ringUsers + ringProducts
	g, err := graph.NewGraph(totalNodes)
	if err != nil {
		log.Fatal(err)
	}

	// Organic background traffic: sparse random ratings.
	for i := 0; i < organicEdges; i++ {
		u := rng.Intn(organicNodes)
		v := rng.Intn(organicNodes)
		if u == v {
			v = (v + 1) % organicNodes
		}
		if err := g.AddEdge(u, v); err != nil {
			log.Fatal(err)
		}
	}

	// The fraud ring: ringUsers accounts each rate ringProducts products
	// ringRepeats times. Parallel edges model repeated ratings and make the
	// block disproportionately dense.
	ringStart := organicNodes
	for u := 0; u < ringUsers; u++ {
		for p := 0; p < ringProducts; p++ {
			for r := 0; r < ringRepeats; r++ {
				if err := g.AddEdge(ringStart+u, ringStart+ringUsers+p); err != nil {
					log.Fatal(err)
				}
			}
		}
	}

	fmt.Printf("graph: %d nodes, %d edges (%d injected ring edges)\n",
		g.NumNodes(), g.NumEdges(), ringUsers*ringProducts*ringRepeats)

	// Greedy peeling driven by the S-Profile minimum-degree tracker.
	result, err := graph.Peel(g, graph.EngineSProfile)
	if err != nil {
		log.Fatal(err)
	}

	fmt.Printf("densest subgraph found by peeling: %d nodes, density %.2f edges/node\n",
		len(result.BestSubgraph), result.BestDensity)

	// How much of the injected ring did the densest subgraph recover?
	inRing := func(v int) bool { return v >= ringStart }
	recovered, falsePositives := 0, 0
	for _, v := range result.BestSubgraph {
		if inRing(v) {
			recovered++
		} else {
			falsePositives++
		}
	}
	fmt.Printf("ring recovery: %d/%d ring nodes in the densest subgraph, %d organic nodes included\n",
		recovered, ringUsers+ringProducts, falsePositives)

	// Show the first few suspicious accounts (ring user ids sorted).
	var suspects []int
	for _, v := range result.BestSubgraph {
		if inRing(v) && v < ringStart+ringUsers {
			suspects = append(suspects, v)
		}
	}
	sort.Ints(suspects)
	if len(suspects) > 5 {
		suspects = suspects[:5]
	}
	fmt.Printf("first flagged accounts: %v\n", suspects)

	// All three min-degree engines produce a valid peel; compare their best
	// densities to show the answer does not depend on the engine.
	for _, engine := range graph.Engines() {
		res, err := graph.Peel(g, engine)
		if err != nil {
			log.Fatal(err)
		}
		fmt.Printf("engine %-10s best density %.2f over %d nodes\n",
			engine, res.BestDensity, len(res.BestSubgraph))
	}
}
