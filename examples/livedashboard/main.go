// Live dashboard: concurrent ingestion with periodic statistics snapshots.
//
// Run with:
//
//	go run ./examples/livedashboard
//
// Several producer goroutines ingest (object, add|remove) events into one
// shared Concurrent profile — think one goroutine per Kafka partition of a
// click stream — while a reporter goroutine periodically reads the mode, the
// quantiles of the popularity distribution and the distribution histogram.
// Queries never block each other (read lock) and updates stay O(1) under the
// write lock, so the dashboard stays responsive at high ingest rates.
package main

import (
	"fmt"
	"log"
	"math/rand"
	"sync"

	"sprofile"
)

const (
	objects          = 10_000
	producers        = 4
	eventsPerBatch   = 50_000
	batchesPerWorker = 4
)

func main() {
	// One synchronized profile shared by all producers. Swapping the mutex
	// wrapper for lock shards is a one-line change:
	// sprofile.Build(objects, sprofile.WithSharding(16)).
	profile, err := sprofile.Build(objects, sprofile.Synchronized())
	if err != nil {
		log.Fatal(err)
	}

	var wg sync.WaitGroup
	batchDone := make(chan int, producers*batchesPerWorker)

	for w := 0; w < producers; w++ {
		wg.Add(1)
		go func(worker int) {
			defer wg.Done()
			rng := rand.New(rand.NewSource(int64(worker + 1)))
			for batch := 0; batch < batchesPerWorker; batch++ {
				for i := 0; i < eventsPerBatch; i++ {
					// Skewed popularity: a small hot set plus a uniform tail.
					var x int
					if rng.Float64() < 0.3 {
						x = rng.Intn(objects / 100)
					} else {
						x = rng.Intn(objects)
					}
					if rng.Float64() < 0.75 {
						_ = profile.Add(x)
					} else {
						_ = profile.Remove(x)
					}
				}
				batchDone <- worker
			}
		}(w)
	}

	// Reporter: after every completed batch, print a dashboard line. The
	// whole line is ONE composite query answered under one lock acquisition,
	// so the mode, both quantiles and the summary always describe the same
	// instant — with individual getters, each would be a separate lock
	// round-trip and the line could mix four different states of the stream.
	dashboard := sprofile.Query{
		Mode:      true,
		Quantiles: []float64{0.50, 0.99},
		Summary:   true,
	}
	reporterDone := make(chan struct{})
	go func() {
		defer close(reporterDone)
		for i := 0; i < producers*batchesPerWorker; i++ {
			worker := <-batchDone
			res, err := sprofile.QueryProfiler(profile, dashboard)
			if err != nil {
				log.Fatal(err)
			}
			fmt.Printf("batch %2d (worker %d): events=%d mode=obj%-5d freq=%-6d ties=%-4d p50=%-4d p99=%-5d distinct-freqs=%d\n",
				i+1, worker, res.Summary.Adds+res.Summary.Removes, res.Mode.Object, res.Mode.Frequency, res.Mode.Ties,
				res.Quantiles[0].Frequency, res.Quantiles[1].Frequency, res.Summary.DistinctFrequencies)
		}
	}()

	wg.Wait()
	<-reporterDone

	// Final consistent snapshot for the end-of-run report. Snapshots are an
	// optional capability on top of the Profiler interface.
	snapshot, err := profile.(sprofile.Snapshotter).Snapshot()
	if err != nil {
		log.Fatal(err)
	}
	fmt.Println("\nfinal top 10 objects:")
	for rank, e := range snapshot.TopK(10) {
		fmt.Printf("  #%2d object %-6d net count %d\n", rank+1, e.Object, e.Frequency)
	}
	dist := snapshot.Distribution()
	fmt.Printf("\nfinal distribution spans %d distinct frequencies (min %d, max %d)\n",
		len(dist), dist[0].Freq, dist[len(dist)-1].Freq)
}
