// Live dashboard: concurrent ingestion with periodic statistics snapshots
// and a second pane driven by the /metrics exposition.
//
// Run with:
//
//	go run ./examples/livedashboard
//
// Several producer goroutines ingest (object, add|remove) events into one
// shared durable profile — think one goroutine per Kafka partition of a
// click stream — while two reporter panes run alongside:
//
//   - pane 1 answers ONE composite query per completed batch (mode, p50/p99
//     of the popularity distribution, summary), all from the same instant;
//   - pane 2 polls GET /metrics — the same Prometheus endpoint a scraper
//     would hit — and renders ingest throughput (the rate of
//     sprofile_wal_appends_total) and the fsync p99 (from the
//     sprofile_wal_fsync_seconds histogram buckets).
//
// The metrics pane reads only what any external dashboard could read; it
// holds no reference to the profile at all.
package main

import (
	"bufio"
	"fmt"
	"log"
	"math"
	"math/rand"
	"net"
	"net/http"
	"os"
	"sort"
	"strconv"
	"strings"
	"sync"
	"time"

	"sprofile"
)

const (
	objects          = 10_000
	producers        = 4
	eventsPerBatch   = 50_000
	batchesPerWorker = 4
)

// scrapeWAL fetches /metrics and extracts the two series pane 2 renders:
// the total WAL appends (one per ingested event on a durable profile) and
// the cumulative fsync histogram buckets.
func scrapeWAL(url string) (appends float64, buckets map[float64]float64, fsyncs float64, err error) {
	resp, err := http.Get(url)
	if err != nil {
		return 0, nil, 0, err
	}
	defer resp.Body.Close()
	buckets = make(map[float64]float64)
	sc := bufio.NewScanner(resp.Body)
	for sc.Scan() {
		line := sc.Text()
		series, value, ok := strings.Cut(line, " ")
		if !ok || strings.HasPrefix(line, "#") {
			continue
		}
		v, perr := strconv.ParseFloat(value, 64)
		if perr != nil {
			continue
		}
		switch {
		case series == "sprofile_wal_appends_total":
			appends = v
		case series == "sprofile_wal_fsync_seconds_count":
			fsyncs = v
		case strings.HasPrefix(series, "sprofile_wal_fsync_seconds_bucket{le=\""):
			le := strings.TrimSuffix(strings.TrimPrefix(series, "sprofile_wal_fsync_seconds_bucket{le=\""), "\"}")
			b, perr := strconv.ParseFloat(le, 64)
			if perr == nil {
				buckets[b] = v
			}
		}
	}
	return appends, buckets, fsyncs, sc.Err()
}

// p99 returns the upper bound of the histogram bucket that contains the
// 99th percentile (the resolution a fixed-bucket histogram offers).
func p99(buckets map[float64]float64) float64 {
	var les []float64
	for le := range buckets {
		les = append(les, le)
	}
	sort.Float64s(les)
	if len(les) == 0 {
		return math.NaN()
	}
	total := buckets[les[len(les)-1]] // the +Inf bucket holds the count
	if total == 0 {
		return math.NaN()
	}
	target := 0.99 * total
	for _, le := range les {
		if buckets[le] >= target {
			return le
		}
	}
	return math.Inf(1)
}

func main() {
	// A durable synchronized profile: every applied event is appended to a
	// rotating WAL segment, fsynced every 5000 records — which is what makes
	// the WAL families on /metrics move.
	walDir, err := os.MkdirTemp("", "livedashboard-wal-*")
	if err != nil {
		log.Fatal(err)
	}
	defer os.RemoveAll(walDir)
	profile, err := sprofile.Build(objects, sprofile.Synchronized(),
		sprofile.WithWAL(walDir), sprofile.WithWALSyncEvery(5000))
	if err != nil {
		log.Fatal(err)
	}

	// Serve the exposition exactly as sprofiled would, on an ephemeral port.
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		log.Fatal(err)
	}
	mux := http.NewServeMux()
	mux.Handle("/metrics", sprofile.MetricsHandler())
	go http.Serve(ln, mux)
	metricsURL := "http://" + ln.Addr().String() + "/metrics"
	fmt.Printf("metrics pane scraping %s\n\n", metricsURL)

	var wg sync.WaitGroup
	batchDone := make(chan int, producers*batchesPerWorker)

	for w := 0; w < producers; w++ {
		wg.Add(1)
		go func(worker int) {
			defer wg.Done()
			rng := rand.New(rand.NewSource(int64(worker + 1)))
			for batch := 0; batch < batchesPerWorker; batch++ {
				for i := 0; i < eventsPerBatch; i++ {
					// Skewed popularity: a small hot set plus a uniform tail.
					var x int
					if rng.Float64() < 0.3 {
						x = rng.Intn(objects / 100)
					} else {
						x = rng.Intn(objects)
					}
					if rng.Float64() < 0.75 {
						_ = profile.Add(x)
					} else {
						_ = profile.Remove(x)
					}
				}
				batchDone <- worker
			}
		}(w)
	}

	// Pane 2: poll /metrics on a fixed cadence and render the ingest rate
	// and the fsync p99 from the scrape alone.
	metricsDone := make(chan struct{})
	stopMetrics := make(chan struct{})
	go func() {
		defer close(metricsDone)
		var lastAppends float64
		lastAt := time.Now()
		tick := time.NewTicker(100 * time.Millisecond)
		defer tick.Stop()
		for {
			select {
			case <-stopMetrics:
				return
			case <-tick.C:
			}
			appends, buckets, fsyncs, err := scrapeWAL(metricsURL)
			if err != nil {
				continue
			}
			now := time.Now()
			rate := (appends - lastAppends) / now.Sub(lastAt).Seconds()
			lastAppends, lastAt = appends, now
			fmt.Printf("  [metrics] ingest %8.0f ev/s | wal appends %8.0f | fsyncs %4.0f | fsync p99 <= %s\n",
				rate, appends, fsyncs, fmtSeconds(p99(buckets)))
		}
	}()

	// Pane 1: after every completed batch, print a dashboard line. The whole
	// line is ONE composite query answered under one lock acquisition, so
	// the mode, both quantiles and the summary always describe the same
	// instant — with individual getters, each would be a separate lock
	// round-trip and the line could mix four different states of the stream.
	dashboard := sprofile.Query{
		Mode:      true,
		Quantiles: []float64{0.50, 0.99},
		Summary:   true,
	}
	reporterDone := make(chan struct{})
	go func() {
		defer close(reporterDone)
		for i := 0; i < producers*batchesPerWorker; i++ {
			worker := <-batchDone
			res, err := sprofile.QueryProfiler(profile, dashboard)
			if err != nil {
				log.Fatal(err)
			}
			fmt.Printf("batch %2d (worker %d): events=%d mode=obj%-5d freq=%-6d ties=%-4d p50=%-4d p99=%-5d distinct-freqs=%d\n",
				i+1, worker, res.Summary.Adds+res.Summary.Removes, res.Mode.Object, res.Mode.Frequency, res.Mode.Ties,
				res.Quantiles[0].Frequency, res.Quantiles[1].Frequency, res.Summary.DistinctFrequencies)
		}
	}()

	wg.Wait()
	<-reporterDone
	close(stopMetrics)
	<-metricsDone

	// Final consistent snapshot for the end-of-run report. Snapshots are an
	// optional capability on top of the Profiler interface; the durable
	// wrapper exposes its inner profile through Unwrap.
	durable := profile.(*sprofile.Durable)
	snapshot, err := durable.Unwrap().(sprofile.Snapshotter).Snapshot()
	if err != nil {
		log.Fatal(err)
	}
	fmt.Println("\nfinal top 10 objects:")
	for rank, e := range snapshot.TopK(10) {
		fmt.Printf("  #%2d object %-6d net count %d\n", rank+1, e.Object, e.Frequency)
	}
	dist := snapshot.Distribution()
	fmt.Printf("\nfinal distribution spans %d distinct frequencies (min %d, max %d)\n",
		len(dist), dist[0].Freq, dist[len(dist)-1].Freq)

	// One last scrape after Close, when the final fsync has landed.
	if err := durable.Close(); err != nil {
		log.Fatal(err)
	}
	appends, buckets, fsyncs, err := scrapeWAL(metricsURL)
	if err == nil {
		fmt.Printf("\nfinal scrape: %0.f wal appends, %0.f fsyncs, fsync p99 <= %s\n",
			appends, fsyncs, fmtSeconds(p99(buckets)))
	}
}

func fmtSeconds(s float64) string {
	switch {
	case math.IsNaN(s):
		return "n/a"
	case math.IsInf(s, +1):
		return ">max bucket"
	default:
		return time.Duration(s * float64(time.Second)).String()
	}
}
