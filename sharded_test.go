package sprofile_test

import (
	"errors"
	"sync"
	"testing"
	"testing/quick"

	"sprofile"
	"sprofile/internal/stream"
)

func TestShardedValidation(t *testing.T) {
	if _, err := sprofile.NewSharded(-1, 4); !errors.Is(err, sprofile.ErrCapacity) {
		t.Fatalf("NewSharded(-1, 4) error %v", err)
	}
	if _, err := sprofile.NewSharded(10, 0); err == nil {
		t.Fatalf("NewSharded(10, 0) succeeded")
	}
	if _, err := sprofile.NewSharded(10, -2); err == nil {
		t.Fatalf("NewSharded(10, -2) succeeded")
	}
	s := sprofile.MustNewSharded(10, 100)
	if s.Shards() > 10 {
		t.Fatalf("more shards (%d) than objects", s.Shards())
	}
	if s.Cap() != 10 {
		t.Fatalf("Cap() = %d", s.Cap())
	}
}

func TestShardedMustNewPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatalf("MustNewSharded did not panic")
		}
	}()
	sprofile.MustNewSharded(5, 0)
}

func TestShardedEmptyProfile(t *testing.T) {
	s := sprofile.MustNewSharded(0, 3)
	if _, _, err := s.Mode(); !errors.Is(err, sprofile.ErrEmptyProfile) {
		t.Fatalf("Mode on empty sharded profile: %v", err)
	}
	if _, _, err := s.Min(); !errors.Is(err, sprofile.ErrEmptyProfile) {
		t.Fatalf("Min on empty sharded profile: %v", err)
	}
	if _, err := s.Median(); !errors.Is(err, sprofile.ErrEmptyProfile) {
		t.Fatalf("Median on empty sharded profile: %v", err)
	}
	if err := s.Add(0); !errors.Is(err, sprofile.ErrObjectRange) {
		t.Fatalf("Add(0) on empty sharded profile: %v", err)
	}
}

func TestShardedOutOfRange(t *testing.T) {
	s := sprofile.MustNewSharded(10, 3)
	for _, x := range []int{-1, 10, 100} {
		if err := s.Add(x); !errors.Is(err, sprofile.ErrObjectRange) {
			t.Fatalf("Add(%d) error %v", x, err)
		}
		if err := s.Remove(x); !errors.Is(err, sprofile.ErrObjectRange) {
			t.Fatalf("Remove(%d) error %v", x, err)
		}
		if _, err := s.Count(x); !errors.Is(err, sprofile.ErrObjectRange) {
			t.Fatalf("Count(%d) error %v", x, err)
		}
	}
	if err := s.Apply(sprofile.Tuple{Object: 0, Action: 0}); err == nil {
		t.Fatalf("Apply accepted invalid action")
	}
}

// checkShardedAgainstReference compares every query of the sharded profile
// against a single (unsharded) reference profile that has seen the same
// stream.
func checkShardedAgainstReference(t *testing.T, s *sprofile.Sharded, ref *sprofile.Profile) {
	t.Helper()
	m := ref.Cap()
	if s.Total() != ref.Total() {
		t.Fatalf("Total: sharded %d, reference %d", s.Total(), ref.Total())
	}
	for x := 0; x < m; x++ {
		a, _ := s.Count(x)
		b, _ := ref.Count(x)
		if a != b {
			t.Fatalf("Count(%d): sharded %d, reference %d", x, a, b)
		}
	}

	gotMode, gotTies, err := s.Mode()
	if err != nil {
		t.Fatal(err)
	}
	wantMode, wantTies, _ := ref.Mode()
	if gotMode.Frequency != wantMode.Frequency || gotTies != wantTies {
		t.Fatalf("Mode: sharded (%d,%d), reference (%d,%d)",
			gotMode.Frequency, gotTies, wantMode.Frequency, wantTies)
	}
	if f, _ := ref.Count(gotMode.Object); f != gotMode.Frequency {
		t.Fatalf("Mode representative %d does not hold frequency %d", gotMode.Object, gotMode.Frequency)
	}

	gotMin, gotMinTies, err := s.Min()
	if err != nil {
		t.Fatal(err)
	}
	wantMin, wantMinTies, _ := ref.Min()
	if gotMin.Frequency != wantMin.Frequency || gotMinTies != wantMinTies {
		t.Fatalf("Min: sharded (%d,%d), reference (%d,%d)",
			gotMin.Frequency, gotMinTies, wantMin.Frequency, wantMinTies)
	}

	for _, k := range []int{1, m / 3, m/2 + 1, m} {
		if k < 1 {
			continue
		}
		got, err := s.KthLargest(k)
		if err != nil {
			t.Fatalf("KthLargest(%d): %v", k, err)
		}
		want, _ := ref.KthLargest(k)
		if got.Frequency != want.Frequency {
			t.Fatalf("KthLargest(%d): sharded %d, reference %d", k, got.Frequency, want.Frequency)
		}
		if f, _ := ref.Count(got.Object); f != got.Frequency {
			t.Fatalf("KthLargest(%d) representative %d does not hold frequency %d", k, got.Object, got.Frequency)
		}
	}

	gotMed, err := s.Median()
	if err != nil {
		t.Fatal(err)
	}
	wantMed, _ := ref.Median()
	if gotMed.Frequency != wantMed.Frequency {
		t.Fatalf("Median: sharded %d, reference %d", gotMed.Frequency, wantMed.Frequency)
	}

	for _, q := range []float64{0, 0.25, 0.5, 0.99, 1} {
		got, err := s.Quantile(q)
		if err != nil {
			t.Fatal(err)
		}
		want, _ := ref.Quantile(q)
		if got.Frequency != want.Frequency {
			t.Fatalf("Quantile(%g): sharded %d, reference %d", q, got.Frequency, want.Frequency)
		}
	}

	gotDist := s.Distribution()
	wantDist := ref.Distribution()
	if len(gotDist) != len(wantDist) {
		t.Fatalf("Distribution length: sharded %d, reference %d", len(gotDist), len(wantDist))
	}
	for i := range wantDist {
		if gotDist[i] != wantDist[i] {
			t.Fatalf("Distribution[%d]: sharded %+v, reference %+v", i, gotDist[i], wantDist[i])
		}
	}

	gotTop := s.TopK(5)
	wantTop := ref.TopK(5)
	if len(gotTop) != len(wantTop) {
		t.Fatalf("TopK length: sharded %d, reference %d", len(gotTop), len(wantTop))
	}
	for i := range wantTop {
		if gotTop[i].Frequency != wantTop[i].Frequency {
			t.Fatalf("TopK[%d]: sharded freq %d, reference %d", i, gotTop[i].Frequency, wantTop[i].Frequency)
		}
	}
}

func TestShardedMatchesSingleProfileOnPaperStreams(t *testing.T) {
	const m = 64
	for _, numShards := range []int{1, 3, 8, 64} {
		for streamIdx := 1; streamIdx <= 3; streamIdx++ {
			s := sprofile.MustNewSharded(m, numShards)
			ref := sprofile.MustNew(m)
			g, err := stream.PaperStream(streamIdx, m, uint64(streamIdx*numShards))
			if err != nil {
				t.Fatal(err)
			}
			for i := 0; i < 3000; i++ {
				tp := g.Next()
				if err := s.Apply(sprofile.Tuple{Object: tp.Object, Action: tp.Action}); err != nil {
					t.Fatal(err)
				}
				if err := ref.Apply(tp); err != nil {
					t.Fatal(err)
				}
			}
			checkShardedAgainstReference(t, s, ref)

			snap, err := s.Snapshot()
			if err != nil {
				t.Fatal(err)
			}
			for x := 0; x < m; x++ {
				a, _ := snap.Count(x)
				b, _ := ref.Count(x)
				if a != b {
					t.Fatalf("snapshot Count(%d) = %d, reference %d", x, a, b)
				}
			}
			if err := snap.CheckInvariants(); err != nil {
				t.Fatal(err)
			}
		}
	}
}

// TestShardedQuantileNearestRank pins the quantile rank definition: both the
// plain profile and the sharded merge must round q*(m-1) to the nearest rank.
// With m=11, q=0.7 lands on 6.999999999999999 in float arithmetic; the old
// truncating implementation answered rank 6 where nearest-rank demands 7.
func TestShardedQuantileNearestRank(t *testing.T) {
	const m = 11
	s := sprofile.MustNewSharded(m, 3)
	ref := sprofile.MustNew(m)
	// Distinct frequencies 0..10 so every rank has a unique frequency and any
	// rank disagreement is visible as a frequency disagreement.
	for x := 0; x < m; x++ {
		for i := 0; i < x; i++ {
			if err := s.Add(x); err != nil {
				t.Fatal(err)
			}
			if err := ref.Add(x); err != nil {
				t.Fatal(err)
			}
		}
	}
	for q := 0.0; q <= 1.0; q += 0.01 {
		got, err := s.Quantile(q)
		if err != nil {
			t.Fatalf("Quantile(%g): %v", q, err)
		}
		want, err := ref.Quantile(q)
		if err != nil {
			t.Fatal(err)
		}
		if got.Frequency != want.Frequency {
			t.Fatalf("Quantile(%g): sharded %d, reference %d", q, got.Frequency, want.Frequency)
		}
	}
	// The regression case itself: q=0.7 must hit the nearest rank 7.
	e, err := s.Quantile(0.7)
	if err != nil {
		t.Fatal(err)
	}
	if e.Frequency != 7 {
		t.Fatalf("Quantile(0.7) over frequencies 0..10 = %d, want 7 (nearest rank)", e.Frequency)
	}
}

func TestShardedKthLargestBounds(t *testing.T) {
	s := sprofile.MustNewSharded(8, 2)
	if _, err := s.KthLargest(0); !errors.Is(err, sprofile.ErrBadRank) {
		t.Fatalf("KthLargest(0) error %v", err)
	}
	if _, err := s.KthLargest(9); !errors.Is(err, sprofile.ErrBadRank) {
		t.Fatalf("KthLargest(9) error %v", err)
	}
	if got := s.TopK(0); got != nil {
		t.Fatalf("TopK(0) = %v", got)
	}
	if got := s.TopK(100); len(got) != 8 {
		t.Fatalf("TopK(100) returned %d entries, want 8", len(got))
	}
}

func TestShardedConcurrentProducers(t *testing.T) {
	const m = 1024
	const workers = 8
	const opsPerWorker = 20_000
	s := sprofile.MustNewSharded(m, 16)

	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func(seed uint64) {
			defer wg.Done()
			rng := stream.NewRNG(seed)
			for i := 0; i < opsPerWorker; i++ {
				x := rng.Intn(m)
				if rng.Bernoulli(0.7) {
					_ = s.Add(x)
				} else {
					_ = s.Remove(x)
				}
				if i%500 == 0 {
					s.Mode()
					s.TopK(3)
				}
			}
		}(uint64(w + 1))
	}
	wg.Wait()

	snap, err := s.Snapshot()
	if err != nil {
		t.Fatal(err)
	}
	if err := snap.CheckInvariants(); err != nil {
		t.Fatal(err)
	}
	// The sharded total must equal the snapshot's total, and every applied
	// event is accounted for (adds - removes = total).
	if snap.Total() != s.Total() {
		t.Fatalf("snapshot total %d, sharded total %d", snap.Total(), s.Total())
	}
}

func TestShardedPropertyMatchesReference(t *testing.T) {
	f := func(seed uint64, rawM uint8, rawShards uint8, rawN uint16) bool {
		m := int(rawM)%40 + 1
		numShards := int(rawShards)%8 + 1
		n := int(rawN) % 500
		s := sprofile.MustNewSharded(m, numShards)
		ref := sprofile.MustNew(m)
		rng := stream.NewRNG(seed)
		for i := 0; i < n; i++ {
			x := rng.Intn(m)
			action := sprofile.ActionAdd
			if rng.Bernoulli(0.4) {
				action = sprofile.ActionRemove
			}
			if s.Apply(sprofile.Tuple{Object: x, Action: action}) != nil {
				return false
			}
			if ref.Apply(sprofile.Tuple{Object: x, Action: action}) != nil {
				return false
			}
		}
		gotMode, _, e1 := s.Mode()
		wantMode, _, e2 := ref.Mode()
		gotMed, e3 := s.Median()
		wantMed, e4 := ref.Median()
		if e1 != nil || e2 != nil || e3 != nil || e4 != nil {
			return false
		}
		return gotMode.Frequency == wantMode.Frequency && gotMed.Frequency == wantMed.Frequency
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 100}); err != nil {
		t.Fatal(err)
	}
}

// TestShardedSnapshotPreservesBookkeeping: the merged snapshot must carry
// the true adds/removes counters and the strict flag, not just frequencies,
// so it doubles as a checkpoint image.
func TestShardedSnapshotPreservesBookkeeping(t *testing.T) {
	s := sprofile.MustNewSharded(10, 3, sprofile.WithStrictNonNegative())
	for _, x := range []int{1, 1, 4, 9, 4, 1} {
		if err := s.Add(x); err != nil {
			t.Fatal(err)
		}
	}
	if err := s.Remove(4); err != nil {
		t.Fatal(err)
	}
	snap, err := s.Snapshot()
	if err != nil {
		t.Fatal(err)
	}
	adds, removes := snap.Events()
	if adds != 6 || removes != 1 {
		t.Fatalf("snapshot events = %d/%d, want 6/1", adds, removes)
	}
	if !snap.StrictNonNegative() {
		t.Fatal("snapshot lost the strict flag")
	}
	if got, _ := snap.Count(1); got != 3 {
		t.Fatalf("snapshot Count(1) = %d, want 3", got)
	}
	if snapSum, shardedSum := snap.Summarize(), s.Summarize(); snapSum != shardedSum {
		t.Fatalf("snapshot summary %+v != sharded summary %+v", snapSum, shardedSum)
	}
}

// TestShardedLoadFrequencies round-trips Snapshot → LoadFrequencies into a
// fresh sharded profile with a different shard count.
func TestShardedLoadFrequencies(t *testing.T) {
	src := sprofile.MustNewSharded(12, 4)
	for _, x := range []int{0, 0, 5, 11, 5, 0, 7} {
		if err := src.Add(x); err != nil {
			t.Fatal(err)
		}
	}
	for _, x := range []int{7, 7} { // drive 7 negative: non-strict history
		if err := src.Remove(x); err != nil {
			t.Fatal(err)
		}
	}
	snap, err := src.Snapshot()
	if err != nil {
		t.Fatal(err)
	}
	adds, removes := snap.Events()

	dst := sprofile.MustNewSharded(12, 5)
	if err := dst.LoadFrequencies(snap.Frequencies(nil), adds, removes); err != nil {
		t.Fatal(err)
	}
	if srcSum, dstSum := src.Summarize(), dst.Summarize(); srcSum != dstSum {
		t.Fatalf("loaded summary %+v != source summary %+v", dstSum, srcSum)
	}
	for x := 0; x < 12; x++ {
		want, _ := src.Count(x)
		got, _ := dst.Count(x)
		if got != want {
			t.Fatalf("Count(%d) = %d, want %d", x, got, want)
		}
	}

	// Inconsistent counters and wrong lengths are rejected.
	if err := dst.LoadFrequencies(snap.Frequencies(nil), adds+1, removes); err == nil {
		t.Fatal("inconsistent counters accepted")
	}
	if err := dst.LoadFrequencies([]int64{1, 2}, 3, 0); err == nil {
		t.Fatal("wrong length accepted")
	}
	// Strict targets reject negative loads before mutating any shard.
	strict := sprofile.MustNewSharded(12, 3, sprofile.WithStrictNonNegative())
	if err := strict.LoadFrequencies(snap.Frequencies(nil), adds, removes); err == nil {
		t.Fatal("negative frequencies loaded into a strict sharded profile")
	}
}
