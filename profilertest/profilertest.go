// Package profilertest provides a reusable conformance suite for
// implementations of the sprofile.Profiler interface, in the spirit of
// net/http/httptest: the root package runs it against every built-in variant
// (plain, concurrent, sharded, windowed, durable), and out-of-tree
// implementations can run it against theirs.
//
// The suite checks three things:
//
//   - error semantics: out-of-range objects, invalid actions, bad ranks,
//     empty profiles and strict-mode removals must fail with the package's
//     sentinel errors;
//   - query agreement: after a deterministic mixed add/remove stream, every
//     query must answer exactly what a plain *sprofile.Profile over the same
//     stream answers — frequencies, ties, ranks, quantiles, histogram and
//     summary alike;
//   - batch semantics: ApplyAll must stop at the first failing tuple and
//     report how many were applied.
package profilertest

import (
	"errors"
	"math"
	"testing"

	"sprofile"
	"sprofile/internal/stream"
)

// Factory builds a fresh profiler over m dense object ids with the given
// profile options. The conformance suite calls it many times with small m.
type Factory func(m int, opts ...sprofile.Option) (sprofile.Profiler, error)

// Run executes the full conformance battery against the implementation the
// factory produces. name labels the subtests.
func Run(t *testing.T, name string, factory Factory) {
	t.Helper()
	t.Run(name+"/ErrorSemantics", func(t *testing.T) { testErrorSemantics(t, factory) })
	t.Run(name+"/ArgValidation", func(t *testing.T) { testArgValidation(t, factory) })
	t.Run(name+"/StrictMode", func(t *testing.T) { testStrictMode(t, factory) })
	t.Run(name+"/MatchesReference", func(t *testing.T) { testMatchesReference(t, factory) })
	t.Run(name+"/Query", func(t *testing.T) { testQuery(t, factory) })
	t.Run(name+"/ApplyAll", func(t *testing.T) { testApplyAll(t, factory) })
}

func testErrorSemantics(t *testing.T, factory Factory) {
	p, err := factory(8)
	if err != nil {
		t.Fatalf("factory(8): %v", err)
	}
	for _, x := range []int{-1, 8, 1 << 20} {
		if err := p.Add(x); !errors.Is(err, sprofile.ErrObjectRange) {
			t.Errorf("Add(%d) = %v, want ErrObjectRange", x, err)
		}
		if err := p.Remove(x); !errors.Is(err, sprofile.ErrObjectRange) {
			t.Errorf("Remove(%d) = %v, want ErrObjectRange", x, err)
		}
		if _, err := p.Count(x); !errors.Is(err, sprofile.ErrObjectRange) {
			t.Errorf("Count(%d) = %v, want ErrObjectRange", x, err)
		}
	}
	if err := p.Apply(sprofile.Tuple{Object: 0, Action: sprofile.Action(0)}); err == nil {
		t.Errorf("Apply with invalid action succeeded")
	}
	for _, k := range []int{0, -1, 9} {
		if _, err := p.KthLargest(k); !errors.Is(err, sprofile.ErrBadRank) {
			t.Errorf("KthLargest(%d) = %v, want ErrBadRank", k, err)
		}
	}
	if got := p.TopK(0); got != nil {
		t.Errorf("TopK(0) = %v, want nil", got)
	}
	if got := p.BottomK(-1); got != nil {
		t.Errorf("BottomK(-1) = %v, want nil", got)
	}
	if got := p.TopK(100); len(got) != 8 {
		t.Errorf("TopK(100) returned %d entries, want 8", len(got))
	}
	if got := p.BottomK(100); len(got) != 8 {
		t.Errorf("BottomK(100) returned %d entries, want 8", len(got))
	}
	if p.Cap() != 8 {
		t.Errorf("Cap() = %d, want 8", p.Cap())
	}

	empty, err := factory(0)
	if err != nil {
		t.Fatalf("factory(0): %v", err)
	}
	if _, _, err := empty.Mode(); !errors.Is(err, sprofile.ErrEmptyProfile) {
		t.Errorf("Mode on empty profile = %v, want ErrEmptyProfile", err)
	}
	if _, _, err := empty.Min(); !errors.Is(err, sprofile.ErrEmptyProfile) {
		t.Errorf("Min on empty profile = %v, want ErrEmptyProfile", err)
	}
	if _, err := empty.Median(); !errors.Is(err, sprofile.ErrEmptyProfile) {
		t.Errorf("Median on empty profile = %v, want ErrEmptyProfile", err)
	}
	if _, err := empty.Quantile(0.5); !errors.Is(err, sprofile.ErrEmptyProfile) {
		t.Errorf("Quantile on empty profile = %v, want ErrEmptyProfile", err)
	}
	if _, _, err := empty.Majority(); !errors.Is(err, sprofile.ErrEmptyProfile) {
		t.Errorf("Majority on empty profile = %v, want ErrEmptyProfile", err)
	}
}

// testArgValidation pins the unified argument contract every variant shares:
//
//   - Quantile: NaN is an error resolving to ErrOutOfRange; finite arguments
//     outside [0, 1] are clamped to the endpoints, never an error;
//   - KthLargest: k outside [1, m] is ErrBadRank, which resolves to
//     ErrOutOfRange;
//   - TopK/BottomK: k <= 0 yields nil, k > m truncates to m entries;
//   - object ids outside [0, m) resolve to ErrOutOfRange.
func testArgValidation(t *testing.T, factory Factory) {
	p, err := factory(9)
	if err != nil {
		t.Fatalf("factory(9): %v", err)
	}
	for x := 0; x < 9; x++ {
		for i := 0; i <= x; i++ {
			if err := p.Add(x); err != nil {
				t.Fatal(err)
			}
		}
	}

	if _, err := p.Quantile(math.NaN()); !errors.Is(err, sprofile.ErrOutOfRange) {
		t.Errorf("Quantile(NaN) = %v, want ErrOutOfRange", err)
	}
	lo, err := p.Quantile(0)
	if err != nil {
		t.Fatalf("Quantile(0): %v", err)
	}
	hi, err := p.Quantile(1)
	if err != nil {
		t.Fatalf("Quantile(1): %v", err)
	}
	for q, want := range map[float64]int64{
		-0.3:         lo.Frequency,
		1.7:          hi.Frequency,
		math.Inf(-1): lo.Frequency,
		math.Inf(1):  hi.Frequency,
	} {
		got, err := p.Quantile(q)
		if err != nil {
			t.Errorf("Quantile(%g) = %v, want clamped answer", q, err)
			continue
		}
		if got.Frequency != want {
			t.Errorf("Quantile(%g) frequency = %d, want clamp to %d", q, got.Frequency, want)
		}
	}

	for _, k := range []int{0, -1, 10, 1 << 20} {
		if _, err := p.KthLargest(k); !errors.Is(err, sprofile.ErrBadRank) || !errors.Is(err, sprofile.ErrOutOfRange) {
			t.Errorf("KthLargest(%d) = %v, want ErrBadRank (ErrOutOfRange)", k, err)
		}
	}
	if got := p.TopK(0); got != nil {
		t.Errorf("TopK(0) = %v, want nil", got)
	}
	if got := p.BottomK(-3); got != nil {
		t.Errorf("BottomK(-3) = %v, want nil", got)
	}
	if got := p.TopK(1 << 20); len(got) != 9 {
		t.Errorf("TopK(huge) returned %d entries, want 9", len(got))
	}
	if _, err := p.Count(9); !errors.Is(err, sprofile.ErrOutOfRange) {
		t.Errorf("Count(9) = %v, want ErrOutOfRange", err)
	}
}

// testQuery requires composite Query answers to be field-for-field identical
// to the individual getters, and pins the all-or-nothing validation
// semantics of malformed queries.
func testQuery(t *testing.T, factory Factory) {
	for _, m := range []int{1, 11, 40} {
		p, err := factory(m)
		if err != nil {
			t.Fatalf("factory(%d): %v", m, err)
		}
		rng := stream.NewRNG(uint64(m))
		for i := 0; i < 300; i++ {
			x := rng.Intn(m)
			action := sprofile.ActionAdd
			if rng.Bernoulli(0.3) {
				action = sprofile.ActionRemove
			}
			if err := p.Apply(sprofile.Tuple{Object: x, Action: action}); err != nil {
				t.Fatal(err)
			}
		}

		q := sprofile.Query{
			Count:        []int{0, m - 1},
			Mode:         true,
			Min:          true,
			TopK:         3,
			BottomK:      2,
			KthLargest:   []int{1, m},
			Median:       true,
			Quantiles:    []float64{0, 0.5, 0.65, 1, -0.3, 1.7},
			Majority:     true,
			Distribution: true,
			Summary:      true,
		}
		res, err := sprofile.QueryProfiler(p, q)
		if err != nil {
			t.Fatalf("m=%d Query: %v", m, err)
		}

		for i, x := range q.Count {
			want, _ := p.Count(x)
			if res.Counts[i].Object != x || res.Counts[i].Frequency != want {
				t.Errorf("m=%d Counts[%d] = %+v, want object %d frequency %d", m, i, res.Counts[i], x, want)
			}
		}
		mode, ties, _ := p.Mode()
		if res.Mode == nil || res.Mode.Frequency != mode.Frequency || res.Mode.Ties != ties {
			t.Errorf("m=%d Mode = %+v, want (%+v, %d)", m, res.Mode, mode, ties)
		}
		minE, minTies, _ := p.Min()
		if res.Min == nil || res.Min.Frequency != minE.Frequency || res.Min.Ties != minTies {
			t.Errorf("m=%d Min = %+v, want (%+v, %d)", m, res.Min, minE, minTies)
		}
		wantTop := p.TopK(3)
		if len(res.TopK) != len(wantTop) {
			t.Errorf("m=%d TopK length %d, want %d", m, len(res.TopK), len(wantTop))
		} else {
			for i := range wantTop {
				if res.TopK[i].Frequency != wantTop[i].Frequency {
					t.Errorf("m=%d TopK[%d] = %+v, want frequency %d", m, i, res.TopK[i], wantTop[i].Frequency)
				}
			}
		}
		wantBottom := p.BottomK(2)
		if len(res.BottomK) != len(wantBottom) {
			t.Errorf("m=%d BottomK length %d, want %d", m, len(res.BottomK), len(wantBottom))
		}
		for i, k := range q.KthLargest {
			want, _ := p.KthLargest(k)
			if res.KthLargest[i].Frequency != want.Frequency {
				t.Errorf("m=%d KthLargest[%d]=k%d = %+v, want frequency %d", m, i, k, res.KthLargest[i], want.Frequency)
			}
		}
		wantMed, _ := p.Median()
		if res.Median == nil || res.Median.Frequency != wantMed.Frequency {
			t.Errorf("m=%d Median = %+v, want frequency %d", m, res.Median, wantMed.Frequency)
		}
		for i, qq := range q.Quantiles {
			want, _ := p.Quantile(qq)
			if res.Quantiles[i].Q != qq || res.Quantiles[i].Frequency != want.Frequency {
				t.Errorf("m=%d Quantiles[%d]=%g = %+v, want frequency %d", m, i, qq, res.Quantiles[i], want.Frequency)
			}
		}
		wantMaj, wantOK, _ := p.Majority()
		if res.Majority == nil || res.Majority.Majority != wantOK || (wantOK && res.Majority.Frequency != wantMaj.Frequency) {
			t.Errorf("m=%d Majority = %+v, want (%+v, %v)", m, res.Majority, wantMaj, wantOK)
		}
		wantDist := p.Distribution()
		if len(res.Distribution) != len(wantDist) {
			t.Errorf("m=%d Distribution length %d, want %d", m, len(res.Distribution), len(wantDist))
		} else {
			for i := range wantDist {
				if res.Distribution[i] != wantDist[i] {
					t.Errorf("m=%d Distribution[%d] = %+v, want %+v", m, i, res.Distribution[i], wantDist[i])
				}
			}
		}
		if res.Summary == nil || *res.Summary != p.Summarize() {
			t.Errorf("m=%d Summary = %+v, want %+v", m, res.Summary, p.Summarize())
		}

		// Unrequested statistics stay nil.
		empty, err := sprofile.QueryProfiler(p, sprofile.Query{})
		if err != nil {
			t.Fatalf("empty query: %v", err)
		}
		if empty.Mode != nil || empty.TopK != nil || empty.Summary != nil || empty.Counts != nil {
			t.Errorf("m=%d empty query filled fields: %+v", m, empty)
		}

		// Malformed selections fail whole with ErrInvalidQuery plus the
		// offending argument's class; nothing is evaluated.
		for _, bad := range []sprofile.Query{
			{TopK: -1},
			{BottomK: -2},
			{KthLargest: []int{0}},
			{KthLargest: []int{m + 1}},
			{Quantiles: []float64{math.NaN()}},
			{Count: []int{m}},
			{Count: []int{-1}},
		} {
			if _, err := sprofile.QueryProfiler(p, bad); !errors.Is(err, sprofile.ErrInvalidQuery) || !errors.Is(err, sprofile.ErrOutOfRange) {
				t.Errorf("m=%d Query(%+v) = %v, want ErrInvalidQuery wrapping ErrOutOfRange", m, bad, err)
			}
		}
	}

	// Statistics that need at least one slot fail with ErrEmptyProfile on an
	// empty profile, exactly like the getters.
	empty, err := factory(0)
	if err != nil {
		t.Fatalf("factory(0): %v", err)
	}
	for _, q := range []sprofile.Query{{Mode: true}, {Min: true}, {Median: true}, {Quantiles: []float64{0.5}}, {Majority: true}} {
		if _, err := sprofile.QueryProfiler(empty, q); !errors.Is(err, sprofile.ErrEmptyProfile) {
			t.Errorf("empty Query(%+v) = %v, want ErrEmptyProfile", q, err)
		}
	}
	if res, err := sprofile.QueryProfiler(empty, sprofile.Query{Summary: true, Distribution: true, TopK: 5}); err != nil {
		t.Errorf("empty Query(summary) = %v, want nil", err)
	} else if res.Summary == nil || len(res.TopK) != 0 {
		t.Errorf("empty Query(summary) = %+v", res)
	}
}

func testStrictMode(t *testing.T, factory Factory) {
	p, err := factory(4, sprofile.WithStrictNonNegative())
	if err != nil {
		t.Fatalf("factory(4, strict): %v", err)
	}
	if err := p.Remove(1); !errors.Is(err, sprofile.ErrNegativeFrequency) {
		t.Fatalf("strict Remove at zero = %v, want ErrNegativeFrequency", err)
	}
	if err := p.Add(1); err != nil {
		t.Fatal(err)
	}
	if err := p.Remove(1); err != nil {
		t.Fatalf("strict Remove at one = %v, want nil", err)
	}
	if got := p.Total(); got != 0 {
		t.Fatalf("Total after add+remove = %d, want 0", got)
	}
}

// testMatchesReference replays deterministic mixed streams into the
// implementation and into a plain reference Profile and requires every query
// to agree.
func testMatchesReference(t *testing.T, factory Factory) {
	// 11 and 40 slots exercise both tiny profiles (many ties) and quantile
	// rank rounding (q*(m-1) landing on .5 boundaries and above).
	for _, m := range []int{1, 11, 40} {
		for seed := uint64(1); seed <= 3; seed++ {
			p, err := factory(m)
			if err != nil {
				t.Fatalf("factory(%d): %v", m, err)
			}
			ref := sprofile.MustNew(m)
			rng := stream.NewRNG(seed)
			n := 400 + int(seed)*137
			for i := 0; i < n; i++ {
				x := rng.Intn(m)
				action := sprofile.ActionAdd
				if rng.Bernoulli(0.35) {
					action = sprofile.ActionRemove
				}
				tp := sprofile.Tuple{Object: x, Action: action}
				if err := p.Apply(tp); err != nil {
					t.Fatalf("m=%d seed=%d apply %d: %v", m, seed, i, err)
				}
				if err := ref.Apply(tp); err != nil {
					t.Fatal(err)
				}
			}
			compareWithReference(t, p, ref)
		}
	}
}

// compareWithReference checks every Reader query of p against the reference
// profile. Representatives may differ between implementations (ties are
// broken arbitrarily), so object identity is validated through the reference
// profile's Count rather than compared directly.
func compareWithReference(t *testing.T, p sprofile.Profiler, ref *sprofile.Profile) {
	t.Helper()
	m := ref.Cap()
	if got, want := p.Cap(), ref.Cap(); got != want {
		t.Fatalf("Cap: got %d, want %d", got, want)
	}
	if got, want := p.Total(), ref.Total(); got != want {
		t.Fatalf("Total: got %d, want %d", got, want)
	}
	for x := 0; x < m; x++ {
		got, err := p.Count(x)
		if err != nil {
			t.Fatalf("Count(%d): %v", x, err)
		}
		want, _ := ref.Count(x)
		if got != want {
			t.Fatalf("Count(%d): got %d, want %d", x, got, want)
		}
	}

	gotMode, gotTies, err := p.Mode()
	if err != nil {
		t.Fatalf("Mode: %v", err)
	}
	wantMode, wantTies, _ := ref.Mode()
	if gotMode.Frequency != wantMode.Frequency || gotTies != wantTies {
		t.Fatalf("Mode: got (%d, %d ties), want (%d, %d ties)",
			gotMode.Frequency, gotTies, wantMode.Frequency, wantTies)
	}
	if f, _ := ref.Count(gotMode.Object); f != gotMode.Frequency {
		t.Fatalf("Mode representative %d does not hold frequency %d", gotMode.Object, gotMode.Frequency)
	}

	gotMin, gotMinTies, err := p.Min()
	if err != nil {
		t.Fatalf("Min: %v", err)
	}
	wantMin, wantMinTies, _ := ref.Min()
	if gotMin.Frequency != wantMin.Frequency || gotMinTies != wantMinTies {
		t.Fatalf("Min: got (%d, %d ties), want (%d, %d ties)",
			gotMin.Frequency, gotMinTies, wantMin.Frequency, wantMinTies)
	}

	for k := 1; k <= m; k++ {
		got, err := p.KthLargest(k)
		if err != nil {
			t.Fatalf("KthLargest(%d): %v", k, err)
		}
		want, _ := ref.KthLargest(k)
		if got.Frequency != want.Frequency {
			t.Fatalf("KthLargest(%d): got %d, want %d", k, got.Frequency, want.Frequency)
		}
		if f, _ := ref.Count(got.Object); f != got.Frequency {
			t.Fatalf("KthLargest(%d) representative %d does not hold frequency %d", k, got.Object, got.Frequency)
		}
	}

	gotMed, err := p.Median()
	if err != nil {
		t.Fatalf("Median: %v", err)
	}
	wantMed, _ := ref.Median()
	if gotMed.Frequency != wantMed.Frequency {
		t.Fatalf("Median: got %d, want %d", gotMed.Frequency, wantMed.Frequency)
	}

	// 0.7 and 0.65 land q*(m-1) on fractional ranks; truncating instead of
	// taking the nearest rank fails here.
	for _, q := range []float64{0, 0.25, 0.5, 0.65, 0.7, 0.75, 0.99, 1, -0.3, 1.7} {
		got, err := p.Quantile(q)
		if err != nil {
			t.Fatalf("Quantile(%g): %v", q, err)
		}
		want, _ := ref.Quantile(q)
		if got.Frequency != want.Frequency {
			t.Fatalf("Quantile(%g): got %d, want %d", q, got.Frequency, want.Frequency)
		}
	}

	gotMaj, gotOK, err := p.Majority()
	if err != nil {
		t.Fatalf("Majority: %v", err)
	}
	wantMaj, wantOK, _ := ref.Majority()
	if gotOK != wantOK || (gotOK && gotMaj.Frequency != wantMaj.Frequency) {
		t.Fatalf("Majority: got (%+v, %v), want (%+v, %v)", gotMaj, gotOK, wantMaj, wantOK)
	}

	gotDist, wantDist := p.Distribution(), ref.Distribution()
	if len(gotDist) != len(wantDist) {
		t.Fatalf("Distribution length: got %d, want %d", len(gotDist), len(wantDist))
	}
	for i := range wantDist {
		if gotDist[i] != wantDist[i] {
			t.Fatalf("Distribution[%d]: got %+v, want %+v", i, gotDist[i], wantDist[i])
		}
	}

	for _, k := range []int{1, 3, m} {
		gotTop, wantTop := p.TopK(k), ref.TopK(k)
		if len(gotTop) != len(wantTop) {
			t.Fatalf("TopK(%d) length: got %d, want %d", k, len(gotTop), len(wantTop))
		}
		for i := range wantTop {
			if gotTop[i].Frequency != wantTop[i].Frequency {
				t.Fatalf("TopK(%d)[%d]: got %d, want %d", k, i, gotTop[i].Frequency, wantTop[i].Frequency)
			}
		}
		gotBottom, wantBottom := p.BottomK(k), ref.BottomK(k)
		if len(gotBottom) != len(wantBottom) {
			t.Fatalf("BottomK(%d) length: got %d, want %d", k, len(gotBottom), len(wantBottom))
		}
		for i := range wantBottom {
			if gotBottom[i].Frequency != wantBottom[i].Frequency {
				t.Fatalf("BottomK(%d)[%d]: got %d, want %d", k, i, gotBottom[i].Frequency, wantBottom[i].Frequency)
			}
		}
	}

	gotSum, wantSum := p.Summarize(), ref.Summarize()
	if gotSum != wantSum {
		t.Fatalf("Summarize: got %+v, want %+v", gotSum, wantSum)
	}
}

func testApplyAll(t *testing.T, factory Factory) {
	p, err := factory(4)
	if err != nil {
		t.Fatalf("factory(4): %v", err)
	}
	ok := []sprofile.Tuple{
		{Object: 0, Action: sprofile.ActionAdd},
		{Object: 3, Action: sprofile.ActionAdd},
		{Object: 0, Action: sprofile.ActionAdd},
		{Object: 3, Action: sprofile.ActionRemove},
	}
	n, err := p.ApplyAll(ok)
	if err != nil || n != len(ok) {
		t.Fatalf("ApplyAll = (%d, %v), want (%d, nil)", n, err, len(ok))
	}
	if got := p.Total(); got != 2 {
		t.Fatalf("Total after batch = %d, want 2", got)
	}

	bad := []sprofile.Tuple{
		{Object: 1, Action: sprofile.ActionAdd},
		{Object: 99, Action: sprofile.ActionAdd}, // out of range
		{Object: 2, Action: sprofile.ActionAdd},
	}
	n, err = p.ApplyAll(bad)
	if !errors.Is(err, sprofile.ErrObjectRange) {
		t.Fatalf("ApplyAll with bad tuple: err = %v, want ErrObjectRange", err)
	}
	if n != 1 {
		t.Fatalf("ApplyAll with bad tuple applied %d, want 1", n)
	}
	if got := p.Total(); got != 3 {
		t.Fatalf("Total after failed batch = %d, want 3 (prefix applied)", got)
	}
}
