package sprofile

import (
	"fmt"
	"runtime"
	"sync/atomic"

	"sprofile/internal/core"
)

// AsyncKeyed wraps a KeyedConcurrent with the async ingest plane: keyed
// events are enqueued to per-producer SPSC mailboxes, routed by the key's
// mapper stripe, and applied by one goroutine per stripe through
// KeyedConcurrent.ApplyBatch — so the batch path's coalescing, single
// stripe-lock resolution, one-WAL-record-per-batch journaling and
// group-commit fsync all apply per mailbox drain. Reads answer from
// epoch-published immutable snapshots of the dense profile, translated back
// to keys through the live id mapper.
//
// The bounded-staleness contract and Flush/Close semantics are those of
// Async. Two keyed specifics:
//
//   - Stream-dependent errors — removing an unknown key, ErrKeyedFull when
//     no id can be recycled, strict-mode violations — surface on the next
//     Flush, not at the enqueueing call. Argument errors (invalid action,
//     a key the write-ahead log cannot record) stay synchronous.
//   - Key translation uses the live mapper, so in rare cases a key read
//     from an epoch snapshot may have been recycled since that epoch was
//     published — the same point-in-time caveat KeyedConcurrent documents
//     for its global queries.
//
// Construct with NewAsyncKeyed over a BuildKeyed profile, or in one step
// with BuildKeyedAsync.
type AsyncKeyed[K comparable] struct {
	k *KeyedConcurrent[K]
	// sharded is the dense profile; its shard geometry matches the mapper
	// stripes, so applier i owns stripe i's home shard.
	sharded *Sharded

	plane *asyncPlane[KeyedTuple[K]]
	// snaps holds the newest per-shard snapshot; guarded by plane.publishMu.
	snaps []*core.Profile
	view  atomic.Pointer[queryableProfiler]

	pool chan *AsyncKeyedProducer[K]
}

// NewAsyncKeyed wraps k — a BuildKeyed profile whose dense half is sharded
// with the mapper's stripe geometry (the default; Synchronized profiles are
// rejected) — with the async ingest plane described on AsyncKeyed. The
// wrapped profile must no longer be updated directly.
func NewAsyncKeyed[K comparable](k *KeyedConcurrent[K], policy AsyncPolicy) (*AsyncKeyed[K], error) {
	if k == nil {
		return nil, fmt.Errorf("%w: nil keyed profiler", ErrBuildConfig)
	}
	sharded, ok := k.profile.(*Sharded)
	if !ok {
		return nil, fmt.Errorf("%w: async keyed ingest needs a sharded dense profile (got %T); build without Synchronized", ErrBuildConfig, k.profile)
	}
	if sharded.Shards() != k.ids.NumStripes() {
		return nil, fmt.Errorf("%w: shard/stripe geometry mismatch (%d shards, %d stripes)", ErrBuildConfig, sharded.Shards(), k.ids.NumStripes())
	}
	ak := &AsyncKeyed[K]{k: k, sharded: sharded}
	// crossShard: a stripe whose dense-id range is exhausted borrows ids
	// from a neighbouring shard's range, so an apply on stripe i can dirty
	// shard j — every applier's version advances on every batch and Flush
	// republishes all shards.
	ak.plane = newAsyncPlane[KeyedTuple[K]](sharded.Shards(), policy, ak.applyBatch, ak.publishShard, true)
	ak.snaps = make([]*core.Profile, sharded.Shards())
	ak.plane.publishMu.Lock()
	for i := 0; i < sharded.Shards(); i++ {
		ak.publishShard(i)
	}
	ak.plane.publishMu.Unlock()
	ak.pool = make(chan *AsyncKeyedProducer[K], 4*runtime.GOMAXPROCS(0))
	ak.plane.start()
	return ak, nil
}

// BuildKeyedAsync assembles a concurrent keyed profile with BuildKeyed and
// wraps it with the async ingest plane in one step:
//
//	ak, err := sprofile.BuildKeyedAsync[string](m, sprofile.AsyncPolicy{},
//	        sprofile.WithSharding(8), sprofile.WithWAL("events.wal"))
func BuildKeyedAsync[K comparable](m int, policy AsyncPolicy, opts ...BuildOption) (*AsyncKeyed[K], error) {
	k, err := BuildKeyed[K](m, opts...)
	if err != nil {
		return nil, err
	}
	ak, err := NewAsyncKeyed(k, policy)
	if err != nil {
		k.Close()
		return nil, err
	}
	return ak, nil
}

// applyBatch ingests one drained, single-stripe batch through the keyed
// batch path (coalescing, one stripe-lock acquisition, one WAL record, one
// group-commit fsync).
func (ak *AsyncKeyed[K]) applyBatch(_ int, items []KeyedTuple[K]) error {
	_, err := ak.k.ApplyBatch(items)
	return err
}

// publishShard installs a new epoch view containing shard's fresh snapshot;
// called under plane.publishMu.
func (ak *AsyncKeyed[K]) publishShard(shard int) {
	ak.snaps[shard] = ak.sharded.cloneShard(shard)
	var v queryableProfiler = newShardedView(ak.sharded, ak.snaps)
	ak.view.Store(&v)
}

// curView returns the current epoch's dense read view.
func (ak *AsyncKeyed[K]) curView() queryableProfiler {
	return *ak.view.Load()
}

// queries builds the key-translating read facade over the current epoch.
// The resolver is the live mapper: snapshots capture frequencies, the
// id↔key assignment stays authoritative in the mapper.
func (ak *AsyncKeyed[K]) queries() keyedQueries[K] {
	return keyedQueries[K]{profile: ak.curView(), resolver: ak.k.ids}
}

// checkEvent validates what can be validated at enqueue time, keeping
// argument errors synchronous like the direct keyed paths.
func (ak *AsyncKeyed[K]) checkEvent(key K, action Action) error {
	if !action.Valid() {
		return errInvalidAction(action)
	}
	if ak.k.store != nil {
		// BuildKeyed guarantees K = string when a WAL is attached.
		if err := checkJournalableKey(any(key).(string)); err != nil {
			return err
		}
	}
	return nil
}

// Producer returns a dedicated keyed producer handle: one lock-free mailbox
// per stripe, single-goroutine, ordered per producer. Close it when the
// producer retires.
func (ak *AsyncKeyed[K]) Producer() (*AsyncKeyedProducer[K], error) {
	p, err := ak.plane.newProducer()
	if err != nil {
		return nil, err
	}
	return &AsyncKeyedProducer[K]{ak: ak, p: p}, nil
}

// withProducer rents a pooled handle for one call.
func (ak *AsyncKeyed[K]) withProducer(f func(*AsyncKeyedProducer[K]) error) error {
	var p *AsyncKeyedProducer[K]
	select {
	case p = <-ak.pool:
	default:
		var err error
		p, err = ak.Producer()
		if err != nil {
			return err
		}
	}
	err := f(p)
	select {
	case ak.pool <- p:
	default:
		p.Close()
	}
	return err
}

// Add enqueues an "add" event for key; id assignment and recycling happen
// on the applier. ErrKeyedFull (no recyclable id) surfaces on the next
// Flush.
func (ak *AsyncKeyed[K]) Add(key K) error {
	return ak.withProducer(func(p *AsyncKeyedProducer[K]) error { return p.Add(key) })
}

// Remove enqueues a "remove" event for key; an unknown key surfaces as
// ErrUnknownKey on the next Flush.
func (ak *AsyncKeyed[K]) Remove(key K) error {
	return ak.withProducer(func(p *AsyncKeyedProducer[K]) error { return p.Remove(key) })
}

// Apply enqueues one (key, action) event.
func (ak *AsyncKeyed[K]) Apply(key K, action Action) error {
	return ak.withProducer(func(p *AsyncKeyedProducer[K]) error { return p.Apply(key, action) })
}

// ApplyBatch enqueues a batch of keyed events, stopping at the first
// invalid one; it returns how many were enqueued.
func (ak *AsyncKeyed[K]) ApplyBatch(events []KeyedTuple[K]) (int, error) {
	var n int
	err := ak.withProducer(func(p *AsyncKeyedProducer[K]) error {
		var err error
		n, err = p.ApplyBatch(events)
		return err
	})
	return n, err
}

// Track assigns key a dense id without counting anything. It acts on the
// live mapper immediately (Tracked reflects it at once); the id's zero
// frequency reaches epoch snapshots on the next publish.
func (ak *AsyncKeyed[K]) Track(key K) error { return ak.k.Track(key) }

// Flush drains every producer mailbox, waits until every drained event is
// applied, republishes all shard snapshots, and returns the first deferred
// apply error since the last Flush — the read-your-write escape hatch.
func (ak *AsyncKeyed[K]) Flush() error { return ak.plane.flush() }

// Close drains and stops the ingest plane, then closes the wrapped keyed
// profile (flushing its WAL and stopping its checkpointer).
func (ak *AsyncKeyed[K]) Close() error {
	err := ak.plane.close()
	if cerr := ak.k.Close(); err == nil {
		err = cerr
	}
	return err
}

// Sync flushes the wrapped profile's write-ahead log. It does NOT drain the
// mailboxes; call Flush first for an inclusive cut.
func (ak *AsyncKeyed[K]) Sync() error { return ak.k.Sync() }

// Checkpoint forwards to the wrapped profile's Checkpoint: the appliers
// mutate state under the stripe locks Checkpoint quiesces, so the snapshot
// is an exact cut of the applied stream. Call Flush first when the
// checkpoint must also cover everything enqueued so far.
func (ak *AsyncKeyed[K]) Checkpoint() error { return ak.k.Checkpoint() }

// Inner returns the wrapped keyed profile. Updating it directly bypasses
// the mailboxes and must be avoided.
func (ak *AsyncKeyed[K]) Inner() *KeyedConcurrent[K] { return ak.k }

// Stats returns the plane's observability snapshot.
func (ak *AsyncKeyed[K]) Stats() AsyncStats { return ak.plane.stats() }

// Epoch returns the current publish epoch (total snapshot installs).
func (ak *AsyncKeyed[K]) Epoch() uint64 { return ak.plane.epoch.Load() }

// The read surface: statistics answer from the current epoch snapshot,
// translated to keys through the live mapper.

// Count returns the frequency of key in the current epoch (zero for
// unknown keys).
func (ak *AsyncKeyed[K]) Count(key K) (int64, error) {
	id, err := ak.k.ids.DenseID(key)
	if err != nil {
		return 0, nil
	}
	return ak.curView().Count(id)
}

// Mode returns a maximum-frequency key of the current epoch.
func (ak *AsyncKeyed[K]) Mode() (KeyedEntry[K], int, error) {
	q := ak.queries()
	return q.Mode()
}

// Min returns a minimum-frequency key of the current epoch.
func (ak *AsyncKeyed[K]) Min() (KeyedEntry[K], int, error) {
	q := ak.queries()
	return q.Min()
}

// TopK returns the k most frequent entries of the current epoch.
func (ak *AsyncKeyed[K]) TopK(k int) []KeyedEntry[K] {
	q := ak.queries()
	return q.TopK(k)
}

// BottomK returns the k least frequent entries of the current epoch.
func (ak *AsyncKeyed[K]) BottomK(k int) []KeyedEntry[K] {
	q := ak.queries()
	return q.BottomK(k)
}

// KthLargest returns the entry holding the k-th largest frequency.
func (ak *AsyncKeyed[K]) KthLargest(k int) (KeyedEntry[K], error) {
	q := ak.queries()
	return q.KthLargest(k)
}

// Median returns the lower-median entry of the current epoch.
func (ak *AsyncKeyed[K]) Median() (KeyedEntry[K], error) {
	q := ak.queries()
	return q.Median()
}

// Quantile returns the entry at quantile quant in [0, 1].
func (ak *AsyncKeyed[K]) Quantile(quant float64) (KeyedEntry[K], error) {
	q := ak.queries()
	return q.Quantile(quant)
}

// Majority returns the strict-majority key of the current epoch, if any.
func (ak *AsyncKeyed[K]) Majority() (KeyedEntry[K], bool, error) {
	q := ak.queries()
	return q.Majority()
}

// Distribution returns the frequency histogram of the current epoch.
func (ak *AsyncKeyed[K]) Distribution() []FreqCount {
	return ak.curView().Distribution()
}

// Summarize returns aggregate statistics of the current epoch.
func (ak *AsyncKeyed[K]) Summarize() Summary { return ak.curView().Summarize() }

// Cap returns the maximum number of concurrently tracked keys.
func (ak *AsyncKeyed[K]) Cap() int { return ak.k.Cap() }

// Tracked returns the number of keys currently holding a dense id (live
// mapper state, not the epoch snapshot).
func (ak *AsyncKeyed[K]) Tracked() int { return ak.k.Tracked() }

// Total returns the sum of all frequencies in the current epoch.
func (ak *AsyncKeyed[K]) Total() int64 { return ak.curView().Total() }

// KeyOf resolves a dense id back to its key, when one is assigned.
func (ak *AsyncKeyed[K]) KeyOf(id int) (K, bool) { return ak.k.ids.Key(id) }

// QueryKeys answers a composite query atomically against ONE epoch
// snapshot; per-key counts resolve ids through the live mapper and read
// the same snapshot, so all panels are one cut.
func (ak *AsyncKeyed[K]) QueryKeys(kq KeyedQuery[K]) (KeyedQueryResult[K], error) {
	q := ak.queries()
	dres, err := q.queryDense(kq.dense())
	if err != nil {
		return KeyedQueryResult[K]{}, err
	}
	out := q.translateQueryResult(dres)
	if len(kq.Count) > 0 {
		out.Counts = make([]KeyedEntry[K], len(kq.Count))
		for i, key := range kq.Count {
			var f int64
			if id, err := ak.k.ids.DenseID(key); err == nil {
				if f, err = q.profile.Count(id); err != nil {
					return KeyedQueryResult[K]{}, err
				}
			}
			out.Counts[i] = KeyedEntry[K]{Key: key, Frequency: f}
		}
	}
	return out, nil
}

// Profile exposes the current epoch's dense snapshot as a read-only view.
func (ak *AsyncKeyed[K]) Profile() Profiler { return NewReadOnly(ak.curView()) }

// AsyncKeyedProducer is a keyed producer handle: lock-free enqueues routed
// by the key's mapper stripe, strictly ordered per handle. Handles are
// single-goroutine.
type AsyncKeyedProducer[K comparable] struct {
	ak *AsyncKeyed[K]
	p  *asyncProducer[KeyedTuple[K]]
}

// Add enqueues an "add" event for key.
func (p *AsyncKeyedProducer[K]) Add(key K) error {
	return p.Apply(key, ActionAdd)
}

// Remove enqueues a "remove" event for key.
func (p *AsyncKeyedProducer[K]) Remove(key K) error {
	return p.Apply(key, ActionRemove)
}

// Apply enqueues one (key, action) event.
func (p *AsyncKeyedProducer[K]) Apply(key K, action Action) error {
	if err := p.ak.checkEvent(key, action); err != nil {
		return err
	}
	return p.p.push(p.ak.k.ids.StripeOf(key), KeyedTuple[K]{Key: key, Action: action})
}

// ApplyBatch enqueues events in order, stopping at the first invalid one
// (or the first backpressure rejection); it returns how many were
// enqueued.
func (p *AsyncKeyedProducer[K]) ApplyBatch(events []KeyedTuple[K]) (int, error) {
	for i, e := range events {
		if err := p.Apply(e.Key, e.Action); err != nil {
			return i, err
		}
	}
	return len(events), nil
}

// Close retires the handle; its mailboxes are drained, then reclaimed.
func (p *AsyncKeyedProducer[K]) Close() error {
	p.p.close()
	return nil
}
