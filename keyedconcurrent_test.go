package sprofile_test

import (
	"errors"
	"fmt"
	"path/filepath"
	"sync"
	"testing"
	"time"

	"sprofile"
	"sprofile/internal/wal"
)

func TestBuildKeyedBasics(t *testing.T) {
	k, err := sprofile.BuildKeyed[string](100, sprofile.WithSharding(4))
	if err != nil {
		t.Fatal(err)
	}
	if k.Cap() != 100 || k.Tracked() != 0 || k.Total() != 0 {
		t.Fatalf("fresh profile: cap=%d tracked=%d total=%d", k.Cap(), k.Tracked(), k.Total())
	}
	for i := 0; i < 3; i++ {
		if err := k.Add("alice"); err != nil {
			t.Fatal(err)
		}
	}
	if err := k.Add("bob"); err != nil {
		t.Fatal(err)
	}
	if err := k.Remove("bob"); err != nil {
		t.Fatal(err)
	}
	if c, _ := k.Count("alice"); c != 3 {
		t.Fatalf("Count(alice) = %d, want 3", c)
	}
	if c, _ := k.Count("ghost"); c != 0 {
		t.Fatalf("Count(ghost) = %d, want 0", c)
	}
	mode, ties, err := k.Mode()
	if err != nil || mode.Key != "alice" || mode.Frequency != 3 || ties != 1 {
		t.Fatalf("Mode = (%+v, %d, %v)", mode, ties, err)
	}
	if e, err := k.KthLargest(1); err != nil || e.Frequency != 3 {
		t.Fatalf("KthLargest(1) = (%+v, %v)", e, err)
	}
	top := k.TopK(1)
	if len(top) != 1 || top[0].Key != "alice" {
		t.Fatalf("TopK = %+v", top)
	}
	bottom := k.BottomK(1)
	if len(bottom) != 1 || bottom[0].Frequency != 0 {
		t.Fatalf("BottomK = %+v", bottom)
	}
	if _, _, err := k.Min(); err != nil {
		t.Fatalf("Min: %v", err)
	}
	if _, _, err := k.Majority(); err != nil {
		t.Fatalf("Majority: %v", err)
	}
	if k.Tracked() != 2 || k.Total() != 3 {
		t.Fatalf("tracked=%d total=%d", k.Tracked(), k.Total())
	}
	if err := k.Remove("never-added"); !errors.Is(err, sprofile.ErrUnknownKey) {
		t.Fatalf("Remove of unknown key = %v, want ErrUnknownKey", err)
	}
	if err := k.Apply("alice", sprofile.Action(99)); err == nil {
		t.Fatalf("invalid action accepted")
	}
}

func TestBuildKeyedRecycling(t *testing.T) {
	// One shard makes eviction deterministic: the single stripe holds every
	// key, so per-stripe recycling behaves exactly like Keyed's global one.
	k, err := sprofile.BuildKeyed[string](2, sprofile.WithSharding(1))
	if err != nil {
		t.Fatal(err)
	}
	mustAdd := func(key string) {
		t.Helper()
		if err := k.Add(key); err != nil {
			t.Fatal(err)
		}
	}
	mustAdd("a")
	mustAdd("b")
	// Full, no idle key: the third key cannot enter.
	if err := k.Add("c"); !errors.Is(err, sprofile.ErrKeyedFull) {
		t.Fatalf("Add at capacity = %v, want ErrKeyedFull", err)
	}
	// Dropping b to zero makes its id recyclable; c then takes it over.
	if err := k.Remove("b"); err != nil {
		t.Fatal(err)
	}
	mustAdd("c")
	if k.Tracked() != 2 {
		t.Fatalf("Tracked after recycle = %d, want 2", k.Tracked())
	}
	if c, _ := k.Count("b"); c != 0 {
		t.Fatalf("Count(b) after eviction = %d, want 0", c)
	}
	if c, _ := k.Count("c"); c != 1 {
		t.Fatalf("Count(c) = %d, want 1", c)
	}
	// b lost its id; adding it back recycles again only if something is idle.
	if err := k.Add("b"); !errors.Is(err, sprofile.ErrKeyedFull) {
		t.Fatalf("Add(b) with no idle ids = %v, want ErrKeyedFull", err)
	}
	// A re-add of an idle key must leave the idle set, not be evicted later.
	if err := k.Remove("a"); err != nil {
		t.Fatal(err)
	}
	mustAdd("a")
	if err := k.Add("d"); !errors.Is(err, sprofile.ErrKeyedFull) {
		t.Fatalf("Add(d) after a's re-add = %v, want ErrKeyedFull (a is busy again)", err)
	}
}

func TestBuildKeyedTrack(t *testing.T) {
	k := sprofile.MustBuildKeyed[string](4, sprofile.WithSharding(1))
	if err := k.Track("idle"); err != nil {
		t.Fatal(err)
	}
	if k.Tracked() != 1 || k.Total() != 0 {
		t.Fatalf("tracked=%d total=%d after Track", k.Tracked(), k.Total())
	}
	// A tracked key is an eviction candidate: fill the rest, then overflow.
	for _, key := range []string{"a", "b", "c"} {
		if err := k.Add(key); err != nil {
			t.Fatal(err)
		}
	}
	if err := k.Add("d"); err != nil {
		t.Fatalf("Add(d) should have evicted the idle tracked key: %v", err)
	}
	if k.Tracked() != 4 {
		t.Fatalf("Tracked = %d, want 4", k.Tracked())
	}
	if c, _ := k.Count("idle"); c != 0 {
		t.Fatalf("Count(idle) = %d", c)
	}
}

func TestBuildKeyedWithoutRecycling(t *testing.T) {
	k, err := sprofile.BuildKeyed[string](2, sprofile.WithSharding(1), sprofile.WithoutKeyRecycling())
	if err != nil {
		t.Fatal(err)
	}
	if err := k.Add("a"); err != nil {
		t.Fatal(err)
	}
	// Negative frequencies are allowed without recycling.
	if err := k.Remove("a"); err != nil {
		t.Fatal(err)
	}
	if err := k.Remove("a"); err != nil {
		t.Fatalf("Remove below zero without recycling = %v, want nil", err)
	}
	if c, _ := k.Count("a"); c != -1 {
		t.Fatalf("Count(a) = %d, want -1", c)
	}
	// No recycling: an idle id is never reclaimed.
	if err := k.Add("b"); err != nil {
		t.Fatal(err)
	}
	if err := k.Remove("b"); err != nil {
		t.Fatal(err)
	}
	if err := k.Add("c"); !errors.Is(err, sprofile.ErrKeyedFull) {
		t.Fatalf("Add over capacity without recycling = %v, want ErrKeyedFull", err)
	}
}

func TestBuildKeyedConfigErrors(t *testing.T) {
	if _, err := sprofile.BuildKeyed[string](8, sprofile.Windowed(4)); !errors.Is(err, sprofile.ErrBuildConfig) {
		t.Fatalf("BuildKeyed with Windowed = %v, want ErrBuildConfig", err)
	}
	if _, err := sprofile.BuildKeyed[string](8, sprofile.WithSharding(0)); !errors.Is(err, sprofile.ErrBuildConfig) {
		t.Fatalf("BuildKeyed with zero shards = %v, want ErrBuildConfig", err)
	}
	if _, err := sprofile.BuildKeyed[int](8, sprofile.WithWAL("x.wal")); !errors.Is(err, sprofile.ErrBuildConfig) {
		t.Fatalf("BuildKeyed[int] with WAL = %v, want ErrBuildConfig", err)
	}
	if _, err := sprofile.Build(8, sprofile.WithoutKeyRecycling()); !errors.Is(err, sprofile.ErrBuildConfig) {
		t.Fatalf("Build with WithoutKeyRecycling = %v, want ErrBuildConfig", err)
	}
}

func TestBuildKeyedWALRoundTrip(t *testing.T) {
	path := filepath.Join(t.TempDir(), "keyed.wal")

	k1, err := sprofile.BuildKeyed[string](16, sprofile.WithSharding(4), sprofile.WithWAL(path))
	if err != nil {
		t.Fatal(err)
	}
	if k1.Replayed() != 0 {
		t.Fatalf("fresh WAL replayed %d records", k1.Replayed())
	}
	for i := 0; i < 3; i++ {
		if err := k1.Add("x"); err != nil {
			t.Fatal(err)
		}
	}
	if err := k1.Add("y"); err != nil {
		t.Fatal(err)
	}
	if err := k1.Remove("y"); err != nil {
		t.Fatal(err)
	}
	if err := k1.Close(); err != nil {
		t.Fatal(err)
	}

	k2, err := sprofile.BuildKeyed[string](16, sprofile.WithSharding(4), sprofile.WithWAL(path))
	if err != nil {
		t.Fatal(err)
	}
	defer k2.Close()
	if k2.Replayed() != 5 {
		t.Fatalf("replayed %d records, want 5", k2.Replayed())
	}
	if c, _ := k2.Count("x"); c != 3 {
		t.Fatalf("Count(x) after replay = %d, want 3", c)
	}
	if c, _ := k2.Count("y"); c != 0 {
		t.Fatalf("Count(y) after replay = %d, want 0", c)
	}
}

// TestBuildKeyedWALReplayWithEviction pins down replay determinism: stripe
// assignment is seeded per process, so a log whose writing run recycled ids
// at capacity cannot rely on the same per-stripe eviction decisions when it
// is replayed. Replay must fall back to evicting an idle key from any
// stripe, so a server always restarts from a log it wrote itself. The WAL is
// written directly and the build repeated, covering many hash layouts.
func TestBuildKeyedWALReplayWithEviction(t *testing.T) {
	dir := t.TempDir()
	records := []wal.Record{
		{Key: "a", Action: sprofile.ActionAdd},
		{Key: "b", Action: sprofile.ActionAdd},
		{Key: "a", Action: sprofile.ActionRemove},
		// At capacity 2 this add must evict the idle "a", wherever "c" and
		// "a" hash.
		{Key: "c", Action: sprofile.ActionAdd},
		{Key: "c", Action: sprofile.ActionRemove},
		// And "a" must be able to come back after "c" goes idle.
		{Key: "a", Action: sprofile.ActionAdd},
	}
	for round := 0; round < 20; round++ {
		path := filepath.Join(dir, fmt.Sprintf("evict-%d.wal", round))
		log, err := wal.Open(path, wal.Options{})
		if err != nil {
			t.Fatal(err)
		}
		for _, rec := range records {
			if err := log.Append(rec); err != nil {
				t.Fatal(err)
			}
		}
		if err := log.Close(); err != nil {
			t.Fatal(err)
		}
		k, err := sprofile.BuildKeyed[string](2, sprofile.WithSharding(2), sprofile.WithWAL(path))
		if err != nil {
			t.Fatalf("round %d: replay failed: %v", round, err)
		}
		if k.Replayed() != len(records) {
			t.Fatalf("round %d: replayed %d records, want %d", round, k.Replayed(), len(records))
		}
		if c, _ := k.Count("a"); c != 1 {
			t.Fatalf("round %d: Count(a) = %d, want 1", round, c)
		}
		if c, _ := k.Count("b"); c != 1 {
			t.Fatalf("round %d: Count(b) = %d, want 1", round, c)
		}
		if err := k.Close(); err != nil {
			t.Fatal(err)
		}
	}
}

// TestBuildKeyedWALSyncEvery drives the WithWALSyncEvery path: records must
// reach stable storage without an explicit Sync once the threshold passes.
func TestBuildKeyedWALSyncEvery(t *testing.T) {
	path := filepath.Join(t.TempDir(), "syncevery.wal")
	k, err := sprofile.BuildKeyed[string](8, sprofile.WithSharding(2),
		sprofile.WithWAL(path), sprofile.WithWALSyncEvery(2))
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 5; i++ {
		if err := k.Add(fmt.Sprintf("k%d", i)); err != nil {
			t.Fatal(err)
		}
	}
	// Without Close or Sync, at least the first 4 records (two threshold
	// crossings) are already durable; replay through a second build sees
	// them even though the first handle is still open.
	replayed := 0
	if _, err := wal.ReplayDir(path, func(wal.Record) error { replayed++; return nil }); err != nil {
		t.Fatal(err)
	}
	if replayed < 4 {
		t.Fatalf("replayed %d records before close, want >= 4", replayed)
	}
	if err := k.Close(); err != nil {
		t.Fatal(err)
	}
}

// TestKeyedConcurrentExactCounts has goroutines ingest disjoint key sets and
// verifies every frequency afterwards: with no contention on keys, the
// striped pipeline must lose or double-count nothing.
func TestKeyedConcurrentExactCounts(t *testing.T) {
	const workers = 8
	const keysPerWorker = 50
	k := sprofile.MustBuildKeyed[string](workers*keysPerWorker, sprofile.WithSharding(8))
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			for i := 0; i < keysPerWorker; i++ {
				key := fmt.Sprintf("w%d-k%d", w, i)
				// Key i gets i+1 net adds, with some add/remove churn mixed in.
				for c := 0; c <= i; c++ {
					if err := k.Add(key); err != nil {
						t.Error(err)
						return
					}
				}
				if err := k.Add(key); err != nil {
					t.Error(err)
					return
				}
				if err := k.Remove(key); err != nil {
					t.Error(err)
					return
				}
			}
		}(w)
	}
	wg.Wait()
	var wantTotal int64
	for w := 0; w < workers; w++ {
		for i := 0; i < keysPerWorker; i++ {
			key := fmt.Sprintf("w%d-k%d", w, i)
			got, err := k.Count(key)
			if err != nil {
				t.Fatal(err)
			}
			if got != int64(i+1) {
				t.Fatalf("Count(%s) = %d, want %d", key, got, i+1)
			}
			wantTotal += int64(i + 1)
		}
	}
	if k.Total() != wantTotal {
		t.Fatalf("Total = %d, want %d", k.Total(), wantTotal)
	}
	if k.Tracked() != workers*keysPerWorker {
		t.Fatalf("Tracked = %d, want %d", k.Tracked(), workers*keysPerWorker)
	}
}

// TestKeyedConcurrentChurnStress forces recycling collisions: many goroutines
// add/remove/query over a key pool far larger than the capacity, so ids are
// constantly evicted and reacquired. Run with -race this is the conformance
// test for the striped eviction protocol.
func TestKeyedConcurrentChurnStress(t *testing.T) {
	const capacity = 16
	const workers = 8
	const iters = 3000
	for _, shards := range []int{1, 4} {
		t.Run(fmt.Sprintf("shards=%d", shards), func(t *testing.T) {
			k := sprofile.MustBuildKeyed[string](capacity, sprofile.WithSharding(shards))
			var wg sync.WaitGroup
			for w := 0; w < workers; w++ {
				wg.Add(1)
				go func(w int) {
					defer wg.Done()
					for i := 0; i < iters; i++ {
						key := fmt.Sprintf("key-%d", (w*31+i*7)%(capacity*4))
						err := k.Add(key)
						if errors.Is(err, sprofile.ErrKeyedFull) {
							// The key's stripe had no idle id; legal under
							// per-stripe recycling.
							continue
						}
						if err != nil {
							t.Error(err)
							return
						}
						switch i % 5 {
						case 0:
							if _, err := k.Count(key); err != nil {
								t.Error(err)
								return
							}
						case 1:
							if _, _, err := k.Mode(); err != nil {
								t.Error(err)
								return
							}
						case 2:
							k.TopK(3)
						case 3:
							k.Distribution()
						case 4:
							if err := k.Track(fmt.Sprintf("tracked-%d-%d", w, i%8)); err != nil && !errors.Is(err, sprofile.ErrKeyedFull) {
								t.Error(err)
								return
							}
						}
						// Every successful add is paired with a remove, so the
						// stream nets to zero.
						if err := k.Remove(key); err != nil {
							t.Error(err)
							return
						}
					}
				}(w)
			}
			wg.Wait()
			if t.Failed() {
				return
			}
			if k.Total() != 0 {
				t.Fatalf("Total after paired churn = %d, want 0", k.Total())
			}
			if k.Tracked() > capacity {
				t.Fatalf("Tracked = %d > capacity %d", k.Tracked(), capacity)
			}
			sum := k.Summarize()
			if sum.Negative != 0 {
				t.Fatalf("strict profile reports %d negative frequencies", sum.Negative)
			}
			// All surviving keys are idle; capacity many fresh keys must fit
			// (each stripe recycles its own idle ids).
			freed := 0
			for i := 0; i < capacity*4 && freed < capacity; i++ {
				if err := k.Add(fmt.Sprintf("fresh-%d", i)); err == nil {
					freed++
				}
			}
			if freed < capacity/2 {
				t.Fatalf("only %d fresh keys fit after churn", freed)
			}
		})
	}
}

// TestKeyedCheckpointRoundTrip is the checkpoint round trip for the keyed
// pipeline, with forced key recycling in the history: snapshot → restore must
// preserve every query and the key↔dense-id mapping even though dense ids are
// reassigned on restore. WithSharding(1) makes eviction deterministic (one
// stripe owns every key), so the recycled history is identical on every run.
func TestKeyedCheckpointRoundTrip(t *testing.T) {
	dir := filepath.Join(t.TempDir(), "wal")
	opts := []sprofile.BuildOption{sprofile.WithSharding(1), sprofile.WithWAL(dir)}

	k1, err := sprofile.BuildKeyed[string](3, opts...)
	if err != nil {
		t.Fatal(err)
	}
	for _, key := range []string{"a", "a", "b", "c"} {
		if err := k1.Add(key); err != nil {
			t.Fatal(err)
		}
	}
	if err := k1.Remove("b"); err != nil {
		t.Fatal(err)
	}
	// The profile is full and "b" is idle: this add must recycle b's id.
	if err := k1.Add("d"); err != nil {
		t.Fatal(err)
	}
	if err := k1.Checkpoint(); err != nil {
		t.Fatal(err)
	}
	// Tail events on top of the snapshot.
	for _, ev := range []struct {
		key string
		act sprofile.Action
	}{{"d", sprofile.ActionAdd}, {"a", sprofile.ActionRemove}, {"c", sprofile.ActionAdd}} {
		if err := k1.Apply(ev.key, ev.act); err != nil {
			t.Fatal(err)
		}
	}
	if err := k1.Close(); err != nil {
		t.Fatal(err)
	}

	k2, err := sprofile.BuildKeyed[string](3, opts...)
	if err != nil {
		t.Fatal(err)
	}
	defer k2.Close()
	if k2.Replayed() != 3 {
		t.Fatalf("Replayed = %d, want 3 (only the tail)", k2.Replayed())
	}
	rec := k2.Recovery()
	if rec.SnapshotSeq != 1 || rec.SnapshotObjects != 3 || rec.SnapshotEvents != 6 || rec.TailRecords != 3 {
		t.Fatalf("Recovery = %+v, want snapshot 1 with 3 keys / 6 events plus 3 tail records", rec)
	}
	// Final state: a=1, c=2, d=2; b recycled away.
	for _, c := range []struct {
		key  string
		want int64
	}{{"a", 1}, {"b", 0}, {"c", 2}, {"d", 2}} {
		got, err := k2.Count(c.key)
		if err != nil {
			t.Fatal(err)
		}
		if got != c.want {
			t.Errorf("recovered Count(%s) = %d, want %d", c.key, got, c.want)
		}
	}
	if got := k2.Tracked(); got != 3 {
		t.Errorf("Tracked = %d, want 3", got)
	}
	if got := k2.Total(); got != 5 {
		t.Errorf("Total = %d, want 5", got)
	}
	mode, ties, err := k2.Mode()
	if err != nil {
		t.Fatal(err)
	}
	if mode.Frequency != 2 || ties != 2 {
		t.Errorf("Mode = %+v ties %d, want frequency 2 with 2 ties", mode, ties)
	}
	top := k2.TopK(2)
	if len(top) != 2 || top[0].Frequency != 2 || top[1].Frequency != 2 {
		t.Errorf("TopK(2) = %+v, want two frequency-2 entries", top)
	}
	med, err := k2.Median()
	if err != nil || med.Frequency != 2 {
		t.Errorf("Median = %+v (%v), want frequency 2", med, err)
	}
	q, err := k2.Quantile(0)
	if err != nil || q.Frequency != 1 {
		t.Errorf("Quantile(0) = %+v (%v), want frequency 1", q, err)
	}
	sum := k2.Summarize()
	if sum.Adds != 7 || sum.Removes != 2 {
		t.Errorf("Summarize adds/removes = %d/%d, want 7/2 (historical counters preserved)", sum.Adds, sum.Removes)
	}

	// The restored mapping must keep working: recycling still sound.
	if err := k2.Remove("a"); err != nil {
		t.Fatal(err)
	}
	if err := k2.Add("e"); err != nil { // evicts the now-idle a
		t.Fatal(err)
	}
	if got, _ := k2.Count("e"); got != 1 {
		t.Errorf("Count(e) after post-restore recycling = %d, want 1", got)
	}

	// Second generation: checkpoint the restored profile and recover again.
	if err := k2.Checkpoint(); err != nil {
		t.Fatal(err)
	}
	if err := k2.Close(); err != nil {
		t.Fatal(err)
	}
	k3, err := sprofile.BuildKeyed[string](3, opts...)
	if err != nil {
		t.Fatal(err)
	}
	defer k3.Close()
	if k3.Replayed() != 0 {
		t.Fatalf("second-generation Replayed = %d, want 0 (checkpoint covered everything)", k3.Replayed())
	}
	if got := k3.Total(); got != 5 {
		t.Errorf("second-generation Total = %d, want 5", got)
	}
	if got, _ := k3.Count("e"); got != 1 {
		t.Errorf("second-generation Count(e) = %d, want 1", got)
	}
}

// TestKeyedCheckpointBytesTrigger drives the size-based background trigger:
// once the tail outgrows EveryBytes, a checkpoint must happen on its own and
// truncate the log.
func TestKeyedCheckpointBytesTrigger(t *testing.T) {
	dir := filepath.Join(t.TempDir(), "wal")
	k, err := sprofile.BuildKeyed[string](64,
		sprofile.WithSharding(2),
		sprofile.WithWAL(dir),
		sprofile.WithCheckpoints(sprofile.CheckpointPolicy{EveryBytes: 256}))
	if err != nil {
		t.Fatal(err)
	}
	defer k.Close()
	for i := 0; i < 64; i++ {
		if err := k.Add(fmt.Sprintf("object-%02d", i)); err != nil {
			t.Fatal(err)
		}
	}
	if err := k.Sync(); err != nil {
		t.Fatal(err)
	}
	deadline := time.Now().Add(5 * time.Second)
	for {
		if err := k.CheckpointError(); err != nil {
			t.Fatalf("background checkpoint failed: %v", err)
		}
		segs, err := wal.ListSegments(dir)
		if err != nil {
			t.Fatal(err)
		}
		// A background checkpoint happened once the original segment 1 is
		// gone (rotated past and then covered by a snapshot).
		if len(segs) > 0 && segs[0].ID > 1 {
			break
		}
		if time.Now().After(deadline) {
			t.Fatalf("no background checkpoint after 5s; segments: %+v", segs)
		}
		time.Sleep(10 * time.Millisecond)
	}

	// The truncated log plus the snapshot must still recover everything.
	if err := k.Close(); err != nil {
		t.Fatal(err)
	}
	k2, err := sprofile.BuildKeyed[string](64, sprofile.WithSharding(2), sprofile.WithWAL(dir))
	if err != nil {
		t.Fatal(err)
	}
	defer k2.Close()
	if got := k2.Total(); got != 64 {
		t.Fatalf("recovered Total = %d, want 64", got)
	}
	if k2.Recovery().SnapshotSeq == 0 {
		t.Fatalf("recovery loaded no snapshot: %+v", k2.Recovery())
	}
}

// TestKeyedCheckpointUnderConcurrentIngest checkpoints repeatedly while
// producers ingest and sync: the quiesce barrier, the log rotation and the
// group-commit fsync must compose without races or lost events, and the
// final recovery must account for every applied add.
func TestKeyedCheckpointUnderConcurrentIngest(t *testing.T) {
	dir := filepath.Join(t.TempDir(), "wal")
	const workers = 4
	const perWorker = 200
	k, err := sprofile.BuildKeyed[string](workers*perWorker,
		sprofile.WithSharding(4), sprofile.WithWAL(dir))
	if err != nil {
		t.Fatal(err)
	}
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			for i := 0; i < perWorker; i++ {
				if err := k.Add(fmt.Sprintf("w%d-%d", w, i)); err != nil {
					t.Error(err)
					return
				}
				if i%32 == 0 {
					if err := k.Sync(); err != nil {
						t.Error(err)
						return
					}
				}
			}
		}(w)
	}
	done := make(chan struct{})
	go func() {
		defer close(done)
		for i := 0; i < 10; i++ {
			if err := k.Checkpoint(); err != nil {
				t.Errorf("checkpoint %d: %v", i, err)
				return
			}
		}
	}()
	wg.Wait()
	<-done
	if err := k.Checkpoint(); err != nil {
		t.Fatal(err)
	}
	if err := k.Close(); err != nil {
		t.Fatal(err)
	}

	k2, err := sprofile.BuildKeyed[string](workers*perWorker,
		sprofile.WithSharding(4), sprofile.WithWAL(dir))
	if err != nil {
		t.Fatal(err)
	}
	defer k2.Close()
	if got := k2.Total(); got != workers*perWorker {
		t.Fatalf("recovered Total = %d, want %d", got, workers*perWorker)
	}
	if k2.Replayed() != 0 {
		t.Fatalf("final checkpoint left %d records to replay", k2.Replayed())
	}
}
