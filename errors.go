package sprofile

import (
	"errors"
	"fmt"

	"sprofile/internal/core"
	"sprofile/internal/idmap"
)

// errInvalidAction wraps ErrInvalidAction with the offending value; every
// variant's action-validation path returns it, so the message is uniform.
func errInvalidAction(a Action) error {
	return fmt.Errorf("%w %d", ErrInvalidAction, a)
}

// This file is the package's error taxonomy: every operational error any
// variant returns resolves, via errors.Is, to one of the class roots below,
// and usually also to a more specific sentinel. Callers branch on the closed
// set of classes; the HTTP server maps the same classes onto status codes
// and wire error codes, and the client SDK maps those codes back, so
// errors.Is works identically against a local profile and a remote one.
//
// Class roots (coarse):
//
//	ErrOutOfRange      — an argument outside its domain (object id, rank,
//	                     K parameter, NaN quantile, negative delta count)
//	ErrStrictViolation — an update a strict non-negative profile refused
//	ErrCapExceeded     — more concurrently tracked objects than slots
//	ErrEmptyProfile    — a statistic that needs at least one object slot
//	ErrUnknownKey      — a keyed operation on a key with no dense id
//	ErrInvalidAction   — a log tuple that is neither add nor remove
//	ErrInvalidQuery    — a malformed composite Query
//	ErrReadOnly        — an update through a read-only view
//	ErrWALAppend       — applied in memory but not journaled (divergence)
//	ErrBackpressure    — an async-ingest mailbox was full and the plane was
//	                     built with BackpressureError; retry after backing
//	                     off (HTTP: 429 with Retry-After)
//
// Specific sentinels (fine; each resolves to its class):
//
//	ErrObjectRange       → ErrOutOfRange
//	ErrBadRank           → ErrOutOfRange
//	ErrNegativeFrequency → ErrStrictViolation
//	ErrKeyedFull         → ErrCapExceeded
var (
	// ErrOutOfRange classifies every argument outside its domain: object ids
	// outside [0, m), ranks and K parameters outside [1, m], NaN quantiles,
	// negative AddN/RemoveN counts.
	ErrOutOfRange = core.ErrOutOfRange

	// ErrStrictViolation classifies updates a profile built with
	// WithStrictNonNegative (or with keyed recycling) must refuse because a
	// frequency would drop below zero.
	ErrStrictViolation = core.ErrStrictViolation

	// ErrCapExceeded classifies requests that need more concurrently tracked
	// objects than the profile has slots.
	ErrCapExceeded = core.ErrCapExceeded

	// ErrInvalidAction reports a log tuple whose action is neither ActionAdd
	// nor ActionRemove.
	ErrInvalidAction = core.ErrInvalidAction

	// ErrInvalidQuery reports a malformed composite Query; the offending
	// argument's class (usually ErrOutOfRange) is wrapped alongside it.
	ErrInvalidQuery = core.ErrInvalidQuery

	// ErrReadOnly reports an update attempted through a read-only profiler
	// view, such as the one Keyed.Profile returns, or a write sent to a
	// replication follower (which can only be driven by its leader's WAL).
	ErrReadOnly = errors.New("sprofile: profiler view is read-only")

	// ErrStaleRead reports a read refused because the answering follower
	// could not meet the caller's max-staleness bound; retry against the
	// leader or loosen the bound.
	ErrStaleRead = errors.New("sprofile: follower is too stale for this read")

	// ErrBackpressure reports an async-ingest enqueue refused because the
	// producer's mailbox for the target shard was full and the plane was
	// built with BackpressureError instead of blocking. The event was NOT
	// applied; back off and retry. The HTTP server maps it to 429 Too Many
	// Requests with a Retry-After header, and the client SDK maps that back
	// so errors.Is(err, ErrBackpressure) works against a remote profile.
	ErrBackpressure = errors.New("sprofile: async ingest mailbox full")

	// ErrDegraded reports a write refused because the node is in degraded
	// read-only mode: its write-ahead log hit a persistent I/O failure
	// (failed fsync, ENOSPC) and the server is refusing writes fast — the
	// event was NOT applied — while a background probe tries to roll the log
	// onto a fresh segment. Reads keep serving throughout. The HTTP server
	// maps it to 503 with code "degraded" and a Retry-After; the client SDK
	// maps that back, treating it as retryable for reads only (a write may
	// land on a node that stays degraded — fail over instead).
	ErrDegraded = errors.New("sprofile: node is degraded (write-ahead log I/O failure); writes refused")

	// ErrShed reports a request refused at admission because the server was
	// at its concurrent-request limit (load shedding, wire code "shed",
	// HTTP 503 with Retry-After). Nothing was applied; back off and retry.
	ErrShed = errors.New("sprofile: server at max in-flight requests")
)

// Specific sentinels. Test with errors.Is; each also matches its class root.
var (
	// ErrObjectRange reports an object id outside [0, m). Resolves to
	// ErrOutOfRange.
	ErrObjectRange = core.ErrObjectRange

	// ErrNegativeFrequency reports a strict-mode removal that would drive a
	// frequency below zero. Resolves to ErrStrictViolation.
	ErrNegativeFrequency = core.ErrNegativeFrequency

	// ErrEmptyProfile reports a statistical query on a profile with no slots.
	ErrEmptyProfile = core.ErrEmptyProfile

	// ErrBadRank reports an out-of-range rank, K or quantile parameter.
	// Resolves to ErrOutOfRange.
	ErrBadRank = core.ErrBadRank

	// ErrBadSnapshot reports a corrupt or incompatible snapshot.
	ErrBadSnapshot = core.ErrBadSnapshot

	// ErrCapacity reports an invalid capacity passed to New.
	ErrCapacity = core.ErrCapacity

	// ErrKeyedFull is returned by keyed Add when every dense id is occupied
	// by a live key and no id can be recycled. Resolves to ErrCapExceeded.
	ErrKeyedFull = idmap.ErrFull

	// ErrUnknownKey is returned by keyed operations on keys that were never
	// added (or whose id has been recycled).
	ErrUnknownKey = idmap.ErrUnknownKey
)

// Package-internal sentinels for construction-time misuse. They are
// programming errors, not operational ones, so they stay unexported — but
// they are still package-level documented sentinels, as the errtaxonomy
// analyzer requires: wire-path code never mints one-off errors.New values
// inside a function body.
var (
	// errNilProfiler reports a constructor handed a nil profiler; returned
	// by NewWindow, NewTimeWindow, NewKeyedOver and NewDurable.
	errNilProfiler = errors.New("sprofile: nil profiler")

	// errNoWAL reports a checkpoint request on a profile built without
	// WithWAL: there is no log to rotate and no store to snapshot into.
	errNoWAL = errors.New("sprofile: profile has no write-ahead log to checkpoint (build with WithWAL)")

	// errFollowerPromoted reports a replication operation on a follower
	// handle after Promote already turned it into a leader.
	errFollowerPromoted = errors.New("sprofile: follower was promoted")
)
