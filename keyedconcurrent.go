package sprofile

import (
	"errors"
	"fmt"
	"sync"

	"sprofile/internal/checkpoint"
	"sprofile/internal/idmap"
	"sprofile/internal/wal"
)

// ErrWALAppend reports an update that was applied to the in-memory profile
// but could not be journaled to the write-ahead log. The profile and the log
// have diverged; the caller decides whether to surface the failure or to
// retry the sync.
var ErrWALAppend = errors.New("sprofile: event applied but not journaled")

// KeyedConcurrent is the concurrent counterpart of Keyed: a key-addressed
// profile safe for many goroutines ingesting and querying at once, with no
// global lock anywhere on the update path.
//
// Concurrency model — three aligned layers:
//
//   - the id mapper is striped: keys hash onto stripes, each guarded by its
//     own mutex, and each stripe prefers dense ids from its own contiguous
//     range (borrowing from other ranges only when its own is exhausted);
//   - the dense profile is sharded with the same geometry, so the id a
//     stripe assigns lands in the matching shard — one Add takes one stripe
//     lock plus one shard lock, and updates on different stripes never
//     contend;
//   - frequency bookkeeping for recycling (which keys are idle) is kept per
//     stripe and mutated only while that stripe's lock is held, which is what
//     makes eviction sound under concurrency: a key's frequency cannot move
//     while its stripe lock serialises both the eviction check and every
//     update that could change it.
//
// Recycling semantics under concurrency (the part that differs from Keyed):
// when every dense id is in use, Add evicts an idle key — frequency zero —
// from the new key's own stripe. If that stripe has no idle key, Add returns
// ErrKeyedFull even if another stripe has one; eviction never crosses a
// stripe boundary, because that would need two stripe locks and reintroduce
// cross-stripe contention (and deadlock risk) on the hot path. With
// hash-distributed keys the stripes stay balanced and the difference from
// global eviction is marginal.
//
// Global queries (Mode, TopK, Median, ...) read the dense profile, which
// locks its shards internally, and translate ids back to keys afterwards;
// under concurrent ingestion each answer is a point-in-time snapshot, and a
// translated key may in rare cases have been recycled between the statistic
// and the translation. Per-key queries (Count) are stripe-consistent.
//
// Construct with BuildKeyed. As with Keyed, mutating the underlying Profile()
// directly desynchronises the bookkeeping and must be avoided.
type KeyedConcurrent[K comparable] struct {
	keyedQueries[K]
	ids     *idmap.Striped[K]
	recycle bool
	// deltas is the dense profile's DeltaUpdater capability (always present
	// for the Sharded/Concurrent profiles BuildKeyed constructs); the batch
	// paths use it to move a key by its net delta in one block walk.
	deltas DeltaUpdater
	// batches recycles the coalescing scratch of ApplyBatch.
	batches sync.Pool
	// freqs mirrors each id's frequency; entry i is guarded by the stripe
	// lock of the key currently holding id i (free ids hold zero and are
	// handed over through the mapper's alloc locks).
	freqs []int64
	// zeros tracks the idle (frequency-zero) keys of each stripe, the
	// eviction candidates; zeros[i] is guarded by stripe i's lock.
	zeros []zeroSet[K]

	// store is the checkpointed write-ahead log (nil without WithWAL). The
	// store's internal append mutex serialises journal writes; each append
	// happens while the event's stripe lock is held, which keeps every key's
	// add/remove order in the log identical to its apply order (the property
	// strict replay depends on). Events of different keys interleave in
	// whatever order their stripes reach the log, which replay is
	// insensitive to. Fsyncs run outside all locks with group commit.
	store    *checkpoint.Store
	ckpt     *checkpoint.Checkpointer
	replayed int
	stats    RecoveryStats
}

// zeroSet is an O(1) insert/delete/pop set of idle keys.
type zeroSet[K comparable] struct {
	keys []K
	pos  map[K]int
}

func (z *zeroSet[K]) add(key K) {
	if z.pos == nil {
		z.pos = make(map[K]int)
	}
	if _, ok := z.pos[key]; ok {
		return
	}
	z.pos[key] = len(z.keys)
	z.keys = append(z.keys, key)
}

func (z *zeroSet[K]) remove(key K) {
	i, ok := z.pos[key]
	if !ok {
		return
	}
	last := len(z.keys) - 1
	z.keys[i] = z.keys[last]
	z.pos[z.keys[i]] = i
	z.keys = z.keys[:last]
	delete(z.pos, key)
}

func (z *zeroSet[K]) pop() (K, bool) {
	var zero K
	if len(z.keys) == 0 {
		return zero, false
	}
	key := z.keys[len(z.keys)-1]
	z.keys = z.keys[:len(z.keys)-1]
	delete(z.pos, key)
	return key, true
}

// BuildKeyed assembles a concurrent key-addressed profile able to track up
// to m keys at once, from the same capability options Build accepts:
//
//	k, err := sprofile.BuildKeyed[string](m)                          // sharded per CPU
//	k, err := sprofile.BuildKeyed[string](m, sprofile.WithSharding(16))
//	k, err := sprofile.BuildKeyed[string](m, sprofile.WithSharding(16), sprofile.WithWAL("events.wal"))
//	k, err := sprofile.BuildKeyed[int64](m, sprofile.WithoutKeyRecycling())
//
// The result is always safe for concurrent use. WithSharding sets both the
// profile shard count and the mapper stripe count (they are kept aligned);
// without it the profile is sharded one shard per CPU. Synchronized selects
// a single-mutex dense profile instead (the mapper stays striped). Windowed
// and TimeWindowed are rejected — window adapters are single-goroutine.
//
// Id recycling is on by default, which forces WithStrictNonNegative on the
// dense profile exactly like NewKeyed; WithoutKeyRecycling turns it off and
// permits negative frequencies. WithWAL makes ingestion durable and is
// supported for K = string (the log stores string keys); Build-style replay
// happens before BuildKeyed returns, and Sync/Close flush the log.
func BuildKeyed[K comparable](m int, opts ...BuildOption) (*KeyedConcurrent[K], error) {
	var cfg buildConfig
	for _, opt := range opts {
		opt(&cfg)
	}
	if cfg.windowSet || cfg.spanSet {
		return nil, fmt.Errorf("%w: window adapters are single-goroutine; BuildKeyed cannot maintain them concurrently", ErrBuildConfig)
	}
	if cfg.asyncSet {
		return nil, fmt.Errorf("%w: BuildKeyed returns the concrete *KeyedConcurrent; use BuildKeyedAsync for the async ingest plane", ErrBuildConfig)
	}
	if cfg.shardsSet && cfg.shards <= 0 {
		return nil, fmt.Errorf("%w: shard count must be positive, got %d", ErrBuildConfig, cfg.shards)
	}
	if cfg.ckptSet && cfg.walPath == "" {
		return nil, fmt.Errorf("%w: WithCheckpoints requires WithWAL", ErrBuildConfig)
	}
	if cfg.walPath != "" {
		var zero K
		if _, ok := any(zero).(string); !ok {
			return nil, fmt.Errorf("%w: WithWAL requires string keys (the log stores keys as strings), got %T", ErrBuildConfig, zero)
		}
	}
	recycle := !cfg.noKeyRecycle
	profileOpts := cfg.profileOpts
	if recycle {
		// Recycled ids must start from a clean zero frequency, so the dense
		// profile has to reject negative frequencies.
		profileOpts = append(profileOpts, WithStrictNonNegative())
	}

	shards := cfg.shards
	if !cfg.shardsSet {
		shards = defaultShards()
	}
	var (
		inner   Profiler
		stripes int
		err     error
	)
	if cfg.synchronized && !cfg.shardsSet {
		inner, err = NewConcurrent(m, profileOpts...)
		stripes = defaultShards()
	} else {
		var sharded *Sharded
		sharded, err = NewSharded(m, shards, profileOpts...)
		if err == nil {
			// Align mapper stripes with the shards actually materialised
			// (NewSharded clamps the count for small m).
			inner, stripes = sharded, sharded.Shards()
		}
	}
	if err != nil {
		return nil, err
	}
	ids, err := idmap.NewStriped[K](m, stripes)
	if err != nil {
		return nil, err
	}
	kc := &KeyedConcurrent[K]{
		keyedQueries: keyedQueries[K]{profile: inner, resolver: ids},
		ids:          ids,
		recycle:      recycle,
		zeros:        make([]zeroSet[K], ids.NumStripes()),
	}
	kc.deltas, _ = inner.(DeltaUpdater)
	if recycle {
		kc.freqs = make([]int64, m)
	}
	if cfg.walPath != "" {
		store, err := checkpoint.Open(cfg.walPath, checkpoint.Options{SyncEvery: cfg.walSyncEvery})
		if err != nil {
			return nil, fmt.Errorf("sprofile: opening WAL %s: %w", cfg.walPath, err)
		}
		if st := store.TakeState(); st != nil {
			if err := kc.restore(st); err != nil {
				return nil, fmt.Errorf("sprofile: restoring snapshot from %s: %w", cfg.walPath, err)
			}
		}
		replayed, err := store.ReplayTail(kc.applyWALRecord)
		if err != nil {
			return nil, fmt.Errorf("sprofile: replaying WAL %s: %w", cfg.walPath, err)
		}
		kc.replayed = replayed
		kc.stats = recoveryStats(store.Stats())
		kc.store = store
		if cfg.ckptSet && cfg.ckpt.Enabled() {
			kc.ckpt = checkpoint.Start(checkpoint.Policy{Every: cfg.ckpt.Every, EveryBytes: cfg.ckpt.EveryBytes},
				kc.Checkpoint, store.TailBytes)
		}
	}
	return kc, nil
}

// applyWALRecord replays one durable record into the profile. Stripe
// assignment is seeded per process, so the per-stripe eviction decisions of
// the writing run cannot be reproduced here. Replay is single-goroutine (the
// recovery loop or a follower's polling goroutine), so it may fall back to
// evicting an idle key from any stripe: the log guarantees the live
// (frequency > 0) key set never exceeded capacity, hence an idle victim
// always exists when an Add finds the mapper full. The profile's store must
// be nil (recovery, or a follower without an append head), so the apply
// paths rebuild state without re-journaling the records being replayed.
func (k *KeyedConcurrent[K]) applyWALRecord(rec wal.Record) error {
	key := any(rec.Key).(K)
	apply := func() error {
		if rec.Batch {
			return k.ApplyDelta(key, rec.Adds, rec.Removes)
		}
		return k.Apply(key, rec.Action)
	}
	err := apply()
	if errors.Is(err, idmap.ErrFull) && k.evictIdleAny() {
		err = apply()
	}
	return err
}

// restore reinstates a checkpoint snapshot: every snapshotted key re-acquires
// a dense id (ids are reassigned — stripe hashing is seeded per process, so
// the original ids are meaningless here), the dense profile is loaded with
// the frequencies in one O(m log m) step, and the recycling bookkeeping is
// rebuilt. Runs before any concurrent access exists.
func (k *KeyedConcurrent[K]) restore(st *checkpoint.State) error {
	if !st.Keyed {
		return fmt.Errorf("this WAL holds a dense-id snapshot; open it with Build, not BuildKeyed: %w", ErrBadSnapshot)
	}
	m := k.profile.Cap()
	if len(st.Keys) > m {
		return fmt.Errorf("snapshot tracks %d keys but the profile has capacity %d: %w", len(st.Keys), m, ErrBadSnapshot)
	}
	loader, ok := k.profile.(FrequencyLoader)
	if !ok {
		return fmt.Errorf("%T cannot restore a snapshot (no FrequencyLoader capability): %w", k.profile, errors.ErrUnsupported)
	}
	k.ids.Reserve(len(st.Keys))
	freqs := make([]int64, m)
	for i, sk := range st.Keys {
		key := any(sk).(K) // BuildKeyed only opens a WAL for K = string
		id, _, err := k.ids.Acquire(key)
		if err != nil {
			return err
		}
		f := st.Freqs[i]
		freqs[id] = f
		if k.recycle {
			k.freqs[id] = f
			if f == 0 {
				k.zeros[k.ids.StripeOf(key)].add(key)
			}
		}
	}
	return loader.LoadFrequencies(freqs, st.Adds, st.Removes)
}

// MustBuildKeyed is BuildKeyed for callers with a known-good configuration;
// it panics on error.
func MustBuildKeyed[K comparable](m int, opts ...BuildOption) *KeyedConcurrent[K] {
	k, err := BuildKeyed[K](m, opts...)
	if err != nil {
		panic(err)
	}
	return k
}

// Tracked returns the number of keys currently holding a dense id.
func (k *KeyedConcurrent[K]) Tracked() int { return k.ids.Len() }

// Replayed returns the number of WAL tail records replayed when the profile
// was built (zero without WithWAL) — with checkpointing, only the records
// after the last snapshot, not the full ingest history.
func (k *KeyedConcurrent[K]) Replayed() int { return k.replayed }

// Recovery returns the full recovery breakdown: what the snapshot restored
// and what the tail replay added.
func (k *KeyedConcurrent[K]) Recovery() RecoveryStats { return k.stats }

// Sync flushes buffered write-ahead-log records to stable storage. Without
// WithWAL it is a no-op.
func (k *KeyedConcurrent[K]) Sync() error {
	if k.store == nil {
		return nil
	}
	return k.store.Sync()
}

// WALError returns the sticky I/O error poisoning the write-ahead log — nil
// while the log is healthy, or without WithWAL. Once set, every update fails
// fast with ErrWALAppend until RollWAL recovers the log; see wal.Dir.SyncError
// for why a failed fsync cannot simply be retried.
func (k *KeyedConcurrent[K]) WALError() error {
	if k.store == nil {
		return nil
	}
	return k.store.SyncError()
}

// RollWAL recovers a poisoned write-ahead log by rolling the append head onto
// a fresh segment, restoring update service once the disk accepts writes
// again. Records that were applied in memory but never acknowledged as
// durable (their writers got ErrWALAppend) are dropped from the log. It is a
// no-op on a healthy log or without WithWAL.
func (k *KeyedConcurrent[K]) RollWAL() error {
	if k.store == nil {
		return nil
	}
	return k.store.Roll()
}

// Close stops background checkpointing and closes the write-ahead log, if
// one is configured. The profile stays queryable, but further updates will
// fail to journal.
func (k *KeyedConcurrent[K]) Close() error {
	if k.store == nil {
		return nil
	}
	if k.ckpt != nil {
		k.ckpt.Stop()
	}
	return k.store.Close()
}

// CheckpointError returns the outcome of the most recent background
// checkpoint (always nil without WithCheckpoints, or while none has run).
func (k *KeyedConcurrent[K]) CheckpointError() error {
	if k.ckpt == nil {
		return nil
	}
	return k.ckpt.LastError()
}

// Checkpoint writes an atomic snapshot — key table, frequencies and event
// counters — into the WAL directory and deletes the log segments it covers,
// so the next restart loads the snapshot and replays only what follows it.
//
// The capture quiesces writers by holding every mapper stripe lock (each
// update path takes one first), which yields an exact cut: the snapshot
// covers precisely the events journaled before the rotation it performs.
// Readers are never blocked — queries synchronise only on the profile's
// shard locks, which the capture holds just long enough to clone the dense
// state. Serialisation and fsync of the snapshot happen entirely outside the
// update path, and one checkpoint runs at a time.
func (k *KeyedConcurrent[K]) Checkpoint() error {
	if k.store == nil {
		return errNoWAL
	}
	snapper, ok := k.profile.(Snapshotter)
	if !ok {
		return fmt.Errorf("sprofile: %T cannot be checkpointed (no Snapshotter capability): %w", k.profile, errors.ErrUnsupported)
	}
	return k.store.Checkpoint(func() (st *checkpoint.State, sealed uint64, err error) {
		k.ids.Quiesce(func() {
			sealed, err = k.store.Rotate()
			if err != nil {
				return
			}
			var snap *Profile
			snap, err = snapper.Snapshot()
			if err != nil {
				return
			}
			adds, removes := snap.Events()
			n := k.ids.Len()
			keys := make([]string, 0, n)
			freqs := make([]int64, 0, n)
			k.ids.RangeLocked(func(key K, id int) bool {
				f, cerr := snap.Count(id)
				if cerr != nil {
					err = cerr
					return false
				}
				keys = append(keys, any(key).(string))
				freqs = append(freqs, f)
				return true
			})
			if err != nil {
				return
			}
			st = &checkpoint.State{
				Keyed:    true,
				Capacity: k.profile.Cap(),
				Adds:     adds,
				Removes:  removes,
				Keys:     keys,
				Freqs:    freqs,
			}
		})
		return st, sealed, err
	})
}

// checkJournalableKey rejects keys the write-ahead log cannot record.
// The batch paths validate before applying anything: a batch record is
// appended (and validated) wholesale per stripe, so one bad key would
// otherwise void journaling for every entry sharing its record.
func checkJournalableKey(key string) error {
	if key == "" {
		return fmt.Errorf("%w: an empty key cannot be journaled", ErrOutOfRange)
	}
	if len(key) > wal.MaxKeyLen {
		return fmt.Errorf("sprofile: key of %d bytes exceeds the write-ahead log's %d-byte record limit: %w", len(key), wal.MaxKeyLen, ErrOutOfRange)
	}
	return nil
}

// journal appends one applied event to the WAL; key is string by the
// BuildKeyed construction check. syncDue asks the caller to run Sync once
// the stripe lock is released.
func (k *KeyedConcurrent[K]) journal(key K, a Action) (syncDue bool, err error) {
	syncDue, err = k.store.Append(wal.Record{Key: any(key).(string), Action: a})
	if err != nil {
		return false, fmt.Errorf("%w: %v", ErrWALAppend, err)
	}
	return syncDue, nil
}

// evictFn returns the per-stripe eviction callback for the mapper: pop one
// idle key of the acquiring key's stripe. It runs under the stripe lock.
func (k *KeyedConcurrent[K]) evictFn() func(stripe int) (K, bool) {
	if !k.recycle {
		return nil
	}
	return func(stripe int) (K, bool) { return k.zeros[stripe].pop() }
}

// evictIdleAny releases one idle key from any stripe, ignoring the
// per-stripe eviction boundary. Only WAL replay uses it, where a single
// goroutine owns the whole profile; under concurrency the unsynchronised
// zero-set scan would race with the stripes' lock discipline.
func (k *KeyedConcurrent[K]) evictIdleAny() bool {
	if !k.recycle {
		return false
	}
	for i := range k.zeros {
		if victim, ok := k.zeros[i].pop(); ok {
			if _, err := k.ids.Release(victim); err == nil {
				return true
			}
		}
	}
	return false
}

// Add increments the frequency of key, assigning it a dense id if needed.
// When the profile is full, Add recycles the id of an idle key in the same
// stripe; if the stripe has none it returns ErrKeyedFull.
func (k *KeyedConcurrent[K]) Add(key K) error {
	var journalErr error
	var syncDue bool
	_, _, err := k.ids.AcquireFunc(key, k.evictFn(), func(id int, isNew bool) error {
		if err := k.profile.Add(id); err != nil {
			return err
		}
		if k.recycle {
			k.freqs[id]++
			if k.freqs[id] == 1 && !isNew {
				k.zeros[k.ids.StripeOf(key)].remove(key)
			}
		}
		if k.store != nil {
			// Journal failures must not roll back the applied update (the
			// mapping and profile would then disagree), so the error is
			// carried out-of-band and wrapped in ErrWALAppend.
			syncDue, journalErr = k.journal(key, ActionAdd)
		}
		return nil
	})
	if err != nil {
		return err
	}
	mIngestEventsSingle.Inc()
	return k.finishJournal(syncDue, journalErr)
}

// finishJournal runs a WithWALSyncEvery-due sync outside every profile lock
// and folds its failure into the journal error contract.
func (k *KeyedConcurrent[K]) finishJournal(syncDue bool, journalErr error) error {
	if journalErr != nil || !syncDue {
		return journalErr
	}
	if err := k.store.Sync(); err != nil {
		return fmt.Errorf("%w: sync: %v", ErrWALAppend, err)
	}
	return nil
}

// Remove decrements the frequency of key. Removing an unknown key is an
// error: with recycling enabled frequencies cannot go negative, and without
// recycling the key must still be added first to receive an id.
func (k *KeyedConcurrent[K]) Remove(key K) error {
	var journalErr error
	var syncDue bool
	_, err := k.ids.DenseIDFunc(key, func(id int) error {
		if err := k.profile.Remove(id); err != nil {
			return err
		}
		if k.recycle {
			k.freqs[id]--
			if k.freqs[id] == 0 {
				k.zeros[k.ids.StripeOf(key)].add(key)
			}
		}
		if k.store != nil {
			syncDue, journalErr = k.journal(key, ActionRemove)
		}
		return nil
	})
	if err != nil {
		return err
	}
	mIngestEventsSingle.Inc()
	return k.finishJournal(syncDue, journalErr)
}

// Apply applies one (key, action) event.
func (k *KeyedConcurrent[K]) Apply(key K, action Action) error {
	switch action {
	case ActionAdd:
		return k.Add(key)
	case ActionRemove:
		return k.Remove(key)
	default:
		return errInvalidAction(action)
	}
}

// QueryKeys answers a keyed composite query from ONE quiesced cut: every
// mapper stripe lock is held for the duration (writers wait, readers of
// other structures proceed), so the dense statistics, the per-key counts and
// the id→key translation all describe the same instant — a translated key
// can never have been recycled between a statistic and its resolution, which
// the individual getters cannot promise under concurrent ingest.
//
// The dense evaluation itself runs through the inner profile's own Querier
// (one lock acquisition on Concurrent, one merged cut on Sharded); with
// writers quiesced those locks are uncontended.
func (k *KeyedConcurrent[K]) QueryKeys(q KeyedQuery[K]) (KeyedQueryResult[K], error) {
	var out KeyedQueryResult[K]
	var err error
	k.ids.Quiesce(func() {
		var dres QueryResult
		dres, err = k.queryDense(q.dense())
		if err != nil {
			return
		}
		out = k.translateQueryResult(dres)
		if len(q.Count) == 0 {
			return
		}
		out.Counts = make([]KeyedEntry[K], len(q.Count))
		for i, key := range q.Count {
			var f int64
			// LookupLocked, not DenseID: the stripe locks are already held.
			if id, ok := k.ids.LookupLocked(key); ok {
				if f, err = k.profile.Count(id); err != nil {
					return
				}
			}
			out.Counts[i] = KeyedEntry[K]{Key: key, Frequency: f}
		}
	})
	if err != nil {
		return KeyedQueryResult[K]{}, err
	}
	return out, nil
}

// KeyedTuple is one keyed log event — the key-addressed counterpart of
// Tuple, and the element type of ApplyBatch.
type KeyedTuple[K comparable] struct {
	Key    K
	Action Action
}

// keyedDelta is one coalesced per-key delta inside an ApplyBatch call.
// Entries whose keys collide on the 64-bit coalescing hash are chained
// through next. firstIsAdd records whether the key's first event in the
// batch was an add — the per-event path acquires an unknown key exactly
// then, so the batch path preserves that decision.
type keyedDelta[K comparable] struct {
	key           K
	adds, removes uint64
	stripe        int32
	next          int32
	firstIsAdd    bool
}

// keyedBatch is the reusable scratch of ApplyBatch: the coalescing index,
// the per-stripe counting sort and the write-ahead-log record buffer. It is
// pooled so steady-state batch ingestion allocates nothing beyond the keys
// themselves. The index is keyed by the mapper's 64-bit key hash — computed
// once per event and reused for stripe selection — because an integer-keyed
// map is markedly cheaper than re-hashing arbitrary K inside a generic map.
type keyedBatch[K comparable] struct {
	index   map[uint64]int32
	entries []keyedDelta[K]
	counts  []int32
	offsets []int32
	order   []int32
	wrecs   []wal.BatchEntry
}

// growInt32 returns s resized to n elements, reallocating only on growth.
func growInt32(s []int32, n int) []int32 {
	if cap(s) < n {
		return make([]int32, n)
	}
	return s[:n]
}

// ApplyBatch ingests a whole batch of keyed events through the delta fast
// path:
//
//  1. the batch is coalesced into one net delta per distinct key (so a hot
//     key repeated many times costs one update, not many);
//  2. the deltas are grouped by mapper stripe and each stripe's group is
//     resolved under a single stripe-lock acquisition, amortising the
//     per-event striping overhead of the id mapping;
//  3. each key moves by its net delta in one block-boundary walk of the
//     dense profile;
//  4. with a write-ahead log, each stripe's group is journaled as one batch
//     record (appended while the stripe lock is held, preserving per-key
//     log order) and the whole batch is made durable by ONE group-commit
//     fsync.
//
// It returns the number of events whose effect is in the profile. Semantics
// match applying the events one by one except in two documented ways shared
// with the rest of the delta path: strict non-negativity applies to each
// key's net delta, and on an error the other keys of the batch may already
// be applied (an invalid action anywhere, however, rejects the whole batch
// before anything is applied). A journaling failure is reported as
// ErrWALAppend after the batch has been applied in memory.
func (k *KeyedConcurrent[K]) ApplyBatch(events []KeyedTuple[K]) (int, error) {
	if len(events) == 0 {
		return 0, nil
	}
	if k.deltas == nil {
		// The dense profile cannot apply deltas (impossible for BuildKeyed's
		// own constructions); fall back to the per-event path.
		for i, e := range events {
			if err := k.Apply(e.Key, e.Action); err != nil {
				return i, err
			}
		}
		return len(events), nil
	}

	b, _ := k.batches.Get().(*keyedBatch[K])
	if b == nil {
		b = &keyedBatch[K]{index: make(map[uint64]int32)}
	}
	defer func() {
		clear(b.index)
		// Zero the full backing arrays before truncating so pooled scratch
		// does not pin the batch's key strings past the call (wrecs is
		// truncated per stripe, so its live prefix alone is not enough).
		clear(b.entries)
		b.entries = b.entries[:0]
		clear(b.wrecs[:cap(b.wrecs)])
		b.wrecs = b.wrecs[:0]
		k.batches.Put(b)
	}()

	// Coalesce, deduplicating keys through their stripe hash (hash
	// collisions chain and simply yield one entry per distinct key).
	// Validation happens here, before anything is applied, so an invalid
	// action — or, with a WAL, a key the log could not journal — rejects the
	// batch whole instead of leaving applied-but-unjournaled state behind.
	ns := k.ids.NumStripes()
	for _, e := range events {
		if !e.Action.Valid() {
			return 0, errInvalidAction(e.Action)
		}
		if k.store != nil {
			if err := checkJournalableKey(any(e.Key).(string)); err != nil {
				return 0, err
			}
		}
		h := k.ids.Hash(e.Key)
		first := e.Action == ActionAdd
		j, ok := b.index[h]
		if ok {
			for b.entries[j].key != e.Key {
				if b.entries[j].next < 0 {
					nj := int32(len(b.entries))
					b.entries = append(b.entries, keyedDelta[K]{key: e.Key, stripe: int32(h % uint64(ns)), next: -1, firstIsAdd: first})
					b.entries[j].next = nj
					j = nj
					break
				}
				j = b.entries[j].next
			}
		} else {
			j = int32(len(b.entries))
			b.index[h] = j
			b.entries = append(b.entries, keyedDelta[K]{key: e.Key, stripe: int32(h % uint64(ns)), next: -1, firstIsAdd: first})
		}
		if e.Action == ActionAdd {
			b.entries[j].adds++
		} else {
			b.entries[j].removes++
		}
	}

	mIngestEventsBatch.Add(uint64(len(events)))
	mIngestBatchEvents.Observe(float64(len(events)))
	mIngestBatchKeys.Add(uint64(len(b.entries)))

	// Group by stripe with a counting sort over the reusable buffers.
	b.counts = growInt32(b.counts, ns)
	for i := range b.counts {
		b.counts[i] = 0
	}
	for i := range b.entries {
		b.counts[b.entries[i].stripe]++
	}
	b.offsets = growInt32(b.offsets, ns)
	sum := int32(0)
	for i := 0; i < ns; i++ {
		b.offsets[i] = sum
		sum += b.counts[i]
	}
	b.order = growInt32(b.order, len(b.entries))
	for i := range b.entries {
		si := b.entries[i].stripe
		b.order[b.offsets[si]] = int32(i)
		b.offsets[si]++
	}

	// Apply stripe by stripe: one stripe-lock acquisition, one profile
	// delta per distinct key, one log record per stripe group.
	applied := 0
	var journalErr error
	var entryErr error
	for si := 0; si < ns && entryErr == nil && journalErr == nil; si++ {
		cnt := int(b.counts[si])
		if cnt == 0 {
			continue
		}
		idxs := b.order[int(b.offsets[si])-cnt : b.offsets[si]]
		_ = k.ids.BatchFunc(si, func(t idmap.StripeTxn[K]) error {
			b.wrecs = b.wrecs[:0]
			for _, j := range idxs {
				en := &b.entries[j]
				if entryErr = k.applyEntryLocked(t, si, en.key, en.adds, en.removes, en.firstIsAdd); entryErr != nil {
					break
				}
				applied += int(en.adds + en.removes)
				if k.store != nil {
					b.wrecs = append(b.wrecs, wal.BatchEntry{Key: any(en.key).(string), Adds: en.adds, Removes: en.removes})
				}
			}
			// The applied prefix of the stripe is journaled even when a later
			// entry failed: the in-memory updates happened, so the log must
			// carry them.
			if k.store != nil && len(b.wrecs) > 0 {
				if _, jerr := k.store.AppendBatch(b.wrecs); jerr != nil {
					journalErr = fmt.Errorf("%w: %v", ErrWALAppend, jerr)
				}
			}
			return nil
		})
	}

	// One group-commit fsync covers every stripe's record.
	if k.store != nil && journalErr == nil {
		if err := k.store.Sync(); err != nil {
			journalErr = fmt.Errorf("%w: sync: %v", ErrWALAppend, err)
		}
	}
	if journalErr != nil {
		return applied, journalErr
	}
	return applied, entryErr
}

// ApplyDelta applies a coalesced run of events for one key: adds gross add
// events and removes gross remove events, moving the key's frequency by
// adds-removes in one step. A key whose events cancel out is still acquired
// (and left idle), exactly as the per-event sequence would. A key unknown
// to the profile is acquired only when the delta records at least one add
// event; otherwise it fails like Remove.
func (k *KeyedConcurrent[K]) ApplyDelta(key K, adds, removes uint64) error {
	if adds == 0 && removes == 0 {
		return nil
	}
	if k.deltas == nil {
		for i := uint64(0); i < adds; i++ {
			if err := k.Add(key); err != nil {
				return err
			}
		}
		for i := uint64(0); i < removes; i++ {
			if err := k.Remove(key); err != nil {
				return err
			}
		}
		return nil
	}
	if k.store != nil {
		if err := checkJournalableKey(any(key).(string)); err != nil {
			return err
		}
	}
	si := k.ids.StripeOf(key)
	var syncDue bool
	var journalErr error
	err := k.ids.BatchFunc(si, func(t idmap.StripeTxn[K]) error {
		if err := k.applyEntryLocked(t, si, key, adds, removes, adds > 0); err != nil {
			return err
		}
		if k.store != nil {
			rec := [1]wal.BatchEntry{{Key: any(key).(string), Adds: adds, Removes: removes}}
			var jerr error
			syncDue, jerr = k.store.AppendBatch(rec[:])
			if jerr != nil {
				journalErr = fmt.Errorf("%w: %v", ErrWALAppend, jerr)
			}
		}
		return nil
	})
	if err != nil {
		return err
	}
	return k.finishJournal(syncDue, journalErr)
}

// applyEntryLocked applies one coalesced (key, gross adds, gross removes)
// delta while the key's stripe transaction is open: id resolution (with
// in-stripe eviction for new keys), the dense-profile delta and the
// recycling bookkeeping all happen as one atomic step under the stripe
// lock. acquire says whether an unknown key may be assigned an id — true
// exactly when the per-event path would have acquired it, i.e. when the
// key's first event was an add; an unknown key without it fails like
// Remove does.
func (k *KeyedConcurrent[K]) applyEntryLocked(t idmap.StripeTxn[K], si int, key K, adds, removes uint64, acquire bool) error {
	net := int64(adds) - int64(removes)
	var id int
	var isNew bool
	if acquire {
		var err error
		id, isNew, err = t.Acquire(key, k.evictFn())
		if err != nil {
			return err
		}
	} else {
		var ok bool
		id, ok = t.Get(key)
		if !ok {
			return fmt.Errorf("%w: %v", idmap.ErrUnknownKey, key)
		}
	}
	if err := k.deltas.ApplyDelta(Delta{Object: id, Delta: net, Adds: adds, Removes: removes}); err != nil {
		if isNew {
			t.Rollback(key, id)
		}
		return err
	}
	if k.recycle {
		old := k.freqs[id]
		now := old + net
		k.freqs[id] = now
		switch {
		case isNew && now == 0:
			k.zeros[si].add(key)
		case !isNew && old == 0 && now != 0:
			k.zeros[si].remove(key)
		case old != 0 && now == 0:
			k.zeros[si].add(key)
		}
	}
	return nil
}

// Track assigns key a dense id without counting anything, so a catalogue can
// be registered ahead of its events. A tracked key sits at frequency zero
// and is therefore an eviction candidate until its first Add.
func (k *KeyedConcurrent[K]) Track(key K) error {
	_, _, err := k.ids.AcquireFunc(key, k.evictFn(), func(id int, isNew bool) error {
		if k.recycle && isNew {
			k.zeros[k.ids.StripeOf(key)].add(key)
		}
		return nil
	})
	return err
}

// Count returns the current frequency of key (zero for unknown keys). The
// lookup and the read happen under the key's stripe lock, so the answer is
// consistent with concurrent updates to the same key.
func (k *KeyedConcurrent[K]) Count(key K) (int64, error) {
	var count int64
	_, err := k.ids.DenseIDFunc(key, func(id int) error {
		c, err := k.profile.Count(id)
		count = c
		return err
	})
	if err != nil {
		if errors.Is(err, idmap.ErrUnknownKey) {
			return 0, nil
		}
		return 0, err
	}
	return count, nil
}
