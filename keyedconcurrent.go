package sprofile

import (
	"errors"
	"fmt"

	"sprofile/internal/checkpoint"
	"sprofile/internal/idmap"
	"sprofile/internal/wal"
)

// ErrWALAppend reports an update that was applied to the in-memory profile
// but could not be journaled to the write-ahead log. The profile and the log
// have diverged; the caller decides whether to surface the failure or to
// retry the sync.
var ErrWALAppend = errors.New("sprofile: event applied but not journaled")

// KeyedConcurrent is the concurrent counterpart of Keyed: a key-addressed
// profile safe for many goroutines ingesting and querying at once, with no
// global lock anywhere on the update path.
//
// Concurrency model — three aligned layers:
//
//   - the id mapper is striped: keys hash onto stripes, each guarded by its
//     own mutex, and each stripe prefers dense ids from its own contiguous
//     range (borrowing from other ranges only when its own is exhausted);
//   - the dense profile is sharded with the same geometry, so the id a
//     stripe assigns lands in the matching shard — one Add takes one stripe
//     lock plus one shard lock, and updates on different stripes never
//     contend;
//   - frequency bookkeeping for recycling (which keys are idle) is kept per
//     stripe and mutated only while that stripe's lock is held, which is what
//     makes eviction sound under concurrency: a key's frequency cannot move
//     while its stripe lock serialises both the eviction check and every
//     update that could change it.
//
// Recycling semantics under concurrency (the part that differs from Keyed):
// when every dense id is in use, Add evicts an idle key — frequency zero —
// from the new key's own stripe. If that stripe has no idle key, Add returns
// ErrKeyedFull even if another stripe has one; eviction never crosses a
// stripe boundary, because that would need two stripe locks and reintroduce
// cross-stripe contention (and deadlock risk) on the hot path. With
// hash-distributed keys the stripes stay balanced and the difference from
// global eviction is marginal.
//
// Global queries (Mode, TopK, Median, ...) read the dense profile, which
// locks its shards internally, and translate ids back to keys afterwards;
// under concurrent ingestion each answer is a point-in-time snapshot, and a
// translated key may in rare cases have been recycled between the statistic
// and the translation. Per-key queries (Count) are stripe-consistent.
//
// Construct with BuildKeyed. As with Keyed, mutating the underlying Profile()
// directly desynchronises the bookkeeping and must be avoided.
type KeyedConcurrent[K comparable] struct {
	keyedQueries[K]
	ids     *idmap.Striped[K]
	recycle bool
	// freqs mirrors each id's frequency; entry i is guarded by the stripe
	// lock of the key currently holding id i (free ids hold zero and are
	// handed over through the mapper's alloc locks).
	freqs []int64
	// zeros tracks the idle (frequency-zero) keys of each stripe, the
	// eviction candidates; zeros[i] is guarded by stripe i's lock.
	zeros []zeroSet[K]

	// store is the checkpointed write-ahead log (nil without WithWAL). The
	// store's internal append mutex serialises journal writes; each append
	// happens while the event's stripe lock is held, which keeps every key's
	// add/remove order in the log identical to its apply order (the property
	// strict replay depends on). Events of different keys interleave in
	// whatever order their stripes reach the log, which replay is
	// insensitive to. Fsyncs run outside all locks with group commit.
	store    *checkpoint.Store
	ckpt     *checkpoint.Checkpointer
	replayed int
	stats    RecoveryStats
}

// zeroSet is an O(1) insert/delete/pop set of idle keys.
type zeroSet[K comparable] struct {
	keys []K
	pos  map[K]int
}

func (z *zeroSet[K]) add(key K) {
	if z.pos == nil {
		z.pos = make(map[K]int)
	}
	if _, ok := z.pos[key]; ok {
		return
	}
	z.pos[key] = len(z.keys)
	z.keys = append(z.keys, key)
}

func (z *zeroSet[K]) remove(key K) {
	i, ok := z.pos[key]
	if !ok {
		return
	}
	last := len(z.keys) - 1
	z.keys[i] = z.keys[last]
	z.pos[z.keys[i]] = i
	z.keys = z.keys[:last]
	delete(z.pos, key)
}

func (z *zeroSet[K]) pop() (K, bool) {
	var zero K
	if len(z.keys) == 0 {
		return zero, false
	}
	key := z.keys[len(z.keys)-1]
	z.keys = z.keys[:len(z.keys)-1]
	delete(z.pos, key)
	return key, true
}

// BuildKeyed assembles a concurrent key-addressed profile able to track up
// to m keys at once, from the same capability options Build accepts:
//
//	k, err := sprofile.BuildKeyed[string](m)                          // sharded per CPU
//	k, err := sprofile.BuildKeyed[string](m, sprofile.WithSharding(16))
//	k, err := sprofile.BuildKeyed[string](m, sprofile.WithSharding(16), sprofile.WithWAL("events.wal"))
//	k, err := sprofile.BuildKeyed[int64](m, sprofile.WithoutKeyRecycling())
//
// The result is always safe for concurrent use. WithSharding sets both the
// profile shard count and the mapper stripe count (they are kept aligned);
// without it the profile is sharded one shard per CPU. Synchronized selects
// a single-mutex dense profile instead (the mapper stays striped). Windowed
// and TimeWindowed are rejected — window adapters are single-goroutine.
//
// Id recycling is on by default, which forces WithStrictNonNegative on the
// dense profile exactly like NewKeyed; WithoutKeyRecycling turns it off and
// permits negative frequencies. WithWAL makes ingestion durable and is
// supported for K = string (the log stores string keys); Build-style replay
// happens before BuildKeyed returns, and Sync/Close flush the log.
func BuildKeyed[K comparable](m int, opts ...BuildOption) (*KeyedConcurrent[K], error) {
	var cfg buildConfig
	for _, opt := range opts {
		opt(&cfg)
	}
	if cfg.windowSet || cfg.spanSet {
		return nil, fmt.Errorf("%w: window adapters are single-goroutine; BuildKeyed cannot maintain them concurrently", ErrBuildConfig)
	}
	if cfg.shardsSet && cfg.shards <= 0 {
		return nil, fmt.Errorf("%w: shard count must be positive, got %d", ErrBuildConfig, cfg.shards)
	}
	if cfg.ckptSet && cfg.walPath == "" {
		return nil, fmt.Errorf("%w: WithCheckpoints requires WithWAL", ErrBuildConfig)
	}
	if cfg.walPath != "" {
		var zero K
		if _, ok := any(zero).(string); !ok {
			return nil, fmt.Errorf("%w: WithWAL requires string keys (the log stores keys as strings), got %T", ErrBuildConfig, zero)
		}
	}
	recycle := !cfg.noKeyRecycle
	profileOpts := cfg.profileOpts
	if recycle {
		// Recycled ids must start from a clean zero frequency, so the dense
		// profile has to reject negative frequencies.
		profileOpts = append(profileOpts, WithStrictNonNegative())
	}

	shards := cfg.shards
	if !cfg.shardsSet {
		shards = defaultShards()
	}
	var (
		inner   Profiler
		stripes int
		err     error
	)
	if cfg.synchronized && !cfg.shardsSet {
		inner, err = NewConcurrent(m, profileOpts...)
		stripes = defaultShards()
	} else {
		var sharded *Sharded
		sharded, err = NewSharded(m, shards, profileOpts...)
		if err == nil {
			// Align mapper stripes with the shards actually materialised
			// (NewSharded clamps the count for small m).
			inner, stripes = sharded, sharded.Shards()
		}
	}
	if err != nil {
		return nil, err
	}
	ids, err := idmap.NewStriped[K](m, stripes)
	if err != nil {
		return nil, err
	}
	kc := &KeyedConcurrent[K]{
		keyedQueries: keyedQueries[K]{profile: inner, resolver: ids},
		ids:          ids,
		recycle:      recycle,
		zeros:        make([]zeroSet[K], ids.NumStripes()),
	}
	if recycle {
		kc.freqs = make([]int64, m)
	}
	if cfg.walPath != "" {
		store, err := checkpoint.Open(cfg.walPath, checkpoint.Options{SyncEvery: cfg.walSyncEvery})
		if err != nil {
			return nil, fmt.Errorf("sprofile: opening WAL %s: %w", cfg.walPath, err)
		}
		if st := store.TakeState(); st != nil {
			if err := kc.restore(st); err != nil {
				return nil, fmt.Errorf("sprofile: restoring snapshot from %s: %w", cfg.walPath, err)
			}
		}
		replayed, err := store.ReplayTail(func(rec wal.Record) error {
			// Stripe assignment is seeded per process, so the per-stripe
			// eviction decisions of the writing run cannot be reproduced
			// here. Replay is single-goroutine, so it may fall back to
			// evicting an idle key from any stripe: the log guarantees the
			// live (frequency > 0) key set never exceeded capacity, hence an
			// idle victim always exists when an Add finds the mapper full.
			// kc.store is still nil here, so Apply rebuilds state without
			// re-journaling the records being replayed.
			key := any(rec.Key).(K)
			err := kc.Apply(key, rec.Action)
			if errors.Is(err, idmap.ErrFull) && kc.evictIdleAny() {
				err = kc.Apply(key, rec.Action)
			}
			return err
		})
		if err != nil {
			return nil, fmt.Errorf("sprofile: replaying WAL %s: %w", cfg.walPath, err)
		}
		kc.replayed = replayed
		kc.stats = recoveryStats(store.Stats())
		kc.store = store
		if cfg.ckptSet && cfg.ckpt.Enabled() {
			kc.ckpt = checkpoint.Start(checkpoint.Policy{Every: cfg.ckpt.Every, EveryBytes: cfg.ckpt.EveryBytes},
				kc.Checkpoint, store.TailBytes)
		}
	}
	return kc, nil
}

// restore reinstates a checkpoint snapshot: every snapshotted key re-acquires
// a dense id (ids are reassigned — stripe hashing is seeded per process, so
// the original ids are meaningless here), the dense profile is loaded with
// the frequencies in one O(m log m) step, and the recycling bookkeeping is
// rebuilt. Runs before any concurrent access exists.
func (k *KeyedConcurrent[K]) restore(st *checkpoint.State) error {
	if !st.Keyed {
		return errors.New("this WAL holds a dense-id snapshot; open it with Build, not BuildKeyed")
	}
	m := k.profile.Cap()
	if len(st.Keys) > m {
		return fmt.Errorf("snapshot tracks %d keys but the profile has capacity %d", len(st.Keys), m)
	}
	loader, ok := k.profile.(FrequencyLoader)
	if !ok {
		return fmt.Errorf("%T cannot restore a snapshot (no FrequencyLoader capability)", k.profile)
	}
	k.ids.Reserve(len(st.Keys))
	freqs := make([]int64, m)
	for i, sk := range st.Keys {
		key := any(sk).(K) // BuildKeyed only opens a WAL for K = string
		id, _, err := k.ids.Acquire(key)
		if err != nil {
			return err
		}
		f := st.Freqs[i]
		freqs[id] = f
		if k.recycle {
			k.freqs[id] = f
			if f == 0 {
				k.zeros[k.ids.StripeOf(key)].add(key)
			}
		}
	}
	return loader.LoadFrequencies(freqs, st.Adds, st.Removes)
}

// MustBuildKeyed is BuildKeyed for callers with a known-good configuration;
// it panics on error.
func MustBuildKeyed[K comparable](m int, opts ...BuildOption) *KeyedConcurrent[K] {
	k, err := BuildKeyed[K](m, opts...)
	if err != nil {
		panic(err)
	}
	return k
}

// Tracked returns the number of keys currently holding a dense id.
func (k *KeyedConcurrent[K]) Tracked() int { return k.ids.Len() }

// Replayed returns the number of WAL tail records replayed when the profile
// was built (zero without WithWAL) — with checkpointing, only the records
// after the last snapshot, not the full ingest history.
func (k *KeyedConcurrent[K]) Replayed() int { return k.replayed }

// Recovery returns the full recovery breakdown: what the snapshot restored
// and what the tail replay added.
func (k *KeyedConcurrent[K]) Recovery() RecoveryStats { return k.stats }

// Sync flushes buffered write-ahead-log records to stable storage. Without
// WithWAL it is a no-op.
func (k *KeyedConcurrent[K]) Sync() error {
	if k.store == nil {
		return nil
	}
	return k.store.Sync()
}

// Close stops background checkpointing and closes the write-ahead log, if
// one is configured. The profile stays queryable, but further updates will
// fail to journal.
func (k *KeyedConcurrent[K]) Close() error {
	if k.store == nil {
		return nil
	}
	if k.ckpt != nil {
		k.ckpt.Stop()
	}
	return k.store.Close()
}

// CheckpointError returns the outcome of the most recent background
// checkpoint (always nil without WithCheckpoints, or while none has run).
func (k *KeyedConcurrent[K]) CheckpointError() error {
	if k.ckpt == nil {
		return nil
	}
	return k.ckpt.LastError()
}

// Checkpoint writes an atomic snapshot — key table, frequencies and event
// counters — into the WAL directory and deletes the log segments it covers,
// so the next restart loads the snapshot and replays only what follows it.
//
// The capture quiesces writers by holding every mapper stripe lock (each
// update path takes one first), which yields an exact cut: the snapshot
// covers precisely the events journaled before the rotation it performs.
// Readers are never blocked — queries synchronise only on the profile's
// shard locks, which the capture holds just long enough to clone the dense
// state. Serialisation and fsync of the snapshot happen entirely outside the
// update path, and one checkpoint runs at a time.
func (k *KeyedConcurrent[K]) Checkpoint() error {
	if k.store == nil {
		return errors.New("sprofile: profile has no write-ahead log to checkpoint (build with WithWAL)")
	}
	snapper, ok := k.profile.(Snapshotter)
	if !ok {
		return fmt.Errorf("sprofile: %T cannot be checkpointed (no Snapshotter capability)", k.profile)
	}
	return k.store.Checkpoint(func() (st *checkpoint.State, sealed uint64, err error) {
		k.ids.Quiesce(func() {
			sealed, err = k.store.Rotate()
			if err != nil {
				return
			}
			var snap *Profile
			snap, err = snapper.Snapshot()
			if err != nil {
				return
			}
			adds, removes := snap.Events()
			n := k.ids.Len()
			keys := make([]string, 0, n)
			freqs := make([]int64, 0, n)
			k.ids.RangeLocked(func(key K, id int) bool {
				f, cerr := snap.Count(id)
				if cerr != nil {
					err = cerr
					return false
				}
				keys = append(keys, any(key).(string))
				freqs = append(freqs, f)
				return true
			})
			if err != nil {
				return
			}
			st = &checkpoint.State{
				Keyed:    true,
				Capacity: k.profile.Cap(),
				Adds:     adds,
				Removes:  removes,
				Keys:     keys,
				Freqs:    freqs,
			}
		})
		return st, sealed, err
	})
}

// journal appends one applied event to the WAL; key is string by the
// BuildKeyed construction check. syncDue asks the caller to run Sync once
// the stripe lock is released.
func (k *KeyedConcurrent[K]) journal(key K, a Action) (syncDue bool, err error) {
	syncDue, err = k.store.Append(wal.Record{Key: any(key).(string), Action: a})
	if err != nil {
		return false, fmt.Errorf("%w: %v", ErrWALAppend, err)
	}
	return syncDue, nil
}

// evictFn returns the per-stripe eviction callback for the mapper: pop one
// idle key of the acquiring key's stripe. It runs under the stripe lock.
func (k *KeyedConcurrent[K]) evictFn() func(stripe int) (K, bool) {
	if !k.recycle {
		return nil
	}
	return func(stripe int) (K, bool) { return k.zeros[stripe].pop() }
}

// evictIdleAny releases one idle key from any stripe, ignoring the
// per-stripe eviction boundary. Only WAL replay uses it, where a single
// goroutine owns the whole profile; under concurrency the unsynchronised
// zero-set scan would race with the stripes' lock discipline.
func (k *KeyedConcurrent[K]) evictIdleAny() bool {
	if !k.recycle {
		return false
	}
	for i := range k.zeros {
		if victim, ok := k.zeros[i].pop(); ok {
			if _, err := k.ids.Release(victim); err == nil {
				return true
			}
		}
	}
	return false
}

// Add increments the frequency of key, assigning it a dense id if needed.
// When the profile is full, Add recycles the id of an idle key in the same
// stripe; if the stripe has none it returns ErrKeyedFull.
func (k *KeyedConcurrent[K]) Add(key K) error {
	var journalErr error
	var syncDue bool
	_, _, err := k.ids.AcquireFunc(key, k.evictFn(), func(id int, isNew bool) error {
		if err := k.profile.Add(id); err != nil {
			return err
		}
		if k.recycle {
			k.freqs[id]++
			if k.freqs[id] == 1 && !isNew {
				k.zeros[k.ids.StripeOf(key)].remove(key)
			}
		}
		if k.store != nil {
			// Journal failures must not roll back the applied update (the
			// mapping and profile would then disagree), so the error is
			// carried out-of-band and wrapped in ErrWALAppend.
			syncDue, journalErr = k.journal(key, ActionAdd)
		}
		return nil
	})
	if err != nil {
		return err
	}
	return k.finishJournal(syncDue, journalErr)
}

// finishJournal runs a WithWALSyncEvery-due sync outside every profile lock
// and folds its failure into the journal error contract.
func (k *KeyedConcurrent[K]) finishJournal(syncDue bool, journalErr error) error {
	if journalErr != nil || !syncDue {
		return journalErr
	}
	if err := k.store.Sync(); err != nil {
		return fmt.Errorf("%w: sync: %v", ErrWALAppend, err)
	}
	return nil
}

// Remove decrements the frequency of key. Removing an unknown key is an
// error: with recycling enabled frequencies cannot go negative, and without
// recycling the key must still be added first to receive an id.
func (k *KeyedConcurrent[K]) Remove(key K) error {
	var journalErr error
	var syncDue bool
	_, err := k.ids.DenseIDFunc(key, func(id int) error {
		if err := k.profile.Remove(id); err != nil {
			return err
		}
		if k.recycle {
			k.freqs[id]--
			if k.freqs[id] == 0 {
				k.zeros[k.ids.StripeOf(key)].add(key)
			}
		}
		if k.store != nil {
			syncDue, journalErr = k.journal(key, ActionRemove)
		}
		return nil
	})
	if err != nil {
		return err
	}
	return k.finishJournal(syncDue, journalErr)
}

// Apply applies one (key, action) event.
func (k *KeyedConcurrent[K]) Apply(key K, action Action) error {
	switch action {
	case ActionAdd:
		return k.Add(key)
	case ActionRemove:
		return k.Remove(key)
	default:
		return fmt.Errorf("sprofile: invalid action %d", action)
	}
}

// Track assigns key a dense id without counting anything, so a catalogue can
// be registered ahead of its events. A tracked key sits at frequency zero
// and is therefore an eviction candidate until its first Add.
func (k *KeyedConcurrent[K]) Track(key K) error {
	_, _, err := k.ids.AcquireFunc(key, k.evictFn(), func(id int, isNew bool) error {
		if k.recycle && isNew {
			k.zeros[k.ids.StripeOf(key)].add(key)
		}
		return nil
	})
	return err
}

// Count returns the current frequency of key (zero for unknown keys). The
// lookup and the read happen under the key's stripe lock, so the answer is
// consistent with concurrent updates to the same key.
func (k *KeyedConcurrent[K]) Count(key K) (int64, error) {
	var count int64
	_, err := k.ids.DenseIDFunc(key, func(id int) error {
		c, err := k.profile.Count(id)
		count = c
		return err
	})
	if err != nil {
		if errors.Is(err, idmap.ErrUnknownKey) {
			return 0, nil
		}
		return 0, err
	}
	return count, nil
}
