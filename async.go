package sprofile

import (
	"context"
	"fmt"
	"runtime"
	"runtime/pprof"
	"sync"
	"sync/atomic"
	"time"

	"sprofile/internal/core"
	"sprofile/internal/mailbox"
)

// This file is the shared-nothing async ingest plane. The synchronous
// variants make every producer pay a lock on the hot path (a stripe mutex, a
// shard mutex, the Durable update mutex); the async plane removes all of
// them from the producer's side of the fence:
//
//	producer goroutines ──SPSC mailboxes──▶ per-shard appliers ──▶ shards
//	                                              │
//	                                              └─▶ epoch snapshots ◀── readers
//
//   - each producer handle owns one single-producer/single-consumer ring
//     (internal/mailbox) per shard, so an enqueue is a bounds check plus a
//     lock-free ring push — no shared mutable state with other producers;
//   - exactly one applier goroutine drains each shard's rings in batches and
//     runs the existing Coalescer/ApplyDeltas path, so coalescing, the
//     one-WAL-record-per-batch layout and group-commit fsync of the
//     synchronous bulk path are inherited, not reimplemented;
//   - appliers publish immutable per-shard snapshots on a configurable
//     cadence (every AsyncPolicy.PublishEvents applied events, and at least
//     every PublishInterval while dirty), installed by atomic pointer swap.
//     Reads load the current epoch view and never touch a writer lock.
//
// The read contract is bounded staleness, the same vocabulary as the
// replication plane's staleness_ms watermark: a read observes some epoch
// whose publish instant lags the ingest frontier by at most roughly
// PublishInterval (plus in-flight mailbox residence). Read-your-write is NOT
// guaranteed between an enqueue and the next publish; Flush() restores it by
// draining every mailbox and forcing a publish before returning.

// BackpressureMode says what a producer does when a shard mailbox is full.
type BackpressureMode int

const (
	// BackpressureBlock makes the producer wait (yielding, then briefly
	// sleeping) until the applier frees mailbox space. Ingestion never drops
	// or fails, at the cost of producer latency under overload.
	BackpressureBlock BackpressureMode = iota
	// BackpressureError makes the producer fail fast with ErrBackpressure,
	// leaving the event unapplied. The HTTP server surfaces it as 429 with a
	// Retry-After hint.
	BackpressureError
)

// Async plane defaults; a zero AsyncPolicy gets all of them.
const (
	// DefaultMailboxDepth is events buffered per producer×shard ring.
	DefaultMailboxDepth = 1024
	// DefaultPublishEvents bounds how many applied events a shard batches
	// into one epoch before republishing its snapshot. It is deliberately
	// large: PublishInterval is the real staleness bound (the ticker
	// republishes dirty shards on that cadence regardless), and each publish
	// clones the shard, so an aggressive event trigger turns high-rate
	// ingest into allocation churn. Lower it when a test or a bursty
	// low-rate stream needs snapshots promptly after the k-th event.
	DefaultPublishEvents = 1 << 16
	// DefaultPublishInterval bounds how long an applied-but-unpublished
	// event can stay invisible to readers — the staleness half of the read
	// contract — and doubles as the applier's idle wakeup tick.
	DefaultPublishInterval = 2 * time.Millisecond
)

// AsyncPolicy configures the async ingest plane a profile is wrapped with
// through WithAsyncIngest, NewAsync or NewAsyncKeyed. The zero value means
// "all defaults".
type AsyncPolicy struct {
	// MailboxDepth is the per-producer, per-shard ring capacity in events,
	// rounded up to a power of two. Deeper mailboxes absorb burstier
	// producers before backpressure; shallower ones bound enqueue-to-apply
	// latency. Default DefaultMailboxDepth.
	MailboxDepth int
	// PublishEvents re-publishes a shard's read snapshot after this many
	// applied events even if PublishInterval has not elapsed. Default
	// DefaultPublishEvents.
	PublishEvents int
	// PublishInterval is the staleness bound: a dirty shard republishes at
	// least this often. Default DefaultPublishInterval.
	PublishInterval time.Duration
	// Backpressure picks the full-mailbox behaviour. Default
	// BackpressureBlock.
	Backpressure BackpressureMode
}

// withDefaults fills unset fields.
func (p AsyncPolicy) withDefaults() AsyncPolicy {
	if p.MailboxDepth <= 0 {
		p.MailboxDepth = DefaultMailboxDepth
	}
	if p.PublishEvents <= 0 {
		p.PublishEvents = DefaultPublishEvents
	}
	if p.PublishInterval <= 0 {
		p.PublishInterval = DefaultPublishInterval
	}
	return p
}

// AsyncShardStats is one shard's corner of AsyncStats.
type AsyncShardStats struct {
	// Shard is the shard (and applier) index.
	Shard int `json:"shard"`
	// MailboxDepth is the number of enqueued-but-unapplied events across
	// every producer ring feeding this shard.
	MailboxDepth int `json:"mailbox_depth"`
	// Applied is the total number of events this shard's applier has applied.
	Applied uint64 `json:"applied"`
}

// AsyncStats is a point-in-time observability snapshot of an async plane;
// the HTTP server serves it inside /healthz and republishes it via expvar.
type AsyncStats struct {
	// Shards is the applier count (one per shard).
	Shards int `json:"shards"`
	// Producers is the number of live producer handles.
	Producers int `json:"producers"`
	// Epoch counts snapshot publishes across all shards — the "applied
	// epoch" readers are served from advances with it.
	Epoch uint64 `json:"epoch"`
	// Applied is the total number of events applied by all appliers.
	Applied uint64 `json:"applied"`
	// Queued is the total number of enqueued-but-unapplied events.
	Queued int `json:"queued"`
	// Drops counts enqueues refused with ErrBackpressure.
	Drops uint64 `json:"drops"`
	// Waits counts enqueues that had to block on a full mailbox.
	Waits uint64 `json:"waits"`
	// PublishLagMs is how long ago the newest epoch was published — the
	// realized staleness bound, in the staleness_ms vocabulary of the
	// replication watermark. Zero before the first publish.
	PublishLagMs float64 `json:"publish_lag_ms"`
	// PerShard breaks depth and applied counts down by shard.
	PerShard []AsyncShardStats `json:"per_shard,omitempty"`
}

// queryableProfiler is what an epoch view must answer: the full read surface
// plus composite queries. Both *core.Profile and *Sharded satisfy it.
type queryableProfiler interface {
	Profiler
	Querier
}

// asyncRing pairs one producer×shard mailbox with the applier-side applied
// counter Flush compares against the ring's pushed counter.
type asyncRing[T any] struct {
	ring *mailbox.Ring[T]
	// applied counts this ring's events whose effect is in the profile
	// (bumped by the applier strictly after application).
	applied atomic.Uint64
	// closed marks the owning producer closed; the applier unregisters the
	// ring once it is also drained.
	closed atomic.Bool
}

// asyncApplier is one shard's single consumer goroutine.
type asyncApplier[T any] struct {
	plane *asyncPlane[T]
	shard int

	// rings is the copy-on-write registry of producer rings feeding this
	// shard: the applier loads it lock-free; registration swaps it under
	// regMu.
	rings atomic.Pointer[[]*asyncRing[T]]
	regMu sync.Mutex

	// wake is the producer→applier doorbell (buffered 1); producers only
	// touch it when sleeping says the applier parked, keeping the enqueue
	// hot path channel-free.
	wake     chan struct{}
	sleeping atomic.Bool

	// version counts applied drain batches that may have touched this
	// shard; published is the version the current epoch snapshot covers.
	// Flush's publish barrier waits for published >= version.
	version   atomic.Uint64
	published atomic.Uint64
	// force asks for an immediate publish (Flush, Close).
	force atomic.Bool
	// appliedEvents is this applier's total event count (stats).
	appliedEvents atomic.Uint64

	// scratch is the drain buffer; fills records how much of the current
	// batch came from each ring (for per-ring applied accounting);
	// sincePublish counts applied events since the last publish. All
	// applier-private.
	scratch      []T
	fills        []ringFill[T]
	sincePublish int
}

// ringFill attributes one slice of a drained batch to its source ring.
type ringFill[T any] struct {
	r *asyncRing[T]
	n int
}

// asyncPlane is the generic machinery shared by the dense Async and the
// keyed AsyncKeyed: rings, appliers, publish cadence, backpressure, flush
// and deferred-error bookkeeping. T is the event type (Tuple, KeyedTuple).
type asyncPlane[T any] struct {
	policy AsyncPolicy

	// apply ingests one drained batch, all routed to shard; it runs on that
	// shard's applier goroutine.
	apply func(shard int, items []T) error
	// publishShard captures shard's snapshot and installs the new epoch
	// view; always called under publishMu.
	publishShard func(shard int)
	// crossShard says an apply on shard i may mutate other shards too (the
	// keyed plane: stripe-local id eviction can borrow a dense id from a
	// neighbouring shard's range), so every applier's version advances on
	// every batch and Flush's publish barrier republishes every shard.
	crossShard bool
	// clearScratch is set when T holds pointers: drained batches must then
	// be zeroed after the apply so the scratch buffer does not pin key
	// strings. Pointer-free event types (dense tuples) skip the pass.
	clearScratch bool

	appliers []*asyncApplier[T]

	// publishMu serialises snapshot captures and view installs, so the
	// installed view is always built from the newest snapshot of every
	// shard (two racing publishers could otherwise install a view missing
	// the other's fresher shard). Producers never touch it.
	publishMu   sync.Mutex
	epoch       atomic.Uint64
	lastPublish atomic.Int64 // unix nanos of the newest publish

	producers atomic.Int64
	drops     atomic.Uint64
	waits     atomic.Uint64

	// errMu guards deferred, the first stream-dependent apply error (strict
	// violation, unknown key, journal failure) since the last Flush; Flush
	// returns and clears it.
	errMu    sync.Mutex
	deferred error

	closed    atomic.Bool // no new enqueues or producers
	stopped   atomic.Bool // appliers have exited
	stop      chan struct{}
	wg        sync.WaitGroup
	closeOnce sync.Once

	// unregister removes this plane from the metrics scrape aggregation.
	unregister func()
}

func newAsyncPlane[T any](nshards int, policy AsyncPolicy,
	apply func(shard int, items []T) error, publishShard func(shard int), crossShard bool) *asyncPlane[T] {
	pl := &asyncPlane[T]{
		policy:       policy.withDefaults(),
		apply:        apply,
		publishShard: publishShard,
		crossShard:   crossShard,
		clearScratch: mailbox.HoldsPointers[T](),
		stop:         make(chan struct{}),
	}
	pl.appliers = make([]*asyncApplier[T], nshards)
	for i := range pl.appliers {
		// The drain buffer is at least a few rings deep: batches fill
		// across all of a shard's producers, and larger apply windows mean
		// better coalescing and fewer WAL fsyncs under load.
		batch := pl.policy.MailboxDepth
		if batch < 4096 {
			batch = 4096
		}
		pl.appliers[i] = &asyncApplier[T]{
			plane:   pl,
			shard:   i,
			wake:    make(chan struct{}, 1),
			scratch: make([]T, batch),
		}
	}
	pl.unregister = registerAsyncPlane(pl.stats)
	return pl
}

func (pl *asyncPlane[T]) start() {
	for _, a := range pl.appliers {
		pl.wg.Add(1)
		a := a
		go pprof.Do(context.Background(), pprof.Labels("sprofile_plane", "applier"), func(context.Context) {
			a.run()
		})
	}
}

// recordErr keeps the first deferred apply error until the next Flush.
func (pl *asyncPlane[T]) recordErr(err error) {
	if err == nil {
		return
	}
	pl.errMu.Lock()
	if pl.deferred == nil {
		pl.deferred = err
	}
	pl.errMu.Unlock()
}

func (pl *asyncPlane[T]) takeErr() error {
	pl.errMu.Lock()
	err := pl.deferred
	pl.deferred = nil
	pl.errMu.Unlock()
	return err
}

// nudge rings the applier's doorbell without ever blocking.
func (a *asyncApplier[T]) nudge() {
	select {
	case a.wake <- struct{}{}:
	default:
	}
}

// bumpVersions marks the shards this batch may have dirtied.
func (a *asyncApplier[T]) bumpVersions() {
	if !a.plane.crossShard {
		a.version.Add(1)
		return
	}
	for _, other := range a.plane.appliers {
		other.version.Add(1)
	}
}

// drain consumes every ring until all are momentarily empty, applying in
// batches of up to cap(scratch); it returns how many events it applied.
// Each batch is filled across ALL of the shard's rings before it is applied,
// so concurrent producers share one coalescing window (and, on a durable
// profile, one WAL record and fsync) instead of paying one apply per ring.
func (a *asyncApplier[T]) drain() int {
	ringsp := a.rings.Load()
	if ringsp == nil {
		return 0
	}
	total := 0
	for {
		fill := 0
		a.fills = a.fills[:0]
		for _, r := range *ringsp {
			if fill == len(a.scratch) {
				break
			}
			if n := r.ring.Pop(a.scratch[fill:]); n > 0 {
				fill += n
				a.fills = append(a.fills, ringFill[T]{r: r, n: n})
			}
		}
		if fill == 0 {
			break
		}
		if err := a.plane.apply(a.shard, a.scratch[:fill]); err != nil {
			a.plane.recordErr(err)
		}
		if a.plane.clearScratch {
			// Drop element references (keyed tuples pin key strings).
			clear(a.scratch[:fill])
		}
		a.bumpVersions()
		// applied advances only after the apply completed, so Flush's
		// drain barrier implies the events' effects are visible.
		for _, f := range a.fills {
			f.r.applied.Add(uint64(f.n))
		}
		a.appliedEvents.Add(uint64(fill))
		mAsyncAppliedEvents.Add(uint64(fill))
		mAsyncApplierBatches.Inc()
		mAsyncBatchEvents.Observe(float64(fill))
		a.sincePublish += fill
		total += fill
		if a.sincePublish >= a.plane.policy.PublishEvents {
			a.publishNow()
		}
	}
	var dead []*asyncRing[T]
	for _, r := range *ringsp {
		if r.closed.Load() && r.ring.Len() == 0 {
			dead = append(dead, r)
		}
	}
	if dead != nil {
		a.unregister(dead)
	}
	return total
}

// publishNow captures this shard's snapshot and installs a new epoch view.
func (a *asyncApplier[T]) publishNow() {
	pl := a.plane
	// The version is read before the capture: applies racing with the
	// capture keep the shard dirty and trigger a re-publish next tick.
	v := a.version.Load()
	pl.publishMu.Lock()
	pl.publishShard(a.shard)
	pl.epoch.Add(1)
	pl.lastPublish.Store(time.Now().UnixNano())
	pl.publishMu.Unlock()
	mAsyncPublishes.Inc()
	a.published.Store(v)
	a.force.Store(false)
	a.sincePublish = 0
}

// dirty reports whether the current epoch is missing applied events of this
// shard.
func (a *asyncApplier[T]) dirty() bool {
	return a.version.Load() != a.published.Load()
}

// pending reports whether any ring holds work.
func (a *asyncApplier[T]) pending() bool {
	ringsp := a.rings.Load()
	if ringsp == nil {
		return false
	}
	for _, r := range *ringsp {
		if r.ring.Len() > 0 {
			return true
		}
	}
	return false
}

// run is the applier loop: run-to-completion draining, cadence-based
// publishing, parking on the doorbell/tick when idle.
func (a *asyncApplier[T]) run() {
	defer a.plane.wg.Done()
	tick := time.NewTicker(a.plane.policy.PublishInterval)
	defer tick.Stop()
	for {
		n := a.drain()
		if a.force.Load() {
			a.publishNow()
		}
		if n > 0 {
			// Busy: keep draining, but honour the staleness bound by
			// polling the tick between rounds.
			select {
			case <-tick.C:
				if a.dirty() {
					a.publishNow()
				}
			case <-a.plane.stop:
				a.shutdown()
				return
			default:
			}
			continue
		}
		// Momentarily idle: yield a few times before parking. On a busy
		// host the producers refill the rings as soon as they get the
		// CPU, and staying out of the park/doorbell round-trip (a channel
		// send plus a goroutine wakeup per cycle) keeps the drain loop
		// hot. Truly idle planes fall through and park as before.
		yielded := false
		for i := 0; i < 4; i++ {
			runtime.Gosched()
			if a.pending() || a.force.Load() {
				yielded = true
				break
			}
		}
		if yielded {
			continue
		}
		// Idle: park. Producers check sleeping before ringing the doorbell,
		// so the store must happen before the final emptiness recheck.
		a.sleeping.Store(true)
		if a.pending() || a.force.Load() {
			a.sleeping.Store(false)
			continue
		}
		select {
		case <-a.wake:
		case <-tick.C:
			if a.dirty() {
				a.publishNow()
			}
		case <-a.plane.stop:
			a.sleeping.Store(false)
			a.shutdown()
			return
		}
		a.sleeping.Store(false)
	}
}

// shutdown drains whatever raced in before the plane closed and publishes
// the final state.
func (a *asyncApplier[T]) shutdown() {
	for a.drain() > 0 {
	}
	if a.dirty() || a.force.Load() {
		a.publishNow()
	}
}

// unregister removes closed, drained rings from the registry.
func (a *asyncApplier[T]) unregister(dead []*asyncRing[T]) {
	a.regMu.Lock()
	defer a.regMu.Unlock()
	cur := a.rings.Load()
	if cur == nil {
		return
	}
	next := make([]*asyncRing[T], 0, len(*cur))
outer:
	for _, r := range *cur {
		for _, d := range dead {
			if r == d {
				continue outer
			}
		}
		next = append(next, r)
	}
	a.rings.Store(&next)
}

// register adds one ring to shard's applier.
func (a *asyncApplier[T]) register(r *asyncRing[T]) {
	a.regMu.Lock()
	defer a.regMu.Unlock()
	var cur []*asyncRing[T]
	if p := a.rings.Load(); p != nil {
		cur = *p
	}
	next := make([]*asyncRing[T], len(cur)+1)
	copy(next, cur)
	next[len(cur)] = r
	a.rings.Store(&next)
}

// asyncProducer is the generic half of a producer handle: one ring per
// shard. Handles are single-goroutine, like any Go value that is not
// documented otherwise; spawn one per producer goroutine (or rent from the
// wrapper's internal pool).
type asyncProducer[T any] struct {
	plane  *asyncPlane[T]
	rings  []*asyncRing[T]
	closed bool
}

func (pl *asyncPlane[T]) newProducer() (*asyncProducer[T], error) {
	if pl.closed.Load() {
		return nil, fmt.Errorf("%w: async ingest plane is closed", ErrReadOnly)
	}
	p := &asyncProducer[T]{plane: pl, rings: make([]*asyncRing[T], len(pl.appliers))}
	for i, a := range pl.appliers {
		r := &asyncRing[T]{ring: mailbox.New[T](pl.policy.MailboxDepth)}
		p.rings[i] = r
		a.register(r)
	}
	pl.producers.Add(1)
	return p, nil
}

// close retires the handle: its rings are drained then unregistered by the
// appliers.
func (p *asyncProducer[T]) close() {
	if p.closed {
		return
	}
	p.closed = true
	p.plane.producers.Add(-1)
	for i, r := range p.rings {
		r.closed.Store(true)
		p.plane.appliers[i].nudge()
	}
}

// push enqueues one event for shard, applying the backpressure policy on a
// full ring.
func (p *asyncProducer[T]) push(shard int, v T) error {
	pl := p.plane
	if p.closed || pl.closed.Load() {
		return fmt.Errorf("%w: async ingest plane is closed", ErrReadOnly)
	}
	r := p.rings[shard]
	a := pl.appliers[shard]
	if r.ring.Push(v) {
		if a.sleeping.Load() {
			a.nudge()
		}
		return nil
	}
	// Full: the applier is behind; wake it regardless of policy.
	a.nudge()
	if pl.policy.Backpressure == BackpressureError {
		pl.drops.Add(1)
		mAsyncDrops.Inc()
		return ErrBackpressure
	}
	pl.waits.Add(1)
	mAsyncWaits.Inc()
	for spins := 0; ; spins++ {
		if pl.closed.Load() {
			return fmt.Errorf("%w: async ingest plane is closed", ErrReadOnly)
		}
		if r.ring.Push(v) {
			if a.sleeping.Load() {
				a.nudge()
			}
			return nil
		}
		a.nudge()
		if spins < 64 {
			runtime.Gosched()
		} else {
			time.Sleep(20 * time.Microsecond)
		}
	}
}

// flush drains every mailbox, waits until the effects are applied, forces a
// publish of every dirty shard, and returns (clearing) the first deferred
// apply error recorded since the previous flush.
func (pl *asyncPlane[T]) flush() error {
	// Poll by yielding first: on few-core hosts runtime.Gosched hands the
	// CPU straight to the applier, so a flush of an almost-empty mailbox
	// completes in microseconds instead of a scheduler sleep quantum.
	wait := func(spins *int) {
		if *spins < 1024 {
			runtime.Gosched()
		} else {
			time.Sleep(20 * time.Microsecond)
		}
		*spins++
	}
	// Drain barrier: every event pushed before this flush is applied.
	for _, a := range pl.appliers {
		ringsp := a.rings.Load()
		if ringsp == nil {
			continue
		}
		for _, r := range *ringsp {
			want := r.ring.Pushed()
			for spins := 0; r.applied.Load() < want; {
				if pl.stopped.Load() {
					break
				}
				a.nudge()
				wait(&spins)
			}
		}
	}
	// Publish barrier: every applied event is visible to readers. The
	// version targets are read after the drain barrier, so they cover it.
	for _, a := range pl.appliers {
		v := a.version.Load()
		for spins := 0; a.published.Load() < v; {
			if pl.stopped.Load() {
				// Appliers are gone; publish the final state inline.
				pl.publishMu.Lock()
				pl.publishShard(a.shard)
				pl.epoch.Add(1)
				pl.lastPublish.Store(time.Now().UnixNano())
				pl.publishMu.Unlock()
				mAsyncPublishes.Inc()
				a.published.Store(v)
				break
			}
			a.force.Store(true)
			a.nudge()
			wait(&spins)
		}
	}
	return pl.takeErr()
}

// close stops ingestion: new enqueues fail, queued events are drained and
// published, appliers exit. Idempotent; returns the last deferred error.
func (pl *asyncPlane[T]) close() error {
	var err error
	pl.closeOnce.Do(func() {
		pl.closed.Store(true)
		err = pl.flush()
		close(pl.stop)
		for _, a := range pl.appliers {
			a.nudge()
		}
		pl.wg.Wait()
		pl.stopped.Store(true)
		pl.unregister()
	})
	return err
}

// stats assembles the observability snapshot.
func (pl *asyncPlane[T]) stats() AsyncStats {
	st := AsyncStats{
		Shards:    len(pl.appliers),
		Producers: int(pl.producers.Load()),
		Epoch:     pl.epoch.Load(),
		Drops:     pl.drops.Load(),
		Waits:     pl.waits.Load(),
	}
	if last := pl.lastPublish.Load(); last > 0 {
		st.PublishLagMs = float64(time.Now().UnixNano()-last) / 1e6
	}
	st.PerShard = make([]AsyncShardStats, len(pl.appliers))
	for i, a := range pl.appliers {
		ss := AsyncShardStats{Shard: i, Applied: a.appliedEvents.Load()}
		if ringsp := a.rings.Load(); ringsp != nil {
			for _, r := range *ringsp {
				ss.MailboxDepth += r.ring.Len()
			}
		}
		st.Applied += ss.Applied
		st.Queued += ss.MailboxDepth
		st.PerShard[i] = ss
	}
	return st
}

// Async wraps a dense-id profiler with the async ingest plane: updates are
// enqueued to per-shard SPSC mailboxes and applied by one goroutine per
// shard through the coalescing delta path; reads are answered from
// epoch-published immutable snapshots and never block on (or behind) writer
// locks. Build assembles one with WithAsyncIngest; NewAsync wraps an
// existing profiler.
//
// Semantics vs the synchronous variants, all documented consequences of the
// decoupling:
//
//   - Bounded staleness instead of read-your-write: a read reflects every
//     event up to some publish epoch at most ~PublishInterval behind the
//     applied frontier. Flush() drains and republishes, restoring
//     read-your-write for code (and tests) that needs exactness.
//   - Argument errors stay synchronous: Add/Remove/Apply/ApplyAll validate
//     object range and action at enqueue, exactly like the synchronous
//     path. Stream-dependent errors (a strict-mode violation) surface on
//     the next Flush (or Close) instead of at the failing call; the failing
//     event's drained batch is cut short at the error, mirroring the delta
//     path's first-error semantics.
//   - Concurrency: Async is safe for any number of producer and reader
//     goroutines. Update calls on Async itself rent a producer handle from
//     an internal pool; hot producers should hold their own handle
//     (Producer) for strict per-producer ordering and zero pool traffic.
type Async struct {
	inner Profiler
	// sharded is the routing/snapshot geometry when the (possibly
	// Durable-wrapped) inner profile is sharded; nil means one shard.
	sharded *Sharded
	snapper Snapshotter
	m       int

	plane *asyncPlane[Tuple]
	// snaps holds the newest per-shard snapshot; guarded by plane.publishMu.
	snaps []*core.Profile
	view  atomic.Pointer[queryableProfiler]

	// coalescers is the per-applier coalescing scratch (index = shard).
	coalescers []*Coalescer

	// pool recycles producer handles for the direct Updater methods.
	pool chan *AsyncProducer
}

// NewAsync wraps inner — any profiler with the DeltaUpdater and Snapshotter
// capabilities, including a *Durable over one — with the async ingest plane
// described on Async. The wrapped profiler must no longer be updated
// directly; queries on it remain safe but see only applied (not yet
// enqueued) state.
func NewAsync(inner Profiler, policy AsyncPolicy) (*Async, error) {
	if inner == nil {
		return nil, fmt.Errorf("%w: nil profiler", ErrBuildConfig)
	}
	if _, ok := inner.(DeltaUpdater); !ok {
		return nil, fmt.Errorf("%w: async ingest needs the DeltaUpdater capability; %T (a window adapter?) cannot apply coalesced batches", ErrBuildConfig, inner)
	}
	base := inner
	if d, ok := inner.(*Durable); ok {
		base = d.Unwrap()
	}
	a := &Async{inner: inner, m: inner.Cap()}
	nshards := 1
	if sh, ok := base.(*Sharded); ok {
		a.sharded = sh
		nshards = sh.Shards()
	} else if sn, ok := base.(Snapshotter); ok {
		a.snapper = sn
	} else {
		return nil, fmt.Errorf("%w: async ingest needs a Snapshotter to publish read snapshots; %T has none", ErrBuildConfig, base)
	}

	a.plane = newAsyncPlane[Tuple](nshards, policy, a.applyBatch, a.publishShard, false)
	a.coalescers = make([]*Coalescer, nshards)
	for i := range a.coalescers {
		c, err := NewCoalescer(a.m)
		if err != nil {
			return nil, err
		}
		a.coalescers[i] = c
	}
	a.snaps = make([]*core.Profile, nshards)
	// Publish the initial epoch so reads work before the first event.
	a.plane.publishMu.Lock()
	for i := 0; i < nshards; i++ {
		a.publishShard(i)
	}
	a.plane.publishMu.Unlock()
	a.pool = make(chan *AsyncProducer, 4*runtime.GOMAXPROCS(0))
	a.plane.start()
	return a, nil
}

// applyBatch ingests one drained batch (all objects in shard) through the
// adaptive coalescing path; ApplyCoalesced falls back to per-event ApplyAll
// when the batch does not dedup. On a *Durable inner, the whole batch is one
// WAL record and one group-commit fsync.
func (a *Async) applyBatch(shard int, items []Tuple) error {
	_, err := ApplyCoalesced(a.inner, a.coalescers[shard], items)
	return err
}

// publishShard installs a new epoch view containing shard's fresh snapshot;
// called under plane.publishMu.
func (a *Async) publishShard(shard int) {
	var v queryableProfiler
	if a.sharded != nil {
		a.snaps[shard] = a.sharded.cloneShard(shard)
		v = newShardedView(a.sharded, a.snaps)
	} else {
		snap, err := a.snapper.Snapshot()
		if err != nil {
			a.plane.recordErr(err)
			return
		}
		a.snaps[0] = snap
		v = snap
	}
	a.view.Store(&v)
}

// curView returns the current epoch's read view.
func (a *Async) curView() queryableProfiler {
	return *a.view.Load()
}

// shardOf routes object x (already range-checked) to its applier.
func (a *Async) shardOf(x int) int {
	if a.sharded == nil {
		return 0
	}
	return a.sharded.shardOf(x)
}

// checkRange validates an object id at enqueue time, keeping argument
// errors synchronous.
func (a *Async) checkRange(x int) error {
	if x < 0 || x >= a.m {
		return fmt.Errorf("%w: id %d, capacity %d", ErrObjectRange, x, a.m)
	}
	return nil
}

// Producer returns a dedicated producer handle: one lock-free mailbox per
// shard, single-goroutine, ordered per producer. Close it when the producer
// retires so its mailboxes can be reclaimed.
func (a *Async) Producer() (*AsyncProducer, error) {
	p, err := a.plane.newProducer()
	if err != nil {
		return nil, err
	}
	return &AsyncProducer{a: a, p: p}, nil
}

// withProducer rents a pooled handle for one call.
func (a *Async) withProducer(f func(*AsyncProducer) error) error {
	var p *AsyncProducer
	select {
	case p = <-a.pool:
	default:
		var err error
		p, err = a.Producer()
		if err != nil {
			return err
		}
	}
	err := f(p)
	select {
	case a.pool <- p:
	default:
		p.Close()
	}
	return err
}

// Add enqueues an "add" event for object x. Range errors are synchronous;
// the effect reaches readers within the bounded-staleness contract.
func (a *Async) Add(x int) error {
	return a.withProducer(func(p *AsyncProducer) error { return p.Add(x) })
}

// Remove enqueues a "remove" event for object x.
func (a *Async) Remove(x int) error {
	return a.withProducer(func(p *AsyncProducer) error { return p.Remove(x) })
}

// Apply enqueues one log tuple.
func (a *Async) Apply(t Tuple) error {
	return a.withProducer(func(p *AsyncProducer) error { return p.Apply(t) })
}

// ApplyAll enqueues tuples in order, stopping at the first invalid one; it
// returns the number of tuples enqueued. Like the synchronous batch paths,
// argument validation is per tuple and exact; apply-time errors (strict
// violations) surface on the next Flush.
func (a *Async) ApplyAll(tuples []Tuple) (int, error) {
	var n int
	err := a.withProducer(func(p *AsyncProducer) error {
		var err error
		n, err = p.ApplyAll(tuples)
		return err
	})
	return n, err
}

// Flush drains every producer mailbox, waits until every drained event is
// applied, republishes every dirty shard's snapshot, and returns the first
// deferred apply error since the last Flush. After Flush returns, reads see
// every event enqueued before it — the read-your-write escape hatch of the
// bounded-staleness contract, and what tests (and Checkpoint callers
// wanting an inclusive cut) use.
func (a *Async) Flush() error { return a.plane.flush() }

// Close drains and stops the ingest plane, then closes the wrapped profiler
// (flushing its WAL, for a *Durable). Further updates fail; reads keep
// answering from the final published epoch.
func (a *Async) Close() error {
	err := a.plane.close()
	if c, ok := a.inner.(interface{ Close() error }); ok {
		if cerr := c.Close(); err == nil {
			err = cerr
		}
	}
	return err
}

// Sync flushes the wrapped profiler's write-ahead log, if it has one. It
// does NOT drain the mailboxes; call Flush first for an inclusive cut.
func (a *Async) Sync() error {
	if s, ok := a.inner.(interface{ Sync() error }); ok {
		return s.Sync()
	}
	return nil
}

// Checkpoint forwards to the wrapped *Durable's Checkpoint. The appliers
// mutate the profile under the Durable's update mutex, so the snapshot is
// always an exact cut of the applied stream; call Flush first when the
// checkpoint must also cover everything enqueued so far.
func (a *Async) Checkpoint() error {
	if d, ok := a.inner.(*Durable); ok {
		return d.Checkpoint()
	}
	return fmt.Errorf("%w (wrapped profiler is %T)", errNoWAL, a.inner)
}

// Inner returns the wrapped profiler. Updating it directly bypasses the
// mailboxes and must be avoided.
func (a *Async) Inner() Profiler { return a.inner }

// Stats returns the plane's observability snapshot.
func (a *Async) Stats() AsyncStats { return a.plane.stats() }

// Epoch returns the current publish epoch (total snapshot installs).
func (a *Async) Epoch() uint64 { return a.plane.epoch.Load() }

// The read surface: every query answers from the current epoch snapshot.

// Count returns the frequency of object x in the current epoch.
func (a *Async) Count(x int) (int64, error) {
	if err := a.checkRange(x); err != nil {
		return 0, err
	}
	return a.curView().Count(x)
}

// Mode returns a maximum-frequency object of the current epoch.
func (a *Async) Mode() (Entry, int, error) { return a.curView().Mode() }

// Min returns a minimum-frequency object of the current epoch.
func (a *Async) Min() (Entry, int, error) { return a.curView().Min() }

// TopK returns the k most frequent entries of the current epoch.
func (a *Async) TopK(k int) []Entry { return a.curView().TopK(k) }

// BottomK returns the k least frequent entries of the current epoch.
func (a *Async) BottomK(k int) []Entry { return a.curView().BottomK(k) }

// KthLargest returns the entry holding the k-th largest frequency.
func (a *Async) KthLargest(k int) (Entry, error) { return a.curView().KthLargest(k) }

// Median returns the lower-median entry.
func (a *Async) Median() (Entry, error) { return a.curView().Median() }

// Quantile returns the entry at quantile q in [0, 1].
func (a *Async) Quantile(q float64) (Entry, error) { return a.curView().Quantile(q) }

// Majority returns the strict-majority object, if one exists.
func (a *Async) Majority() (Entry, bool, error) { return a.curView().Majority() }

// Distribution returns the frequency histogram of the current epoch.
func (a *Async) Distribution() []FreqCount { return a.curView().Distribution() }

// Summarize returns aggregate statistics of the current epoch.
func (a *Async) Summarize() Summary { return a.curView().Summarize() }

// Query answers a composite query atomically against ONE epoch snapshot —
// the one-cut invariants of the query plane hold, and the evaluation never
// blocks ingestion (nor is blocked by it).
func (a *Async) Query(q Query) (QueryResult, error) { return a.curView().Query(q) }

// Cap returns the number of object slots.
func (a *Async) Cap() int { return a.m }

// Total returns the sum of all frequencies in the current epoch.
func (a *Async) Total() int64 { return a.curView().Total() }

// AsyncProducer is a dense producer handle: lock-free enqueues routed by
// shard, strictly ordered per handle. Handles are single-goroutine.
type AsyncProducer struct {
	a *Async
	p *asyncProducer[Tuple]
}

// Add enqueues an "add" event for object x.
func (p *AsyncProducer) Add(x int) error {
	if err := p.a.checkRange(x); err != nil {
		return err
	}
	return p.p.push(p.a.shardOf(x), Tuple{Object: x, Action: ActionAdd})
}

// Remove enqueues a "remove" event for object x.
func (p *AsyncProducer) Remove(x int) error {
	if err := p.a.checkRange(x); err != nil {
		return err
	}
	return p.p.push(p.a.shardOf(x), Tuple{Object: x, Action: ActionRemove})
}

// Apply enqueues one log tuple.
func (p *AsyncProducer) Apply(t Tuple) error {
	if !t.Action.Valid() {
		return errInvalidAction(t.Action)
	}
	if err := p.a.checkRange(t.Object); err != nil {
		return err
	}
	return p.p.push(p.a.shardOf(t.Object), t)
}

// ApplyAll enqueues tuples in order, stopping at the first invalid one (or
// the first backpressure rejection); it returns how many were enqueued.
func (p *AsyncProducer) ApplyAll(tuples []Tuple) (int, error) {
	for i, t := range tuples {
		if err := p.Apply(t); err != nil {
			return i, err
		}
	}
	return len(tuples), nil
}

// Close retires the handle; its mailboxes are drained, then reclaimed.
func (p *AsyncProducer) Close() error {
	p.p.close()
	return nil
}
