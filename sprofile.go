// Package sprofile is a Go implementation of S-Profile, the O(1)-per-update
// algorithm for profiling dynamic arrays with finite values from
//
//	Dingcheng Yang, Wenjian Yu, Junhui Deng, Shenghua Liu.
//	"Optimal Algorithm for Profiling Dynamic Arrays with Finite Values."
//	EDBT 2019 (arXiv:1812.05306).
//
// A profile tracks the frequencies of up to m distinct objects under a log
// stream of (object, add|remove) events — users following each other, likes
// and dislikes, channel joins and leaves — and keeps the whole frequency
// multiset sorted at a constant cost per event. Once profiled, the mode
// (most popular object), the top-K, the median, arbitrary quantiles, the
// majority element and the full frequency distribution are all available in
// O(1) (O(K) for top-K, O(#distinct frequencies) for the distribution).
//
// All profile variants satisfy one exported contract — Updater for
// ingestion, Reader for queries, Profiler for both — and are assembled from
// declared capabilities with Build:
//
//	p, err := sprofile.Build(m)                            // plain Profile
//	p, err := sprofile.Build(m, sprofile.Synchronized())   // mutex-protected
//	p, err := sprofile.Build(m, sprofile.WithSharding(16)) // per-shard locks
//	p, err := sprofile.Build(m, sprofile.Windowed(100_000))
//	p, err := sprofile.Build(m, sprofile.WithWAL("events.wal"))
//
// Composite reads go through the query plane: one Query selects any subset
// of the statistics and every variant answers it atomically from a single
// consistent cut (see Querier, KeyedQuery and QueryProfiler), and all
// operational errors resolve via errors.Is to a typed taxonomy (see the
// error sentinels in errors.go). The same plane is served over HTTP by
// internal/server's POST /v1/query and consumed by the sprofile/client SDK.
//
// Code written against Profiler never changes when the representation does.
// The concrete constructors remain for callers that need a variant's extra
// methods: New for the raw dense-id profile (object ids are integers in
// [0, m)), NewKeyed for arbitrary comparable keys (user names, URLs, int64
// ids, optionally over any Build result via NewKeyedOver), NewConcurrent,
// NewSharded, NewWindow and NewTimeWindow. See README.md for the full
// interface documentation and the migration table from the constructor-based
// API.
//
// The subdirectories contain the full evaluation apparatus used to reproduce
// the paper's experiments: baseline profilers (indexed heap, order-statistic
// trees, Fenwick index, bucket scan), synthetic log-stream generators, a
// sliding-window adapter, a graph-shaving application and the benchmark
// harness behind cmd/sprofile-bench, plus the conformance suite
// (profilertest) every Profiler implementation is tested against.
package sprofile

import (
	"io"

	"sprofile/internal/core"
)

// Action says whether a log tuple adds or removes one occurrence of an
// object.
type Action = core.Action

// Re-exported action values.
const (
	// ActionAdd increments an object's frequency by one.
	ActionAdd = core.ActionAdd
	// ActionRemove decrements an object's frequency by one.
	ActionRemove = core.ActionRemove
)

// Tuple is one log-stream event: an object id and an action.
type Tuple = core.Tuple

// Entry pairs an object id with its frequency in query results.
type Entry = core.Entry

// FreqCount is one histogram bucket of the frequency distribution.
type FreqCount = core.FreqCount

// Delta is the net effect of a coalesced run of events on one object: the
// net frequency change plus the gross add/remove counts it folds together.
// See DeltaUpdater for the profiles that can apply one.
type Delta = core.Delta

// Coalescer folds a tuple batch into net per-object deltas with reusable,
// allocation-free scratch buffers; pair it with a DeltaUpdater's ApplyDeltas
// for the batch ingestion fast path.
type Coalescer = core.Coalescer

// NewCoalescer returns a Coalescer for object ids in [0, m).
func NewCoalescer(m int) (*Coalescer, error) { return core.NewCoalescer(m) }

// Summary is a snapshot of a profile's aggregate statistics.
type Summary = core.Summary

// Profile is the S-Profile data structure over dense object ids in [0, m).
// See the core package for the full method set: Add, Remove, Apply, Mode,
// ModeAll, Min, TopK, BottomK, KthLargest, KthSmallest, Median, Quantile,
// Majority, Distribution, Count, Rank, Summarize, snapshots and more.
type Profile = core.Profile

// Option configures a Profile.
type Option = core.Option

// WithStrictNonNegative makes Remove fail instead of letting a frequency drop
// below zero. Use it when objects can only be removed after being added
// (e.g. unfollow events always follow a follow event).
func WithStrictNonNegative() Option { return core.WithStrictNonNegative() }

// WithBlockHint pre-sizes the internal block slab; useful when the number of
// distinct frequency values is roughly known in advance.
func WithBlockHint(hint int) Option { return core.WithBlockHint(hint) }

// New returns an S-Profile over m dense object ids (0..m-1), all starting at
// frequency zero. Updates cost O(1) worst case; memory is O(m).
func New(m int, opts ...Option) (*Profile, error) { return core.New(m, opts...) }

// MustNew is New for callers with a known-good capacity; it panics on error.
func MustNew(m int, opts ...Option) *Profile { return core.MustNew(m, opts...) }

// FromFrequencies builds a profile whose object x starts with frequency
// freqs[x]; it costs O(m log m) once instead of replaying every event.
func FromFrequencies(freqs []int64, opts ...Option) (*Profile, error) {
	return core.FromFrequencies(freqs, opts...)
}

// ReadSnapshot restores a profile previously saved with Profile.WriteSnapshot.
func ReadSnapshot(r io.Reader) (*Profile, error) { return core.ReadSnapshot(r) }
