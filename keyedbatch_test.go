package sprofile_test

import (
	"errors"
	"fmt"
	"math/rand"
	"path/filepath"
	"runtime"
	"sync"
	"testing"

	"sprofile"
)

// denseProfiler unwraps the writable dense profiler behind the read-only
// view Profile() returns.
func denseProfiler[K comparable](k sprofile.KeyedProfiler[K]) sprofile.Profiler {
	return k.Profile().(*sprofile.ReadOnlyProfiler).Unwrap()
}

// TestBuildKeyedSingleCoreDefaultsToOneStripe pins the adaptive default:
// with GOMAXPROCS=1 and Shards unset, BuildKeyed must pick a single
// shard/stripe so single-core ingest does not pay the striping overhead.
func TestBuildKeyedSingleCoreDefaultsToOneStripe(t *testing.T) {
	old := runtime.GOMAXPROCS(1)
	defer runtime.GOMAXPROCS(old)
	k := sprofile.MustBuildKeyed[string](100)
	sh, ok := denseProfiler(k).(*sprofile.Sharded)
	if !ok {
		t.Fatalf("BuildKeyed built a %T dense profile", denseProfiler(k))
	}
	if sh.Shards() != 1 {
		t.Fatalf("GOMAXPROCS=1 host got %d shards, want 1", sh.Shards())
	}
	// An explicit WithSharding always wins over the adaptive default.
	k4 := sprofile.MustBuildKeyed[string](100, sprofile.WithSharding(4))
	if got := denseProfiler(k4).(*sprofile.Sharded).Shards(); got != 4 {
		t.Fatalf("explicit sharding got %d shards, want 4", got)
	}
}

// randKeyedEvents draws n events over pool keys. When strictSafe is set a
// key is only removed while its running count is positive, so per-event and
// batched application agree even under strict non-negativity; otherwise a
// key may go negative, but its first-ever event is still an add (the
// per-event path rejects removes of unknown keys).
func randKeyedEvents(rng *rand.Rand, pool []string, n int, strictSafe bool, seen map[string]bool) []sprofile.KeyedTuple[string] {
	counts := map[string]int{}
	out := make([]sprofile.KeyedTuple[string], 0, n)
	for len(out) < n {
		key := pool[rng.Intn(len(pool))]
		removable := seen[key]
		if strictSafe {
			removable = counts[key] > 0
		}
		if rng.Intn(2) == 0 || !removable {
			counts[key]++
			seen[key] = true
			out = append(out, sprofile.KeyedTuple[string]{Key: key, Action: sprofile.ActionAdd})
		} else {
			counts[key]--
			out = append(out, sprofile.KeyedTuple[string]{Key: key, Action: sprofile.ActionRemove})
		}
	}
	return out
}

// TestKeyedApplyBatchMatchesPerEvent drives the same random event stream
// through ApplyBatch and through per-event Apply and requires identical
// per-key counts, counters and tracked sets.
func TestKeyedApplyBatchMatchesPerEvent(t *testing.T) {
	for _, shards := range []int{1, 4} {
		for _, recycle := range []bool{true, false} {
			t.Run(fmt.Sprintf("shards=%d,recycle=%v", shards, recycle), func(t *testing.T) {
				testKeyedBatchEquivalence(t, shards, recycle)
			})
		}
	}
}

func testKeyedBatchEquivalence(t *testing.T, shards int, recycle bool) {
	pool := make([]string, 40)
	for i := range pool {
		pool[i] = fmt.Sprintf("key-%03d", i)
	}
	opts := []sprofile.BuildOption{sprofile.WithSharding(shards)}
	if !recycle {
		// Without recycling, frequencies may go negative; the stream only
		// guarantees each key's first-ever event is an add.
		opts = append(opts, sprofile.WithoutKeyRecycling())
	}
	batched := sprofile.MustBuildKeyed[string](64, opts...)
	perEvent := sprofile.MustBuildKeyed[string](64, opts...)
	rng := rand.New(rand.NewSource(42))
	seen := map[string]bool{}
	negativeSeen := false
	for round := 0; round < 30; round++ {
		events := randKeyedEvents(rng, pool, 1+rng.Intn(300), recycle, seen)
		applied, err := batched.ApplyBatch(events)
		if err != nil {
			t.Fatalf("round %d: ApplyBatch: %v", round, err)
		}
		if applied != len(events) {
			t.Fatalf("round %d: applied %d of %d events", round, applied, len(events))
		}
		for _, e := range events {
			if err := perEvent.Apply(e.Key, e.Action); err != nil {
				t.Fatalf("round %d: Apply: %v", round, err)
			}
		}
		for _, key := range pool {
			fb, _ := batched.Count(key)
			fp, _ := perEvent.Count(key)
			if fb != fp {
				t.Fatalf("round %d: key %s at %d batched vs %d per-event", round, key, fb, fp)
			}
			if fb < 0 {
				negativeSeen = true
			}
		}
		sb, sp := batched.Summarize(), perEvent.Summarize()
		if sb != sp {
			t.Fatalf("round %d: summaries diverge:\n batched  %+v\n perEvent %+v", round, sb, sp)
		}
		if batched.Tracked() != perEvent.Tracked() {
			t.Fatalf("round %d: tracked %d vs %d", round, batched.Tracked(), perEvent.Tracked())
		}
	}
	if !recycle && !negativeSeen {
		t.Fatal("non-recycling workload never drove a frequency negative; weak test")
	}
}

// TestKeyedApplyBatchCancelledKeyIsEvictable: a key whose batch nets to zero
// must end tracked at frequency zero and be recyclable, exactly like the
// per-event sequence.
func TestKeyedApplyBatchCancelledKeyIsEvictable(t *testing.T) {
	k := sprofile.MustBuildKeyed[string](2, sprofile.WithSharding(1))
	if _, err := k.ApplyBatch([]sprofile.KeyedTuple[string]{
		{Key: "transient", Action: sprofile.ActionAdd},
		{Key: "transient", Action: sprofile.ActionRemove},
		{Key: "held", Action: sprofile.ActionAdd},
	}); err != nil {
		t.Fatal(err)
	}
	if k.Tracked() != 2 {
		t.Fatalf("tracked %d, want 2", k.Tracked())
	}
	// The profile is full; a new key must evict the idle "transient".
	if err := k.Add("newcomer"); err != nil {
		t.Fatalf("eviction of the cancelled key failed: %v", err)
	}
	if f, _ := k.Count("transient"); f != 0 {
		t.Fatalf("evicted key reports %d", f)
	}
	if f, _ := k.Count("held"); f != 1 {
		t.Fatalf("held key at %d", f)
	}
}

func TestKeyedApplyBatchErrors(t *testing.T) {
	k := sprofile.MustBuildKeyed[string](8, sprofile.WithSharding(2))
	// Net-negative delta for an unknown key fails like Remove.
	applied, err := k.ApplyBatch([]sprofile.KeyedTuple[string]{
		{Key: "ghost", Action: sprofile.ActionRemove},
	})
	if !errors.Is(err, sprofile.ErrUnknownKey) {
		t.Fatalf("unknown key: %v", err)
	}
	if applied != 0 {
		t.Fatalf("applied %d events of a failing batch", applied)
	}
	// An invalid action rejects the batch before anything applies.
	applied, err = k.ApplyBatch([]sprofile.KeyedTuple[string]{
		{Key: "a", Action: sprofile.ActionAdd},
		{Key: "b", Action: sprofile.Action(9)},
	})
	if err == nil || applied != 0 {
		t.Fatalf("invalid action: applied=%d err=%v", applied, err)
	}
	if f, _ := k.Count("a"); f != 0 {
		t.Fatalf("rejected batch applied key a: %d", f)
	}
	// A remove-first unknown key errors like the per-event path, even when
	// the batch nets positive...
	if _, err = k.ApplyBatch([]sprofile.KeyedTuple[string]{
		{Key: "x", Action: sprofile.ActionRemove},
		{Key: "x", Action: sprofile.ActionAdd},
		{Key: "x", Action: sprofile.ActionAdd},
	}); !errors.Is(err, sprofile.ErrUnknownKey) {
		t.Fatalf("remove-first batch: %v", err)
	}
	// ...but once the key is known, strict non-negativity applies to the net
	// delta, so a remove-first batch that nets positive succeeds.
	if err := k.Add("x"); err != nil {
		t.Fatal(err)
	}
	if _, err := k.ApplyBatch([]sprofile.KeyedTuple[string]{
		{Key: "x", Action: sprofile.ActionRemove},
		{Key: "x", Action: sprofile.ActionRemove},
		{Key: "x", Action: sprofile.ActionAdd},
		{Key: "x", Action: sprofile.ActionAdd},
		{Key: "x", Action: sprofile.ActionAdd},
	}); err != nil {
		t.Fatalf("net-positive batch on a known key: %v", err)
	}
	if f, _ := k.Count("x"); f != 2 {
		t.Fatalf("key x at %d, want 2", f)
	}
}

// TestKeyedApplyBatchFirstActionDecidesAcquire pins the per-event acquire
// rule on the batch path: an unknown key is acquired exactly when its first
// event in the batch is an add — so a WithoutKeyRecycling stream that adds
// then over-removes a fresh key coalesces to a negative frequency instead of
// failing, while a remove-first unknown key still errors.
func TestKeyedApplyBatchFirstActionDecidesAcquire(t *testing.T) {
	k := sprofile.MustBuildKeyed[string](8, sprofile.WithoutKeyRecycling())
	applied, err := k.ApplyBatch([]sprofile.KeyedTuple[string]{
		{Key: "debtor", Action: sprofile.ActionAdd},
		{Key: "debtor", Action: sprofile.ActionRemove},
		{Key: "debtor", Action: sprofile.ActionRemove},
	})
	if err != nil || applied != 3 {
		t.Fatalf("add-first over-remove: applied=%d err=%v", applied, err)
	}
	if f, _ := k.Count("debtor"); f != -1 {
		t.Fatalf("debtor at %d, want -1", f)
	}
	// Remove-first on an unknown key fails like per-event Remove would,
	// even though the batch nets positive.
	if _, err := k.ApplyBatch([]sprofile.KeyedTuple[string]{
		{Key: "ghost", Action: sprofile.ActionRemove},
		{Key: "ghost", Action: sprofile.ActionAdd},
		{Key: "ghost", Action: sprofile.ActionAdd},
	}); !errors.Is(err, sprofile.ErrUnknownKey) {
		t.Fatalf("remove-first unknown key: %v", err)
	}
	if f, _ := k.Count("ghost"); f != 0 || k.Tracked() != 1 {
		t.Fatalf("failed entry left state: ghost=%d tracked=%d", f, k.Tracked())
	}
}

func TestKeyedApplyDeltaSingleKey(t *testing.T) {
	k := sprofile.MustBuildKeyed[string](8)
	if err := k.ApplyDelta("hot", 500, 2); err != nil {
		t.Fatal(err)
	}
	if f, _ := k.Count("hot"); f != 498 {
		t.Fatalf("hot at %d, want 498", f)
	}
	s := k.Summarize()
	if s.Adds != 500 || s.Removes != 2 {
		t.Fatalf("counters (%d,%d), want (500,2)", s.Adds, s.Removes)
	}
	if err := k.ApplyDelta("hot", 0, 498); err != nil {
		t.Fatal(err)
	}
	if err := k.ApplyDelta("hot", 0, 1); !errors.Is(err, sprofile.ErrNegativeFrequency) {
		t.Fatalf("net-negative under recycling: %v", err)
	}
	if err := k.ApplyDelta("nobody", 0, 0); err != nil {
		t.Fatalf("no-op delta: %v", err)
	}
	if k.Tracked() != 1 {
		t.Fatalf("no-op delta tracked a key: %d", k.Tracked())
	}
}

// TestKeyedApplyBatchDurable round-trips batch-journaled state through a
// restart, including keys whose events cancelled out.
func TestKeyedApplyBatchDurable(t *testing.T) {
	dir := filepath.Join(t.TempDir(), "wal")
	k, err := sprofile.BuildKeyed[string](32, sprofile.WithSharding(4), sprofile.WithWAL(dir))
	if err != nil {
		t.Fatal(err)
	}
	events := []sprofile.KeyedTuple[string]{
		{Key: "alpha", Action: sprofile.ActionAdd},
		{Key: "beta", Action: sprofile.ActionAdd},
		{Key: "alpha", Action: sprofile.ActionAdd},
		{Key: "gone", Action: sprofile.ActionAdd},
		{Key: "gone", Action: sprofile.ActionRemove},
	}
	if _, err := k.ApplyBatch(events); err != nil {
		t.Fatal(err)
	}
	if err := k.ApplyDelta("alpha", 10, 0); err != nil {
		t.Fatal(err)
	}
	before := k.Summarize()
	if err := k.Close(); err != nil {
		t.Fatal(err)
	}

	k2, err := sprofile.BuildKeyed[string](32, sprofile.WithSharding(4), sprofile.WithWAL(dir))
	if err != nil {
		t.Fatal(err)
	}
	defer k2.Close()
	for key, want := range map[string]int64{"alpha": 12, "beta": 1, "gone": 0} {
		if f, _ := k2.Count(key); f != want {
			t.Fatalf("key %s recovered at %d, want %d", key, f, want)
		}
	}
	if after := k2.Summarize(); after != before {
		t.Fatalf("summary diverged:\n before %+v\n after  %+v", before, after)
	}
	// The cancelled key is still tracked (it was acquired), like per-event.
	if k2.Tracked() != 3 {
		t.Fatalf("tracked %d keys after recovery, want 3", k2.Tracked())
	}
}

// TestKeyedApplyBatchConcurrentChurn hammers ApplyBatch from several
// goroutines together with per-event traffic and queries under -race, with a
// capacity small enough to force recycling collisions.
func TestKeyedApplyBatchConcurrentChurn(t *testing.T) {
	k := sprofile.MustBuildKeyed[string](16, sprofile.WithSharding(4))
	pool := make([]string, 64)
	for i := range pool {
		pool[i] = fmt.Sprintf("churn-%02d", i)
	}
	var wg sync.WaitGroup
	for g := 0; g < 8; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			rng := rand.New(rand.NewSource(int64(g)))
			for i := 0; i < 200; i++ {
				switch g % 3 {
				case 0: // batch writer: add then fully remove a few keys
					var events []sprofile.KeyedTuple[string]
					for j := 0; j < 8; j++ {
						key := pool[rng.Intn(len(pool))]
						events = append(events,
							sprofile.KeyedTuple[string]{Key: key, Action: sprofile.ActionAdd},
							sprofile.KeyedTuple[string]{Key: key, Action: sprofile.ActionRemove})
					}
					if _, err := k.ApplyBatch(events); err != nil && !errors.Is(err, sprofile.ErrKeyedFull) {
						t.Errorf("ApplyBatch: %v", err)
						return
					}
				case 1: // per-event writer
					key := pool[rng.Intn(len(pool))]
					if err := k.Add(key); err != nil && !errors.Is(err, sprofile.ErrKeyedFull) {
						t.Errorf("Add: %v", err)
						return
					}
					_ = k.Remove(key)
				default: // reader
					_, _, _ = k.Mode()
					_ = k.TopK(4)
					_, _ = k.Count(pool[rng.Intn(len(pool))])
					_ = k.Summarize()
				}
			}
		}(g)
	}
	wg.Wait()
	// Sanity: the dense profile's invariants survived the churn.
	s, ok := k.Profile().(sprofile.Snapshotter)
	if !ok {
		t.Fatalf("%T lost the Snapshotter capability", k.Profile())
	}
	snap, err := s.Snapshot()
	if err != nil {
		t.Fatal(err)
	}
	if err := snap.CheckInvariants(); err != nil {
		t.Fatal(err)
	}
}
