package sprofile

import (
	"errors"
	"fmt"
	"testing"
)

// pathSpy records which ingestion path ApplyCoalesced picked.
type pathSpy struct {
	*Profile
	applyAllCalls   int
	applyDeltaCalls int
}

func (s *pathSpy) ApplyAll(tuples []Tuple) (int, error) {
	s.applyAllCalls++
	return s.Profile.ApplyAll(tuples)
}

func (s *pathSpy) ApplyDeltas(deltas []Delta) (int, error) {
	s.applyDeltaCalls++
	return s.Profile.ApplyDeltas(deltas)
}

// TestApplyCoalescedPathSelection pins the adaptive routing: skewed batches
// (hot keys repeat, deltas ≪ tuples) take the delta path; uniform batches
// (every tuple a distinct object, no dedup) fall back to per-event ApplyAll
// — the fix for the 0.53–0.59x uniform-dense regression BENCH_batch.json
// recorded.
func TestApplyCoalescedPathSelection(t *testing.T) {
	const m = 1024
	newSpy := func() (*pathSpy, *Coalescer) {
		p, err := New(m)
		if err != nil {
			t.Fatal(err)
		}
		c, err := NewCoalescer(m)
		if err != nil {
			t.Fatal(err)
		}
		return &pathSpy{Profile: p}, c
	}

	t.Run("skewed takes delta path", func(t *testing.T) {
		spy, c := newSpy()
		// 1000 tuples over 10 hot objects: 100x dedup.
		batch := make([]Tuple, 1000)
		for i := range batch {
			batch[i] = Tuple{Object: i % 10, Action: ActionAdd}
		}
		n, err := ApplyCoalesced(spy, c, batch)
		if err != nil || n != len(batch) {
			t.Fatalf("ApplyCoalesced = %d, %v; want %d, nil", n, err, len(batch))
		}
		if spy.applyDeltaCalls != 1 || spy.applyAllCalls != 0 {
			t.Fatalf("path = %d delta / %d all calls, want 1 / 0", spy.applyDeltaCalls, spy.applyAllCalls)
		}
	})

	t.Run("uniform falls back to ApplyAll", func(t *testing.T) {
		spy, c := newSpy()
		// Every tuple a distinct object: coalescing buys nothing.
		batch := make([]Tuple, m)
		for i := range batch {
			batch[i] = Tuple{Object: i, Action: ActionAdd}
		}
		n, err := ApplyCoalesced(spy, c, batch)
		if err != nil || n != len(batch) {
			t.Fatalf("ApplyCoalesced = %d, %v; want %d, nil", n, err, len(batch))
		}
		if spy.applyAllCalls != 1 || spy.applyDeltaCalls != 0 {
			t.Fatalf("path = %d delta / %d all calls, want 0 / 1", spy.applyDeltaCalls, spy.applyAllCalls)
		}
	})

	t.Run("threshold boundary", func(t *testing.T) {
		// 10 tuples → 9 deltas deduplicates exactly 10%: worth it.
		if !coalesceWorthIt(9, 10) {
			t.Error("coalesceWorthIt(9, 10) = false, want true")
		}
		// 10 tuples → 10 deltas (pure uniform): not worth it.
		if coalesceWorthIt(10, 10) {
			t.Error("coalesceWorthIt(10, 10) = true, want false")
		}
		if !coalesceWorthIt(0, 0) {
			t.Error("coalesceWorthIt(0, 0) = false, want true")
		}
	})

	t.Run("invalid batch keeps exact prefix semantics", func(t *testing.T) {
		spy, c := newSpy()
		batch := []Tuple{
			{Object: 1, Action: ActionAdd},
			{Object: m + 5, Action: ActionAdd}, // out of range
			{Object: 2, Action: ActionAdd},
		}
		n, err := ApplyCoalesced(spy, c, batch)
		if !errors.Is(err, ErrObjectRange) {
			t.Fatalf("err = %v, want ErrObjectRange", err)
		}
		if n != 1 {
			t.Fatalf("applied prefix = %d, want 1", n)
		}
		if spy.applyAllCalls != 1 {
			t.Fatalf("invalid batch must route through ApplyAll for prefix exactness; %d calls", spy.applyAllCalls)
		}
	})

	t.Run("no delta capability falls back", func(t *testing.T) {
		p, err := New(m)
		if err != nil {
			t.Fatal(err)
		}
		w, err := NewWindow(p, 1<<20)
		if err != nil {
			t.Fatal(err)
		}
		c, _ := NewCoalescer(m)
		n, err := ApplyCoalesced(w, c, []Tuple{{Object: 3, Action: ActionAdd}})
		if err != nil || n != 1 {
			t.Fatalf("ApplyCoalesced(window) = %d, %v; want 1, nil", n, err)
		}
		if got, _ := w.Count(3); got != 1 {
			t.Fatalf("Count(3) = %d, want 1", got)
		}
	})
}

// BenchmarkApplyCoalesced pins the parity acceptance of the fallback: on
// uniform batches ApplyCoalesced must track plain per-event ApplyAll within
// a few percent (it pays one wasted Coalesce pass, amortised over the
// batch), while on skewed batches it keeps the delta path's win. Compare:
//
//	go test -bench 'ApplyCoalesced|ApplyAllBaseline' -benchtime 2s
func BenchmarkApplyCoalesced(b *testing.B) {
	const m = 1 << 16
	shapes := []struct {
		name string
		mk   func() []Tuple
	}{
		{"uniform-64k", func() []Tuple {
			batch := make([]Tuple, m)
			for i := range batch {
				batch[i] = Tuple{Object: i, Action: ActionAdd}
			}
			return batch
		}},
		{"skewed-64k-256hot", func() []Tuple {
			// 256 hot objects repeating throughout (as real skew does), so
			// the dedup is visible within the decision sample.
			batch := make([]Tuple, m)
			for i := range batch {
				batch[i] = Tuple{Object: i % 256, Action: ActionAdd}
			}
			return batch
		}},
	}
	for _, shape := range shapes {
		batch := shape.mk()
		b.Run(fmt.Sprintf("coalesced/%s", shape.name), func(b *testing.B) {
			p, _ := New(m)
			c, _ := NewCoalescer(m)
			b.SetBytes(int64(len(batch)))
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				if _, err := ApplyCoalesced(p, c, batch); err != nil {
					b.Fatal(err)
				}
			}
		})
		b.Run(fmt.Sprintf("applyall/%s", shape.name), func(b *testing.B) {
			p, _ := New(m)
			b.SetBytes(int64(len(batch)))
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				if _, err := p.ApplyAll(batch); err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}
