package sprofile_test

import (
	"fmt"
	"os"
	"path/filepath"
	"testing"
	"time"

	"sprofile"
	"sprofile/profilertest"
)

// TestProfilerConformance runs the shared conformance battery against every
// sprofile.Profiler implementation in the package, so all variants are held
// to exactly the same update/query/error semantics. Sharded and Concurrent
// answers are cross-checked against a plain Profile on the same stream by the
// suite itself.
func TestProfilerConformance(t *testing.T) {
	// Window sizes larger than any stream the suite replays: the windowed
	// profile then holds the whole stream and must agree with the reference.
	const conformanceWindow = 1 << 20

	profilertest.Run(t, "Profile", func(m int, opts ...sprofile.Option) (sprofile.Profiler, error) {
		return sprofile.New(m, opts...)
	})
	profilertest.Run(t, "Concurrent", func(m int, opts ...sprofile.Option) (sprofile.Profiler, error) {
		return sprofile.NewConcurrent(m, opts...)
	})
	for _, shards := range []int{1, 3, 16} {
		profilertest.Run(t, fmt.Sprintf("Sharded-%d", shards), func(m int, opts ...sprofile.Option) (sprofile.Profiler, error) {
			return sprofile.NewSharded(m, shards, opts...)
		})
	}
	profilertest.Run(t, "Window", func(m int, opts ...sprofile.Option) (sprofile.Profiler, error) {
		p, err := sprofile.New(m, opts...)
		if err != nil {
			return nil, err
		}
		return sprofile.NewWindow(p, conformanceWindow)
	})
	profilertest.Run(t, "TimeWindow", func(m int, opts ...sprofile.Option) (sprofile.Profiler, error) {
		p, err := sprofile.New(m, opts...)
		if err != nil {
			return nil, err
		}
		return sprofile.NewTimeWindow(p, 24*time.Hour)
	})

	// Builder-assembled variants must behave identically to the hand-built
	// ones above.
	profilertest.Run(t, "Build", func(m int, opts ...sprofile.Option) (sprofile.Profiler, error) {
		return sprofile.Build(m, sprofile.WithOptions(opts...))
	})
	profilertest.Run(t, "Build-Sharded", func(m int, opts ...sprofile.Option) (sprofile.Profiler, error) {
		return sprofile.Build(m, sprofile.WithSharding(4), sprofile.WithOptions(opts...))
	})
	profilertest.Run(t, "Build-Windowed", func(m int, opts ...sprofile.Option) (sprofile.Profiler, error) {
		return sprofile.Build(m, sprofile.Windowed(conformanceWindow), sprofile.WithOptions(opts...))
	})

	walDir := t.TempDir()
	walSeq := 0
	profilertest.Run(t, "Build-WAL", func(m int, opts ...sprofile.Option) (sprofile.Profiler, error) {
		walSeq++
		path := filepath.Join(walDir, fmt.Sprintf("conformance-%d.wal", walSeq))
		if err := os.RemoveAll(path); err != nil {
			return nil, err
		}
		return sprofile.Build(m, sprofile.WithWAL(path), sprofile.WithOptions(opts...))
	})
}
