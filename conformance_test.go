package sprofile_test

import (
	"fmt"
	"os"
	"path/filepath"
	"testing"
	"time"

	"sprofile"
	"sprofile/profilertest"
)

// TestProfilerConformance runs the shared conformance battery against every
// sprofile.Profiler implementation in the package, so all variants are held
// to exactly the same update/query/error semantics. Sharded and Concurrent
// answers are cross-checked against a plain Profile on the same stream by the
// suite itself.
func TestProfilerConformance(t *testing.T) {
	// Window sizes larger than any stream the suite replays: the windowed
	// profile then holds the whole stream and must agree with the reference.
	const conformanceWindow = 1 << 20

	profilertest.Run(t, "Profile", func(m int, opts ...sprofile.Option) (sprofile.Profiler, error) {
		return sprofile.New(m, opts...)
	})
	profilertest.Run(t, "Concurrent", func(m int, opts ...sprofile.Option) (sprofile.Profiler, error) {
		return sprofile.NewConcurrent(m, opts...)
	})
	for _, shards := range []int{1, 3, 16} {
		profilertest.Run(t, fmt.Sprintf("Sharded-%d", shards), func(m int, opts ...sprofile.Option) (sprofile.Profiler, error) {
			return sprofile.NewSharded(m, shards, opts...)
		})
	}
	profilertest.Run(t, "Window", func(m int, opts ...sprofile.Option) (sprofile.Profiler, error) {
		p, err := sprofile.New(m, opts...)
		if err != nil {
			return nil, err
		}
		return sprofile.NewWindow(p, conformanceWindow)
	})
	profilertest.Run(t, "TimeWindow", func(m int, opts ...sprofile.Option) (sprofile.Profiler, error) {
		p, err := sprofile.New(m, opts...)
		if err != nil {
			return nil, err
		}
		return sprofile.NewTimeWindow(p, 24*time.Hour)
	})

	// Builder-assembled variants must behave identically to the hand-built
	// ones above.
	profilertest.Run(t, "Build", func(m int, opts ...sprofile.Option) (sprofile.Profiler, error) {
		return sprofile.Build(m, sprofile.WithOptions(opts...))
	})
	profilertest.Run(t, "Build-Sharded", func(m int, opts ...sprofile.Option) (sprofile.Profiler, error) {
		return sprofile.Build(m, sprofile.WithSharding(4), sprofile.WithOptions(opts...))
	})
	profilertest.Run(t, "Build-Windowed", func(m int, opts ...sprofile.Option) (sprofile.Profiler, error) {
		return sprofile.Build(m, sprofile.Windowed(conformanceWindow), sprofile.WithOptions(opts...))
	})

	walDir := t.TempDir()
	walSeq := 0
	profilertest.Run(t, "Build-WAL", func(m int, opts ...sprofile.Option) (sprofile.Profiler, error) {
		walSeq++
		path := filepath.Join(walDir, fmt.Sprintf("conformance-%d.wal", walSeq))
		if err := os.RemoveAll(path); err != nil {
			return nil, err
		}
		return sprofile.Build(m, sprofile.WithWAL(path), sprofile.WithOptions(opts...))
	})

	// The keyed layers — serial Keyed and the lock-striped KeyedConcurrent —
	// run through the same battery via an adapter that addresses them with
	// their dense ids as keys, so the whole key→id→profile pipeline is held
	// to the reference Profile's semantics.
	profilertest.Run(t, "Keyed", func(m int, opts ...sprofile.Option) (sprofile.Profiler, error) {
		p, err := sprofile.New(m, opts...)
		if err != nil {
			return nil, err
		}
		k, err := sprofile.NewKeyedOver[int](p, sprofile.WithoutRecycling())
		if err != nil {
			return nil, err
		}
		return newKeyedAdapter(k, m)
	})
	for _, shards := range []int{1, 4} {
		profilertest.Run(t, fmt.Sprintf("BuildKeyed-%d", shards), func(m int, opts ...sprofile.Option) (sprofile.Profiler, error) {
			k, err := sprofile.BuildKeyed[int](m,
				sprofile.WithSharding(shards),
				sprofile.WithoutKeyRecycling(),
				sprofile.WithOptions(opts...))
			if err != nil {
				return nil, err
			}
			return newKeyedAdapter(k, m)
		})
	}
}

// keyedAdapter exposes a KeyedProfiler keyed by dense ints as a plain
// Profiler, so the conformance suite can replay its reference streams into
// the keyed pipeline. Every id is pre-tracked (keys are the ids themselves),
// which pins the key↔id translation: a query's representative key must be
// exactly the object the reference profile knows. Recycling is disabled by
// the factories because the reference semantics allow negative frequencies.
type keyedAdapter struct {
	k sprofile.KeyedProfiler[int]
	m int
}

func newKeyedAdapter(k sprofile.KeyedProfiler[int], m int) (*keyedAdapter, error) {
	for x := 0; x < m; x++ {
		if err := k.Track(x); err != nil {
			return nil, err
		}
	}
	return &keyedAdapter{k: k, m: m}, nil
}

func (a *keyedAdapter) check(x int) error {
	if x < 0 || x >= a.m {
		return fmt.Errorf("%w: id %d, capacity %d", sprofile.ErrObjectRange, x, a.m)
	}
	return nil
}

func (a *keyedAdapter) Add(x int) error {
	if err := a.check(x); err != nil {
		return err
	}
	return a.k.Add(x)
}

func (a *keyedAdapter) Remove(x int) error {
	if err := a.check(x); err != nil {
		return err
	}
	return a.k.Remove(x)
}

func (a *keyedAdapter) Apply(t sprofile.Tuple) error {
	switch t.Action {
	case sprofile.ActionAdd:
		return a.Add(t.Object)
	case sprofile.ActionRemove:
		return a.Remove(t.Object)
	default:
		return fmt.Errorf("sprofile: invalid action %d", t.Action)
	}
}

func (a *keyedAdapter) ApplyAll(tuples []sprofile.Tuple) (int, error) {
	for i, t := range tuples {
		if err := a.Apply(t); err != nil {
			return i, err
		}
	}
	return len(tuples), nil
}

func (a *keyedAdapter) Count(x int) (int64, error) {
	if err := a.check(x); err != nil {
		return 0, err
	}
	return a.k.Count(x)
}

func keyedEntryToEntry(e sprofile.KeyedEntry[int]) sprofile.Entry {
	return sprofile.Entry{Object: e.Key, Frequency: e.Frequency}
}

func (a *keyedAdapter) Mode() (sprofile.Entry, int, error) {
	e, ties, err := a.k.Mode()
	return keyedEntryToEntry(e), ties, err
}

func (a *keyedAdapter) Min() (sprofile.Entry, int, error) {
	e, ties, err := a.k.Min()
	return keyedEntryToEntry(e), ties, err
}

func (a *keyedAdapter) TopK(k int) []sprofile.Entry {
	entries := a.k.TopK(k)
	if entries == nil {
		return nil
	}
	out := make([]sprofile.Entry, len(entries))
	for i, e := range entries {
		out[i] = keyedEntryToEntry(e)
	}
	return out
}

func (a *keyedAdapter) BottomK(k int) []sprofile.Entry {
	entries := a.k.BottomK(k)
	if entries == nil {
		return nil
	}
	out := make([]sprofile.Entry, len(entries))
	for i, e := range entries {
		out[i] = keyedEntryToEntry(e)
	}
	return out
}

func (a *keyedAdapter) KthLargest(k int) (sprofile.Entry, error) {
	e, err := a.k.KthLargest(k)
	return keyedEntryToEntry(e), err
}

func (a *keyedAdapter) Median() (sprofile.Entry, error) {
	e, err := a.k.Median()
	return keyedEntryToEntry(e), err
}

func (a *keyedAdapter) Quantile(q float64) (sprofile.Entry, error) {
	e, err := a.k.Quantile(q)
	return keyedEntryToEntry(e), err
}

func (a *keyedAdapter) Majority() (sprofile.Entry, bool, error) {
	e, ok, err := a.k.Majority()
	return keyedEntryToEntry(e), ok, err
}

func (a *keyedAdapter) Distribution() []sprofile.FreqCount { return a.k.Distribution() }
func (a *keyedAdapter) Summarize() sprofile.Summary        { return a.k.Summarize() }
func (a *keyedAdapter) Cap() int                           { return a.k.Cap() }
func (a *keyedAdapter) Total() int64                       { return a.k.Total() }
