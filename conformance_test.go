package sprofile_test

import (
	"context"
	"fmt"
	"net/http"
	"net/http/httptest"
	"os"
	"path/filepath"
	"testing"
	"time"

	"sprofile"
	"sprofile/profilertest"
)

// TestProfilerConformance runs the shared conformance battery against every
// sprofile.Profiler implementation in the package, so all variants are held
// to exactly the same update/query/error semantics. Sharded and Concurrent
// answers are cross-checked against a plain Profile on the same stream by the
// suite itself.
func TestProfilerConformance(t *testing.T) {
	// Window sizes larger than any stream the suite replays: the windowed
	// profile then holds the whole stream and must agree with the reference.
	const conformanceWindow = 1 << 20

	profilertest.Run(t, "Profile", func(m int, opts ...sprofile.Option) (sprofile.Profiler, error) {
		return sprofile.New(m, opts...)
	})
	profilertest.Run(t, "Concurrent", func(m int, opts ...sprofile.Option) (sprofile.Profiler, error) {
		return sprofile.NewConcurrent(m, opts...)
	})
	for _, shards := range []int{1, 3, 16} {
		profilertest.Run(t, fmt.Sprintf("Sharded-%d", shards), func(m int, opts ...sprofile.Option) (sprofile.Profiler, error) {
			return sprofile.NewSharded(m, shards, opts...)
		})
	}
	profilertest.Run(t, "Window", func(m int, opts ...sprofile.Option) (sprofile.Profiler, error) {
		p, err := sprofile.New(m, opts...)
		if err != nil {
			return nil, err
		}
		return sprofile.NewWindow(p, conformanceWindow)
	})
	profilertest.Run(t, "TimeWindow", func(m int, opts ...sprofile.Option) (sprofile.Profiler, error) {
		p, err := sprofile.New(m, opts...)
		if err != nil {
			return nil, err
		}
		return sprofile.NewTimeWindow(p, 24*time.Hour)
	})

	// Builder-assembled variants must behave identically to the hand-built
	// ones above.
	profilertest.Run(t, "Build", func(m int, opts ...sprofile.Option) (sprofile.Profiler, error) {
		return sprofile.Build(m, sprofile.WithOptions(opts...))
	})
	profilertest.Run(t, "Build-Sharded", func(m int, opts ...sprofile.Option) (sprofile.Profiler, error) {
		return sprofile.Build(m, sprofile.WithSharding(4), sprofile.WithOptions(opts...))
	})
	profilertest.Run(t, "Build-Windowed", func(m int, opts ...sprofile.Option) (sprofile.Profiler, error) {
		return sprofile.Build(m, sprofile.Windowed(conformanceWindow), sprofile.WithOptions(opts...))
	})

	walDir := t.TempDir()
	walSeq := 0
	profilertest.Run(t, "Build-WAL", func(m int, opts ...sprofile.Option) (sprofile.Profiler, error) {
		walSeq++
		path := filepath.Join(walDir, fmt.Sprintf("conformance-%d.wal", walSeq))
		if err := os.RemoveAll(path); err != nil {
			return nil, err
		}
		return sprofile.Build(m, sprofile.WithWAL(path), sprofile.WithOptions(opts...))
	})

	// The keyed layers — serial Keyed and the lock-striped KeyedConcurrent —
	// run through the same battery via an adapter that addresses them with
	// their dense ids as keys, so the whole key→id→profile pipeline is held
	// to the reference Profile's semantics.
	profilertest.Run(t, "Keyed", func(m int, opts ...sprofile.Option) (sprofile.Profiler, error) {
		p, err := sprofile.New(m, opts...)
		if err != nil {
			return nil, err
		}
		k, err := sprofile.NewKeyedOver[int](p, sprofile.WithoutRecycling())
		if err != nil {
			return nil, err
		}
		return newKeyedAdapter(k, m)
	})
	for _, shards := range []int{1, 4} {
		profilertest.Run(t, fmt.Sprintf("BuildKeyed-%d", shards), func(m int, opts ...sprofile.Option) (sprofile.Profiler, error) {
			k, err := sprofile.BuildKeyed[int](m,
				sprofile.WithSharding(shards),
				sprofile.WithoutKeyRecycling(),
				sprofile.WithOptions(opts...))
			if err != nil {
				return nil, err
			}
			return newKeyedAdapter(k, m)
		})
	}
}

// keyedAdapter exposes a KeyedProfiler keyed by dense ints as a plain
// Profiler, so the conformance suite can replay its reference streams into
// the keyed pipeline. Every id is pre-tracked (keys are the ids themselves),
// which pins the key↔id translation: a query's representative key must be
// exactly the object the reference profile knows. Recycling is disabled by
// the factories because the reference semantics allow negative frequencies.
type keyedAdapter struct {
	k sprofile.KeyedProfiler[int]
	m int
}

func newKeyedAdapter(k sprofile.KeyedProfiler[int], m int) (*keyedAdapter, error) {
	for x := 0; x < m; x++ {
		if err := k.Track(x); err != nil {
			return nil, err
		}
	}
	return &keyedAdapter{k: k, m: m}, nil
}

func (a *keyedAdapter) check(x int) error {
	if x < 0 || x >= a.m {
		return fmt.Errorf("%w: id %d, capacity %d", sprofile.ErrObjectRange, x, a.m)
	}
	return nil
}

func (a *keyedAdapter) Add(x int) error {
	if err := a.check(x); err != nil {
		return err
	}
	return a.k.Add(x)
}

func (a *keyedAdapter) Remove(x int) error {
	if err := a.check(x); err != nil {
		return err
	}
	return a.k.Remove(x)
}

func (a *keyedAdapter) Apply(t sprofile.Tuple) error {
	switch t.Action {
	case sprofile.ActionAdd:
		return a.Add(t.Object)
	case sprofile.ActionRemove:
		return a.Remove(t.Object)
	default:
		return fmt.Errorf("sprofile: invalid action %d", t.Action)
	}
}

func (a *keyedAdapter) ApplyAll(tuples []sprofile.Tuple) (int, error) {
	for i, t := range tuples {
		if err := a.Apply(t); err != nil {
			return i, err
		}
	}
	return len(tuples), nil
}

func (a *keyedAdapter) Count(x int) (int64, error) {
	if err := a.check(x); err != nil {
		return 0, err
	}
	return a.k.Count(x)
}

func keyedEntryToEntry(e sprofile.KeyedEntry[int]) sprofile.Entry {
	return sprofile.Entry{Object: e.Key, Frequency: e.Frequency}
}

func (a *keyedAdapter) Mode() (sprofile.Entry, int, error) {
	e, ties, err := a.k.Mode()
	return keyedEntryToEntry(e), ties, err
}

func (a *keyedAdapter) Min() (sprofile.Entry, int, error) {
	e, ties, err := a.k.Min()
	return keyedEntryToEntry(e), ties, err
}

func (a *keyedAdapter) TopK(k int) []sprofile.Entry {
	entries := a.k.TopK(k)
	if entries == nil {
		return nil
	}
	out := make([]sprofile.Entry, len(entries))
	for i, e := range entries {
		out[i] = keyedEntryToEntry(e)
	}
	return out
}

func (a *keyedAdapter) BottomK(k int) []sprofile.Entry {
	entries := a.k.BottomK(k)
	if entries == nil {
		return nil
	}
	out := make([]sprofile.Entry, len(entries))
	for i, e := range entries {
		out[i] = keyedEntryToEntry(e)
	}
	return out
}

func (a *keyedAdapter) KthLargest(k int) (sprofile.Entry, error) {
	e, err := a.k.KthLargest(k)
	return keyedEntryToEntry(e), err
}

func (a *keyedAdapter) Median() (sprofile.Entry, error) {
	e, err := a.k.Median()
	return keyedEntryToEntry(e), err
}

func (a *keyedAdapter) Quantile(q float64) (sprofile.Entry, error) {
	e, err := a.k.Quantile(q)
	return keyedEntryToEntry(e), err
}

func (a *keyedAdapter) Majority() (sprofile.Entry, bool, error) {
	e, ok, err := a.k.Majority()
	return keyedEntryToEntry(e), ok, err
}

func (a *keyedAdapter) Distribution() []sprofile.FreqCount { return a.k.Distribution() }
func (a *keyedAdapter) Summarize() sprofile.Summary        { return a.k.Summarize() }
func (a *keyedAdapter) Cap() int                           { return a.k.Cap() }
func (a *keyedAdapter) Total() int64                       { return a.k.Total() }

// TestRestoredProfilerConformance holds checkpoint recovery to the full
// conformance battery: every query is answered by a profile rebuilt from
// disk — alternating between snapshot-restored (checkpoint, close, reopen)
// and tail-replayed (close, reopen) recovery — and must agree exactly with
// the in-memory reference.
func TestRestoredProfilerConformance(t *testing.T) {
	restoredDir := t.TempDir()
	restoredSeq := 0
	profilertest.Run(t, "Durable-Restored", func(m int, opts ...sprofile.Option) (sprofile.Profiler, error) {
		restoredSeq++
		path := filepath.Join(restoredDir, fmt.Sprintf("dense-%d.wal", restoredSeq))
		build := func() (sprofile.Profiler, error) {
			return sprofile.Build(m, sprofile.WithSharding(3), sprofile.WithWAL(path), sprofile.WithOptions(opts...))
		}
		cur, err := build()
		if err != nil {
			return nil, err
		}
		return &restoredProfiler{cur: cur, reopen: func(cur sprofile.Profiler, cycle int) (sprofile.Profiler, error) {
			d := cur.(*sprofile.Durable)
			if cycle%2 == 0 {
				if err := d.Checkpoint(); err != nil {
					return nil, err
				}
			}
			if err := d.Close(); err != nil {
				return nil, err
			}
			return build()
		}}, nil
	})

	profilertest.Run(t, "BuildKeyed-Restored", func(m int, opts ...sprofile.Option) (sprofile.Profiler, error) {
		restoredSeq++
		path := filepath.Join(restoredDir, fmt.Sprintf("keyed-%d.wal", restoredSeq))
		var keyed *sprofile.KeyedConcurrent[string]
		build := func() (sprofile.Profiler, error) {
			k, err := sprofile.BuildKeyed[string](m,
				sprofile.WithSharding(2),
				sprofile.WithoutKeyRecycling(),
				sprofile.WithWAL(path),
				sprofile.WithOptions(opts...))
			if err != nil {
				return nil, err
			}
			keyed = k
			return newKeyedAdapter(intStringKeyed{k}, m)
		}
		cur, err := build()
		if err != nil {
			return nil, err
		}
		return &restoredProfiler{cur: cur, reopen: func(_ sprofile.Profiler, cycle int) (sprofile.Profiler, error) {
			if cycle%2 == 0 {
				if err := keyed.Checkpoint(); err != nil {
					return nil, err
				}
			}
			if err := keyed.Close(); err != nil {
				return nil, err
			}
			return build()
		}}, nil
	})
}

// TestFollowerReplicatedConformance holds the replication pipeline to the
// full conformance battery: every update is journaled by a WAL-backed leader
// and every query is answered by a follower that bootstrapped over HTTP and
// caught up on the leader's log — the replica must agree with the in-memory
// reference exactly, update for update.
func TestFollowerReplicatedConformance(t *testing.T) {
	dir := t.TempDir()
	seq := 0
	profilertest.Run(t, "Follower-Replicated", func(m int, opts ...sprofile.Option) (sprofile.Profiler, error) {
		seq++
		// A capacity-0 profile has nothing to replicate (followers require a
		// positive capacity); the battery only probes its empty-profile error
		// semantics, which the leader alone answers.
		if m == 0 {
			k, err := sprofile.BuildKeyed[string](m, sprofile.WithoutKeyRecycling(), sprofile.WithOptions(opts...))
			if err != nil {
				return nil, err
			}
			return newKeyedAdapter(intStringKeyed{k}, m)
		}
		leader, err := sprofile.BuildKeyed[string](m,
			sprofile.WithSharding(2),
			sprofile.WithoutKeyRecycling(),
			sprofile.WithWAL(filepath.Join(dir, fmt.Sprintf("leader-%d", seq))),
			sprofile.WithOptions(opts...))
		if err != nil {
			return nil, err
		}
		t.Cleanup(func() { leader.Close() })
		feed := leader.ReplicationHandler()
		mux := http.NewServeMux()
		mux.HandleFunc("/v1/replication/snapshot", feed.ServeSnapshot)
		mux.HandleFunc("/v1/replication/wal", feed.ServeWAL)
		ts := httptest.NewServer(mux)
		t.Cleanup(ts.Close)

		kf, err := sprofile.NewKeyedFollower(sprofile.FollowerConfig{
			Capacity: m,
			Leader:   ts.URL,
			Dir:      filepath.Join(dir, fmt.Sprintf("mirror-%d", seq)),
			Build: []sprofile.BuildOption{
				sprofile.WithSharding(2),
				sprofile.WithoutKeyRecycling(),
				sprofile.WithOptions(opts...),
			},
		})
		if err != nil {
			return nil, err
		}
		t.Cleanup(func() { kf.Close() })

		// catchUp converges the replica on everything the leader has journaled
		// and wraps its profile for the battery; pre-tracking the full key
		// space is a replica-local freq-0 id assignment, needed because keys
		// the stream never touched are not replicated yet must answer queries.
		catchUp := func() (sprofile.Profiler, error) {
			// Library-level updates buffer in the leader's WAL until a sync;
			// the replication feed only ships flushed bytes (the HTTP server
			// syncs per batch, making every acked write fetchable).
			if err := leader.Sync(); err != nil {
				return nil, err
			}
			ctx, cancel := context.WithTimeout(context.Background(), 30*time.Second)
			defer cancel()
			if err := kf.CatchUp(ctx); err != nil {
				return nil, err
			}
			return newKeyedAdapter(intStringKeyed{kf.Profile()}, m)
		}
		writer, err := newKeyedAdapter(intStringKeyed{leader}, m)
		if err != nil {
			return nil, err
		}
		cur, err := catchUp()
		if err != nil {
			return nil, err
		}
		return &restoredProfiler{cur: cur, writer: writer, reopen: func(sprofile.Profiler, int) (sprofile.Profiler, error) {
			return catchUp()
		}}, nil
	})
}

// restoredProfiler routes every query through a profile recovered from
// disk: after any update, the next query first hands the current profiler to
// reopen, which persists it (checkpointing on alternating cycles), tears it
// down, and rebuilds it from the snapshot and/or log tail. When writer is
// non-nil the updates go there instead of cur — the replication factory uses
// this to write through a leader while every query is answered by a replica.
type restoredProfiler struct {
	reopen func(cur sprofile.Profiler, cycle int) (sprofile.Profiler, error)
	cur    sprofile.Profiler
	writer sprofile.Profiler
	cycle  int
	dirty  bool
}

// sink is where updates land: the leader when the reads are replicated,
// otherwise the current profile itself.
func (r *restoredProfiler) sink() sprofile.Profiler {
	if r.writer != nil {
		return r.writer
	}
	return r.cur
}

func (r *restoredProfiler) refresh() {
	if !r.dirty {
		return
	}
	p, err := r.reopen(r.cur, r.cycle)
	if err != nil {
		panic(fmt.Sprintf("restoredProfiler: recovery failed: %v", err))
	}
	r.cur = p
	r.cycle++
	r.dirty = false
}

func (r *restoredProfiler) Add(x int) error {
	r.dirty = true
	return r.sink().Add(x)
}

func (r *restoredProfiler) Remove(x int) error {
	r.dirty = true
	return r.sink().Remove(x)
}

func (r *restoredProfiler) Apply(t sprofile.Tuple) error {
	r.dirty = true
	return r.sink().Apply(t)
}

func (r *restoredProfiler) ApplyAll(tuples []sprofile.Tuple) (int, error) {
	r.dirty = true
	return r.sink().ApplyAll(tuples)
}

func (r *restoredProfiler) Count(x int) (int64, error) {
	r.refresh()
	return r.cur.Count(x)
}

func (r *restoredProfiler) Mode() (sprofile.Entry, int, error) {
	r.refresh()
	return r.cur.Mode()
}

func (r *restoredProfiler) Min() (sprofile.Entry, int, error) {
	r.refresh()
	return r.cur.Min()
}

func (r *restoredProfiler) TopK(k int) []sprofile.Entry {
	r.refresh()
	return r.cur.TopK(k)
}

func (r *restoredProfiler) BottomK(k int) []sprofile.Entry {
	r.refresh()
	return r.cur.BottomK(k)
}

func (r *restoredProfiler) KthLargest(k int) (sprofile.Entry, error) {
	r.refresh()
	return r.cur.KthLargest(k)
}

func (r *restoredProfiler) Median() (sprofile.Entry, error) {
	r.refresh()
	return r.cur.Median()
}

func (r *restoredProfiler) Quantile(q float64) (sprofile.Entry, error) {
	r.refresh()
	return r.cur.Quantile(q)
}

func (r *restoredProfiler) Majority() (sprofile.Entry, bool, error) {
	r.refresh()
	return r.cur.Majority()
}

func (r *restoredProfiler) Distribution() []sprofile.FreqCount {
	r.refresh()
	return r.cur.Distribution()
}

func (r *restoredProfiler) Summarize() sprofile.Summary {
	r.refresh()
	return r.cur.Summarize()
}

func (r *restoredProfiler) Cap() int {
	r.refresh()
	return r.cur.Cap()
}

func (r *restoredProfiler) Total() int64 {
	r.refresh()
	return r.cur.Total()
}

// intStringKeyed adapts a string-keyed profile to the int-keyed interface
// the conformance adapter wants, so the WAL-backed KeyedConcurrent (whose
// log stores string keys) can run the dense-id battery.
type intStringKeyed struct {
	k *sprofile.KeyedConcurrent[string]
}

func intKey(x int) string { return fmt.Sprintf("%d", x) }

func stringEntryToInt(e sprofile.KeyedEntry[string]) sprofile.KeyedEntry[int] {
	var key int
	fmt.Sscanf(e.Key, "%d", &key)
	return sprofile.KeyedEntry[int]{Key: key, Frequency: e.Frequency}
}

func (v intStringKeyed) Add(x int) error                      { return v.k.Add(intKey(x)) }
func (v intStringKeyed) Remove(x int) error                   { return v.k.Remove(intKey(x)) }
func (v intStringKeyed) Apply(x int, a sprofile.Action) error { return v.k.Apply(intKey(x), a) }
func (v intStringKeyed) Track(x int) error                    { return v.k.Track(intKey(x)) }
func (v intStringKeyed) Count(x int) (int64, error)           { return v.k.Count(intKey(x)) }
func (v intStringKeyed) Distribution() []sprofile.FreqCount   { return v.k.Distribution() }
func (v intStringKeyed) Summarize() sprofile.Summary          { return v.k.Summarize() }
func (v intStringKeyed) Cap() int                             { return v.k.Cap() }
func (v intStringKeyed) Tracked() int                         { return v.k.Tracked() }
func (v intStringKeyed) Total() int64                         { return v.k.Total() }
func (v intStringKeyed) Profile() sprofile.Profiler           { return v.k.Profile() }

func (v intStringKeyed) Mode() (sprofile.KeyedEntry[int], int, error) {
	e, ties, err := v.k.Mode()
	return stringEntryToInt(e), ties, err
}

func (v intStringKeyed) Min() (sprofile.KeyedEntry[int], int, error) {
	e, ties, err := v.k.Min()
	return stringEntryToInt(e), ties, err
}

func (v intStringKeyed) TopK(k int) []sprofile.KeyedEntry[int] {
	return stringEntriesToInt(v.k.TopK(k))
}

func (v intStringKeyed) BottomK(k int) []sprofile.KeyedEntry[int] {
	return stringEntriesToInt(v.k.BottomK(k))
}

func stringEntriesToInt(entries []sprofile.KeyedEntry[string]) []sprofile.KeyedEntry[int] {
	if entries == nil {
		return nil
	}
	out := make([]sprofile.KeyedEntry[int], len(entries))
	for i, e := range entries {
		out[i] = stringEntryToInt(e)
	}
	return out
}

func (v intStringKeyed) KthLargest(k int) (sprofile.KeyedEntry[int], error) {
	e, err := v.k.KthLargest(k)
	return stringEntryToInt(e), err
}

func (v intStringKeyed) Median() (sprofile.KeyedEntry[int], error) {
	e, err := v.k.Median()
	return stringEntryToInt(e), err
}

func (v intStringKeyed) Quantile(q float64) (sprofile.KeyedEntry[int], error) {
	e, err := v.k.Quantile(q)
	return stringEntryToInt(e), err
}

func (v intStringKeyed) Majority() (sprofile.KeyedEntry[int], bool, error) {
	e, ok, err := v.k.Majority()
	return stringEntryToInt(e), ok, err
}

func (v intStringKeyed) QueryKeys(q sprofile.KeyedQuery[int]) (sprofile.KeyedQueryResult[int], error) {
	sq := sprofile.KeyedQuery[string]{
		Mode:         q.Mode,
		Min:          q.Min,
		TopK:         q.TopK,
		BottomK:      q.BottomK,
		KthLargest:   q.KthLargest,
		Median:       q.Median,
		Quantiles:    q.Quantiles,
		Majority:     q.Majority,
		Distribution: q.Distribution,
		Summary:      q.Summary,
	}
	for _, key := range q.Count {
		sq.Count = append(sq.Count, intKey(key))
	}
	sres, err := v.k.QueryKeys(sq)
	if err != nil {
		return sprofile.KeyedQueryResult[int]{}, err
	}
	out := sprofile.KeyedQueryResult[int]{
		TopK:         stringEntriesToInt(sres.TopK),
		BottomK:      stringEntriesToInt(sres.BottomK),
		KthLargest:   stringEntriesToInt(sres.KthLargest),
		Distribution: sres.Distribution,
		Summary:      sres.Summary,
	}
	if len(sres.Counts) > 0 {
		out.Counts = make([]sprofile.KeyedEntry[int], len(sres.Counts))
		for i, e := range sres.Counts {
			out.Counts[i] = stringEntryToInt(e)
		}
	}
	if sres.Mode != nil {
		out.Mode = &sprofile.KeyedExtreme[int]{KeyedEntry: stringEntryToInt(sres.Mode.KeyedEntry), Ties: sres.Mode.Ties}
	}
	if sres.Min != nil {
		out.Min = &sprofile.KeyedExtreme[int]{KeyedEntry: stringEntryToInt(sres.Min.KeyedEntry), Ties: sres.Min.Ties}
	}
	if sres.Median != nil {
		e := stringEntryToInt(*sres.Median)
		out.Median = &e
	}
	if len(sres.Quantiles) > 0 {
		out.Quantiles = make([]sprofile.KeyedQuantile[int], len(sres.Quantiles))
		for i, qe := range sres.Quantiles {
			out.Quantiles[i] = sprofile.KeyedQuantile[int]{Q: qe.Q, KeyedEntry: stringEntryToInt(qe.KeyedEntry)}
		}
	}
	if sres.Majority != nil {
		out.Majority = &sprofile.KeyedMajority[int]{KeyedEntry: stringEntryToInt(sres.Majority.KeyedEntry), Majority: sres.Majority.Majority}
	}
	return out, nil
}

func (v intStringKeyed) KeyOf(id int) (int, bool) {
	s, ok := v.k.KeyOf(id)
	if !ok {
		return 0, false
	}
	var key int
	fmt.Sscanf(s, "%d", &key)
	return key, true
}

var _ sprofile.KeyedProfiler[int] = intStringKeyed{}
