package sprofile

import (
	"io"
	"net/http"
	"sync"

	"sprofile/internal/metrics"
)

// Build identity, stamped by the linker:
//
//	go build -ldflags "-X sprofile.Version=v1.2.3 -X sprofile.Commit=abc1234"
//
// Unstamped builds report "dev"/"unknown" — still a valid build_info series,
// so dashboards can tell stamped deployments from ad-hoc binaries.
var (
	Version = "dev"
	Commit  = "unknown"
)

// MetricsContentType is the Content-Type of WriteMetrics' output (Prometheus
// text exposition format v0.0.4).
const MetricsContentType = metrics.ContentType

// WriteMetrics renders every registered metric family — ingest, WAL,
// checkpoint, replication, async plane, query plane, HTTP server and Go
// runtime — in Prometheus text exposition format. Embedders mount it wherever
// their scrape endpoint lives; the bundled server serves it at GET /metrics.
func WriteMetrics(w io.Writer) error { return metrics.Default().Write(w) }

// MetricsHandler returns an http.Handler serving WriteMetrics with the right
// Content-Type — a ready-made GET /metrics endpoint for embedders that run
// their own mux.
func MetricsHandler() http.Handler { return metrics.Default().Handler() }

// SetMetricsEnabled switches every instrumentation point in the library on or
// off at runtime. Disabled, each would-be update is one atomic load and a
// branch; collected values freeze rather than reset.
func SetMetricsEnabled(on bool) { metrics.SetEnabled(on) }

// MetricsEnabled reports whether instrumentation points currently record.
func MetricsEnabled() bool { return metrics.Enabled() }

// Async ingest plane families. Counters are package-global (summed across
// planes); the gauges are recomputed per scrape from every live plane's
// stats, so tests that build and close many planes never leave stale values
// behind.
var (
	mAsyncAppliedEvents = metrics.Default().Counter("sprofile_async_applied_events_total",
		"Events drained from mailboxes and applied by shard appliers.")
	mAsyncApplierBatches = metrics.Default().Counter("sprofile_async_applier_batches_total",
		"Drain batches shard appliers ran (each is one coalescing window).")
	mAsyncBatchEvents = metrics.Default().Histogram("sprofile_async_applier_batch_events",
		"Events per applier drain batch — the realized coalescing window.",
		metrics.SizeBuckets())
	mAsyncPublishes = metrics.Default().Counter("sprofile_async_publishes_total",
		"Epoch snapshot publishes across all shards and planes.")
	mAsyncWaits = metrics.Default().Counter("sprofile_async_backpressure_waits_total",
		"Enqueues that blocked on a full mailbox (BackpressureBlock).")
	mAsyncDrops = metrics.Default().Counter("sprofile_async_backpressure_errors_total",
		"Enqueues refused with ErrBackpressure (BackpressureError).")
	mAsyncMailboxDepth = metrics.Default().Gauge("sprofile_async_mailbox_depth",
		"Enqueued-but-unapplied events across every live async plane.")
	mAsyncProducers = metrics.Default().Gauge("sprofile_async_producers",
		"Live producer handles across every async plane.")
	mAsyncPublishLag = metrics.Default().Gauge("sprofile_async_publish_lag_seconds",
		"Age of the stalest live plane's newest epoch publish.")
)

// Keyed ingest families. The batch path records at batch granularity; the
// single-event paths count inside stripe locks they already hold, so the
// lock-free hot paths never gain an instrumentation branch beyond one atomic.
var (
	mIngestEvents = metrics.Default().CounterVec("sprofile_ingest_events_total",
		"Keyed events accepted, by ingest path.", "path")
	mIngestEventsSingle = mIngestEvents.With("keyed_event")
	mIngestEventsBatch  = mIngestEvents.With("keyed_batch")
	mIngestBatchEvents  = metrics.Default().Histogram("sprofile_ingest_batch_events",
		"Events per keyed ApplyBatch call (pre-coalescing).", metrics.SizeBuckets())
	mIngestBatchKeys = metrics.Default().Counter("sprofile_ingest_batch_distinct_keys_total",
		"Distinct keys per keyed batch, summed — rate against events for the keyed coalescing ratio.")
)

// Replica-side replication families. The counters live in
// internal/replication next to the code that moves the bytes; these gauges
// need the KeyedFollower's Status (lag arithmetic, promote handling), so they
// aggregate over live followers per scrape, same pattern as the async planes.
var (
	mReplRebootstraps = metrics.Default().Counter("sprofile_replication_rebootstraps_total",
		"Replica rebuilds from a fresh leader snapshot (mirror wiped and re-bootstrapped).")
	mReplLagBytes = metrics.Default().Gauge("sprofile_replication_lag_bytes",
		"Worst byte lag across live followers; -1 means one or more whole segments behind.")
	mReplStaleness = metrics.Default().Gauge("sprofile_replication_staleness_seconds",
		"Worst staleness bound across live followers (doubt, not confirmed lag).")
	mReplCaughtUp = metrics.Default().Gauge("sprofile_replication_caught_up",
		"1 when every live follower covers the leader's append position, else 0.")
)

// followerLive tracks every open KeyedFollower for the scrape hook above.
var followerLive struct {
	sync.Mutex
	next uint64
	set  map[uint64]func() ReplicationStatus
}

func registerFollower(status func() ReplicationStatus) (unregister func()) {
	followerLive.Lock()
	defer followerLive.Unlock()
	if followerLive.set == nil {
		followerLive.set = make(map[uint64]func() ReplicationStatus)
	}
	followerLive.next++
	id := followerLive.next
	followerLive.set[id] = status
	return func() {
		followerLive.Lock()
		delete(followerLive.set, id)
		followerLive.Unlock()
	}
}

func scrapeFollowers() {
	followerLive.Lock()
	status := make([]func() ReplicationStatus, 0, len(followerLive.set))
	for _, f := range followerLive.set {
		status = append(status, f)
	}
	followerLive.Unlock()
	if len(status) == 0 {
		return // leave the gauges at their last values; no follower to report
	}
	var lag, staleMs int64
	caughtUp := true
	for _, f := range status {
		st := f()
		if st.Role == "leader" { // promoted: permanently caught up
			continue
		}
		if st.LagBytes < 0 || lag < 0 {
			lag = -1 // whole segments behind dominates any byte figure
		} else if st.LagBytes > lag {
			lag = st.LagBytes
		}
		if st.StalenessMs > staleMs {
			staleMs = st.StalenessMs
		}
		if !st.CaughtUp {
			caughtUp = false
		}
	}
	mReplLagBytes.Set(float64(lag))
	mReplStaleness.Set(float64(staleMs) / 1e3)
	if caughtUp {
		mReplCaughtUp.Set(1)
	} else {
		mReplCaughtUp.Set(0)
	}
}

// asyncLive tracks every open async plane so one scrape hook can aggregate
// their point-in-time gauges. Planes register at construction and unregister
// on close.
var asyncLive struct {
	sync.Mutex
	next uint64
	set  map[uint64]func() AsyncStats
}

func registerAsyncPlane(stats func() AsyncStats) (unregister func()) {
	asyncLive.Lock()
	defer asyncLive.Unlock()
	if asyncLive.set == nil {
		asyncLive.set = make(map[uint64]func() AsyncStats)
	}
	asyncLive.next++
	id := asyncLive.next
	asyncLive.set[id] = stats
	return func() {
		asyncLive.Lock()
		delete(asyncLive.set, id)
		asyncLive.Unlock()
	}
}

func init() {
	metrics.Default().OnScrape(scrapeFollowers)
	metrics.Default().OnScrape(func() {
		asyncLive.Lock()
		stats := make([]func() AsyncStats, 0, len(asyncLive.set))
		for _, f := range asyncLive.set {
			stats = append(stats, f)
		}
		asyncLive.Unlock()
		var depth, producers int
		var lagMs float64
		for _, f := range stats {
			st := f()
			depth += st.Queued
			producers += st.Producers
			if st.PublishLagMs > lagMs {
				lagMs = st.PublishLagMs
			}
		}
		mAsyncMailboxDepth.Set(float64(depth))
		mAsyncProducers.Set(float64(producers))
		mAsyncPublishLag.Set(lagMs / 1e3)
	})
	metrics.Default().GaugeVec("sprofile_build_info",
		"Build identity; the value is always 1, the labels carry it.",
		"version", "commit").With(Version, Commit).Set(1)
}
