package sprofile

import (
	"errors"
	"fmt"
	"runtime"
	"strconv"
	"time"

	"sprofile/internal/wal"
)

// ErrBuildConfig is returned by Build when the requested capability
// combination is invalid or unsupported.
var ErrBuildConfig = errors.New("sprofile: invalid build configuration")

// buildConfig accumulates the capabilities requested through BuildOptions.
type buildConfig struct {
	shards       int
	shardsSet    bool
	synchronized bool
	windowSize   int
	windowSet    bool
	windowSpan   time.Duration
	spanSet      bool
	walPath      string
	walSyncEvery int
	profileOpts  []Option
	noKeyRecycle bool
}

// BuildOption declares one capability of the profile Build assembles.
type BuildOption func(*buildConfig)

// WithSharding splits the object-id space across n independently locked
// shards, removing the single-mutex bottleneck under many concurrent
// producers. A sharded profile is always safe for concurrent use, so
// Synchronized is implied.
func WithSharding(n int) BuildOption {
	return func(c *buildConfig) { c.shards = n; c.shardsSet = true }
}

// Synchronized protects the profile with a read-write mutex so multiple
// goroutines can update and query it. Redundant (and harmless) when
// WithSharding is also given.
func Synchronized() BuildOption {
	return func(c *buildConfig) { c.synchronized = true }
}

// Windowed maintains a count-based sliding window of the given size: the
// profile always reflects exactly the last size tuples. Window adapters are
// single-goroutine; combining Windowed with Synchronized or WithSharding is
// an error — wrap the built profiler in external locking instead.
func Windowed(size int) BuildOption {
	return func(c *buildConfig) { c.windowSize = size; c.windowSet = true }
}

// TimeWindowed maintains a duration-based sliding window: the profile always
// reflects the tuples of the last span of logical time. The same composition
// restrictions as Windowed apply.
func TimeWindowed(span time.Duration) BuildOption {
	return func(c *buildConfig) { c.windowSpan = span; c.spanSet = true }
}

// WithWAL makes ingestion durable: every applied update is appended to a
// write-ahead log at path, and any events already in the log are replayed
// into the profile when Build runs. The built profiler is a *Durable; close
// it (or call Sync) to flush buffered records to stable storage.
func WithWAL(path string) BuildOption {
	return func(c *buildConfig) { c.walPath = path }
}

// WithWALSyncEvery fsyncs the write-ahead log after every n appended records
// instead of only on ApplyAll batch boundaries, Sync and Close. Only
// meaningful together with WithWAL.
func WithWALSyncEvery(n int) BuildOption {
	return func(c *buildConfig) { c.walSyncEvery = n }
}

// WithOptions forwards profile options (WithStrictNonNegative,
// WithBlockHint) to the underlying profile(s) the builder creates.
func WithOptions(opts ...Option) BuildOption {
	return func(c *buildConfig) { c.profileOpts = append(c.profileOpts, opts...) }
}

// Strict is shorthand for WithOptions(WithStrictNonNegative()).
func Strict() BuildOption {
	return WithOptions(WithStrictNonNegative())
}

// WithoutKeyRecycling keeps a key's dense id assigned even after its
// frequency returns to zero — BuildKeyed's equivalent of the Keyed option
// WithoutRecycling. Use it when the key set is closed or when negative
// frequencies are meaningful; without recycling the profile follows the
// paper's default semantics and allows negative frequencies. Only meaningful
// with BuildKeyed; plain Build rejects it.
func WithoutKeyRecycling() BuildOption {
	return func(c *buildConfig) { c.noKeyRecycle = true }
}

// defaultShards is the shard (and mapper stripe) count BuildKeyed uses when
// WithSharding is not given: one per CPU, the point where parallel ingestion
// stops gaining from further splitting.
func defaultShards() int {
	n := runtime.GOMAXPROCS(0)
	if n < 1 {
		n = 1
	}
	return n
}

// Build assembles a profile over m dense object ids from declared
// capabilities instead of hand-nested wrappers:
//
//	p, err := sprofile.Build(1_000_000)                          // plain Profile
//	p, err := sprofile.Build(m, sprofile.Synchronized())         // mutex-protected
//	p, err := sprofile.Build(m, sprofile.WithSharding(16))       // 16 lock shards
//	p, err := sprofile.Build(m, sprofile.Windowed(100_000))      // last 100k tuples
//	p, err := sprofile.Build(m, sprofile.TimeWindowed(time.Hour))
//	p, err := sprofile.Build(m, sprofile.WithSharding(16), sprofile.WithWAL("events.wal"))
//
// Whatever the combination, the result satisfies Profiler, so ingestion and
// query code is written once and the representation can be swapped by
// changing only the Build call.
func Build(m int, opts ...BuildOption) (Profiler, error) {
	var cfg buildConfig
	for _, opt := range opts {
		opt(&cfg)
	}
	if cfg.shardsSet && cfg.shards <= 0 {
		return nil, fmt.Errorf("%w: shard count must be positive, got %d", ErrBuildConfig, cfg.shards)
	}
	if cfg.noKeyRecycle {
		return nil, fmt.Errorf("%w: WithoutKeyRecycling configures key recycling and applies only to BuildKeyed", ErrBuildConfig)
	}
	if cfg.windowSet && cfg.spanSet {
		return nil, fmt.Errorf("%w: Windowed and TimeWindowed are mutually exclusive", ErrBuildConfig)
	}
	if cfg.windowSet && cfg.windowSize <= 0 {
		return nil, fmt.Errorf("%w: window size must be positive, got %d", ErrBuildConfig, cfg.windowSize)
	}
	if cfg.spanSet && cfg.windowSpan <= 0 {
		return nil, fmt.Errorf("%w: window span must be positive, got %v", ErrBuildConfig, cfg.windowSpan)
	}
	if (cfg.windowSet || cfg.spanSet) && (cfg.shards > 0 || cfg.synchronized) {
		return nil, fmt.Errorf("%w: window adapters are single-goroutine; they cannot be combined with Synchronized or WithSharding", ErrBuildConfig)
	}
	// The WAL stores no timestamps, so replaying into a time window would
	// restamp every historical event with the replay-time clock and resurrect
	// long-expired events. Count windows replay correctly (the sequence alone
	// determines their contents).
	if cfg.spanSet && cfg.walPath != "" {
		return nil, fmt.Errorf("%w: WithWAL cannot restore a TimeWindowed profile (the log has no event timestamps)", ErrBuildConfig)
	}

	var (
		p   Profiler
		err error
	)
	switch {
	case cfg.shards > 0:
		p, err = NewSharded(m, cfg.shards, cfg.profileOpts...)
	case cfg.synchronized:
		p, err = NewConcurrent(m, cfg.profileOpts...)
	case cfg.windowSet:
		var base *Profile
		base, err = New(m, cfg.profileOpts...)
		if err == nil {
			p, err = NewWindow(base, cfg.windowSize)
		}
	case cfg.spanSet:
		var base *Profile
		base, err = New(m, cfg.profileOpts...)
		if err == nil {
			p, err = NewTimeWindow(base, cfg.windowSpan)
		}
	default:
		p, err = New(m, cfg.profileOpts...)
	}
	if err != nil {
		return nil, err
	}

	if cfg.walPath != "" {
		return NewDurable(p, cfg.walPath, cfg.walSyncEvery)
	}
	return p, nil
}

// MustBuild is Build for callers with a known-good configuration; it panics
// on error.
func MustBuild(m int, opts ...BuildOption) Profiler {
	p, err := Build(m, opts...)
	if err != nil {
		panic(err)
	}
	return p
}

// Durable wraps any Profiler with a write-ahead log: every successful update
// is appended to the log, and NewDurable replays the log's existing records
// into the profiler first, so the profile survives process restarts. Queries
// pass straight through.
//
// Records are buffered; they reach stable storage on Sync, Close, at the end
// of every ApplyAll batch, and every n records when built with
// WithWALSyncEvery(n). Durable serialises nothing itself — use a Concurrent
// or Sharded inner profiler behind a single ingesting goroutine, or guard
// updates externally, when producers are concurrent.
type Durable struct {
	inner Profiler
	log   *wal.Log
	// replayed is the number of records restored from the log at build time.
	replayed int
}

// NewDurable opens (or creates) the write-ahead log at path, replays any
// existing records into p, and returns the journaling wrapper. syncEvery
// fsyncs after that many appends; zero syncs only on batch boundaries, Sync
// and Close.
func NewDurable(p Profiler, path string, syncEvery int) (*Durable, error) {
	if p == nil {
		return nil, errors.New("sprofile: nil profiler")
	}
	replayed, err := wal.Replay(path, func(rec wal.Record) error {
		x, convErr := strconv.Atoi(rec.Key)
		if convErr != nil {
			return fmt.Errorf("sprofile: WAL record key %q is not a dense object id: %w", rec.Key, convErr)
		}
		return p.Apply(Tuple{Object: x, Action: rec.Action})
	})
	if err != nil {
		return nil, fmt.Errorf("sprofile: replaying WAL %s: %w", path, err)
	}
	log, err := wal.Open(path, wal.Options{SyncEvery: syncEvery})
	if err != nil {
		return nil, fmt.Errorf("sprofile: opening WAL %s: %w", path, err)
	}
	return &Durable{inner: p, log: log, replayed: replayed}, nil
}

// Replayed returns the number of WAL records replayed into the profile when
// the Durable was built.
func (d *Durable) Replayed() int { return d.replayed }

// Unwrap returns the journaled inner profiler. Updating it directly bypasses
// the log and must be avoided.
func (d *Durable) Unwrap() Profiler { return d.inner }

// Sync flushes buffered log records to stable storage.
func (d *Durable) Sync() error { return d.log.Sync() }

// Close flushes and closes the write-ahead log. The inner profiler remains
// usable, but further updates through the Durable will fail.
func (d *Durable) Close() error { return d.log.Close() }

// append journals one applied tuple.
func (d *Durable) append(x int, a Action) error {
	return d.log.Append(wal.Record{Key: strconv.Itoa(x), Action: a})
}

// Add increments the frequency of object x and journals the event. A
// journaling failure after a successful update is reported as an error even
// though the in-memory profile changed (the same write-behind contract the
// HTTP server uses); Sync/Close errors surface the same divergence.
func (d *Durable) Add(x int) error {
	if err := d.inner.Add(x); err != nil {
		return err
	}
	return d.append(x, ActionAdd)
}

// Remove decrements the frequency of object x and journals the event.
func (d *Durable) Remove(x int) error {
	if err := d.inner.Remove(x); err != nil {
		return err
	}
	return d.append(x, ActionRemove)
}

// Apply applies one log tuple and journals it.
func (d *Durable) Apply(t Tuple) error {
	switch t.Action {
	case ActionAdd:
		return d.Add(t.Object)
	case ActionRemove:
		return d.Remove(t.Object)
	default:
		return fmt.Errorf("sprofile: invalid action %d", t.Action)
	}
}

// ApplyAll applies tuples through the inner profiler's own batched ApplyAll
// (keeping its lock amortisation), journals the applied prefix, and flushes
// the log once at the end; it returns the number applied and the first error.
// The returned count always reflects the in-memory profile; if journaling
// fails partway, the error reports how many of the applied tuples reached the
// log.
func (d *Durable) ApplyAll(tuples []Tuple) (int, error) {
	n, applyErr := d.inner.ApplyAll(tuples)
	for i := 0; i < n; i++ {
		if err := d.append(tuples[i].Object, tuples[i].Action); err != nil {
			if syncErr := d.log.Sync(); syncErr != nil {
				return n, fmt.Errorf("sprofile: %d events applied but only %d journaled: %w (and WAL sync failed: %v)", n, i, err, syncErr)
			}
			return n, fmt.Errorf("sprofile: %d events applied but only %d journaled: %w", n, i, err)
		}
	}
	if err := d.log.Sync(); err != nil {
		if applyErr != nil {
			// Keep the apply error inspectable (errors.Is still matches it)
			// alongside the sync failure.
			return n, fmt.Errorf("sprofile: events applied but WAL sync failed: %v (batch stopped early: %w)", err, applyErr)
		}
		return n, fmt.Errorf("sprofile: events applied but WAL sync failed: %w", err)
	}
	return n, applyErr
}

// Count returns the current frequency of object x.
func (d *Durable) Count(x int) (int64, error) { return d.inner.Count(x) }

// Mode returns an object with maximum frequency, that frequency, and how
// many objects share it.
func (d *Durable) Mode() (Entry, int, error) { return d.inner.Mode() }

// Min returns an object with minimum frequency, that frequency, and how many
// objects share it.
func (d *Durable) Min() (Entry, int, error) { return d.inner.Min() }

// TopK returns the k most frequent entries.
func (d *Durable) TopK(k int) []Entry { return d.inner.TopK(k) }

// BottomK returns the k least frequent entries.
func (d *Durable) BottomK(k int) []Entry { return d.inner.BottomK(k) }

// KthLargest returns the entry holding the k-th largest frequency.
func (d *Durable) KthLargest(k int) (Entry, error) { return d.inner.KthLargest(k) }

// Median returns the lower-median entry of the frequency multiset.
func (d *Durable) Median() (Entry, error) { return d.inner.Median() }

// Quantile returns the entry at quantile q in [0, 1].
func (d *Durable) Quantile(q float64) (Entry, error) { return d.inner.Quantile(q) }

// Majority returns the object holding a strict majority of the total count,
// if one exists.
func (d *Durable) Majority() (Entry, bool, error) { return d.inner.Majority() }

// Distribution returns the frequency histogram.
func (d *Durable) Distribution() []FreqCount { return d.inner.Distribution() }

// Summarize returns aggregate statistics of the profile.
func (d *Durable) Summarize() Summary { return d.inner.Summarize() }

// Cap returns the number of object slots.
func (d *Durable) Cap() int { return d.inner.Cap() }

// Total returns the sum of all frequencies.
func (d *Durable) Total() int64 { return d.inner.Total() }
