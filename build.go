package sprofile

import (
	"errors"
	"fmt"
	"runtime"
	"strconv"
	"sync"
	"time"

	"sprofile/internal/checkpoint"
	"sprofile/internal/wal"
)

// ErrBuildConfig is returned by Build when the requested capability
// combination is invalid or unsupported.
var ErrBuildConfig = errors.New("sprofile: invalid build configuration")

// buildConfig accumulates the capabilities requested through BuildOptions.
type buildConfig struct {
	shards       int
	shardsSet    bool
	synchronized bool
	windowSize   int
	windowSet    bool
	windowSpan   time.Duration
	spanSet      bool
	walPath      string
	walSyncEvery int
	ckpt         CheckpointPolicy
	ckptSet      bool
	profileOpts  []Option
	noKeyRecycle bool
	async        AsyncPolicy
	asyncSet     bool
}

// BuildOption declares one capability of the profile Build assembles.
type BuildOption func(*buildConfig)

// WithSharding splits the object-id space across n independently locked
// shards, removing the single-mutex bottleneck under many concurrent
// producers. A sharded profile is always safe for concurrent use, so
// Synchronized is implied.
func WithSharding(n int) BuildOption {
	return func(c *buildConfig) { c.shards = n; c.shardsSet = true }
}

// Synchronized protects the profile with a read-write mutex so multiple
// goroutines can update and query it. Redundant (and harmless) when
// WithSharding is also given.
func Synchronized() BuildOption {
	return func(c *buildConfig) { c.synchronized = true }
}

// Windowed maintains a count-based sliding window of the given size: the
// profile always reflects exactly the last size tuples. Window adapters are
// single-goroutine; combining Windowed with Synchronized or WithSharding is
// an error — wrap the built profiler in external locking instead.
func Windowed(size int) BuildOption {
	return func(c *buildConfig) { c.windowSize = size; c.windowSet = true }
}

// TimeWindowed maintains a duration-based sliding window: the profile always
// reflects the tuples of the last span of logical time. The same composition
// restrictions as Windowed apply.
func TimeWindowed(span time.Duration) BuildOption {
	return func(c *buildConfig) { c.windowSpan = span; c.spanSet = true }
}

// WithWAL makes ingestion durable: every applied update is appended to a
// write-ahead log, and the log's existing contents are replayed into the
// profile when Build runs. path names a directory of rotating log segments
// (plus checkpoint snapshots, when WithCheckpoints is also given); a legacy
// single-file log left by an earlier version at the same path is migrated
// into the directory layout automatically. The built profiler is a *Durable;
// close it (or call Sync) to flush buffered records to stable storage.
func WithWAL(path string) BuildOption {
	return func(c *buildConfig) { c.walPath = path }
}

// WithWALSyncEvery fsyncs the write-ahead log after every n appended records
// instead of only on ApplyAll batch boundaries, Sync and Close. Only
// meaningful together with WithWAL.
func WithWALSyncEvery(n int) BuildOption {
	return func(c *buildConfig) { c.walSyncEvery = n }
}

// CheckpointPolicy says when a durable profile writes a snapshot and
// truncates its log. Either trigger (or both) may be set; the zero policy
// disables automatic checkpointing, leaving only explicit Checkpoint calls.
type CheckpointPolicy struct {
	// Every checkpoints once this much time has passed since the previous
	// checkpoint and at least one event has been journaled since.
	Every time.Duration
	// EveryBytes checkpoints once the log tail (the records not yet covered
	// by a snapshot) grows past this many bytes.
	EveryBytes int64
}

// Enabled reports whether the policy triggers automatic checkpoints.
func (p CheckpointPolicy) Enabled() bool { return p.Every > 0 || p.EveryBytes > 0 }

// WithCheckpoints bounds recovery time and disk use: the profile
// periodically writes an atomic snapshot of its full state into the WAL
// directory and deletes the log segments the snapshot covers, so a restart
// loads the snapshot and replays only the tail written after it. Requires
// WithWAL; incompatible with Windowed and TimeWindowed (a window's ring of
// in-flight tuples is not captured by a frequency snapshot). A manual
// checkpoint can always be taken with (*Durable).Checkpoint or
// (*KeyedConcurrent).Checkpoint, with or without this option.
func WithCheckpoints(p CheckpointPolicy) BuildOption {
	return func(c *buildConfig) { c.ckpt = p; c.ckptSet = true }
}

// RecoveryStats describes how a durable profile was rebuilt at startup:
// what the snapshot restored outright and how much log tail had to be
// replayed on top of it.
type RecoveryStats struct {
	// SnapshotSeq is the sequence number of the snapshot recovery loaded
	// (zero when the directory held none).
	SnapshotSeq uint64
	// SnapshotObjects is how many keys (or nonzero dense slots) the
	// snapshot restored without replay.
	SnapshotObjects int
	// SnapshotEvents is the number of add/remove events the snapshot
	// covers — history that did not need replaying.
	SnapshotEvents uint64
	// TailSegments and TailRecords count the log segments newer than the
	// snapshot and the records replayed from them.
	TailSegments int
	TailRecords  int
}

func recoveryStats(s checkpoint.RecoveryStats) RecoveryStats {
	return RecoveryStats{
		SnapshotSeq:     s.SnapshotSeq,
		SnapshotObjects: s.SnapshotObjects,
		SnapshotEvents:  s.SnapshotEvents,
		TailSegments:    s.TailSegments,
		TailRecords:     s.TailRecords,
	}
}

// WithOptions forwards profile options (WithStrictNonNegative,
// WithBlockHint) to the underlying profile(s) the builder creates.
func WithOptions(opts ...Option) BuildOption {
	return func(c *buildConfig) { c.profileOpts = append(c.profileOpts, opts...) }
}

// Strict is shorthand for WithOptions(WithStrictNonNegative()).
func Strict() BuildOption {
	return WithOptions(WithStrictNonNegative())
}

// WithoutKeyRecycling keeps a key's dense id assigned even after its
// frequency returns to zero — BuildKeyed's equivalent of the Keyed option
// WithoutRecycling. Use it when the key set is closed or when negative
// frequencies are meaningful; without recycling the profile follows the
// paper's default semantics and allows negative frequencies. Only meaningful
// with BuildKeyed; plain Build rejects it.
func WithoutKeyRecycling() BuildOption {
	return func(c *buildConfig) { c.noKeyRecycle = true }
}

// WithAsyncIngest wraps the assembled profile with the shared-nothing async
// ingest plane (see Async): updates are enqueued to per-producer, per-shard
// SPSC mailboxes and applied by one goroutine per shard; reads answer from
// epoch-published snapshots under the bounded-staleness contract. A zero
// AsyncPolicy means all defaults. It composes with Synchronized,
// WithSharding and WithWAL; window adapters are rejected (they are
// single-goroutine and lack the delta capability the appliers batch
// through). BuildKeyed rejects it — use BuildKeyedAsync instead, which
// returns the concrete *AsyncKeyed.
func WithAsyncIngest(p AsyncPolicy) BuildOption {
	return func(c *buildConfig) {
		c.async = p
		c.asyncSet = true
	}
}

// defaultShards is the shard (and mapper stripe) count BuildKeyed uses when
// WithSharding is not given: one per unit of real parallelism, the point
// where parallel ingestion stops gaining from further splitting. The count
// is min(GOMAXPROCS, NumCPU): splitting beyond either bound buys no
// parallelism but still pays the per-event striping overhead (PR 2 measured
// ~100ns/op on one core), so a single-core host — GOMAXPROCS=1, or a
// quota-limited container where the runtime sees one usable CPU — gets one
// stripe and one shard and ingests at the unstriped rate.
func defaultShards() int {
	n := runtime.GOMAXPROCS(0)
	if c := runtime.NumCPU(); c < n {
		n = c
	}
	if n < 1 {
		n = 1
	}
	return n
}

// Build assembles a profile over m dense object ids from declared
// capabilities instead of hand-nested wrappers:
//
//	p, err := sprofile.Build(1_000_000)                          // plain Profile
//	p, err := sprofile.Build(m, sprofile.Synchronized())         // mutex-protected
//	p, err := sprofile.Build(m, sprofile.WithSharding(16))       // 16 lock shards
//	p, err := sprofile.Build(m, sprofile.Windowed(100_000))      // last 100k tuples
//	p, err := sprofile.Build(m, sprofile.TimeWindowed(time.Hour))
//	p, err := sprofile.Build(m, sprofile.WithSharding(16), sprofile.WithWAL("events.wal"))
//
// Whatever the combination, the result satisfies Profiler, so ingestion and
// query code is written once and the representation can be swapped by
// changing only the Build call.
func Build(m int, opts ...BuildOption) (Profiler, error) {
	var cfg buildConfig
	for _, opt := range opts {
		opt(&cfg)
	}
	if cfg.shardsSet && cfg.shards <= 0 {
		return nil, fmt.Errorf("%w: shard count must be positive, got %d", ErrBuildConfig, cfg.shards)
	}
	if cfg.noKeyRecycle {
		return nil, fmt.Errorf("%w: WithoutKeyRecycling configures key recycling and applies only to BuildKeyed", ErrBuildConfig)
	}
	if cfg.windowSet && cfg.spanSet {
		return nil, fmt.Errorf("%w: Windowed and TimeWindowed are mutually exclusive", ErrBuildConfig)
	}
	if cfg.windowSet && cfg.windowSize <= 0 {
		return nil, fmt.Errorf("%w: window size must be positive, got %d", ErrBuildConfig, cfg.windowSize)
	}
	if cfg.spanSet && cfg.windowSpan <= 0 {
		return nil, fmt.Errorf("%w: window span must be positive, got %v", ErrBuildConfig, cfg.windowSpan)
	}
	if (cfg.windowSet || cfg.spanSet) && (cfg.shards > 0 || cfg.synchronized) {
		return nil, fmt.Errorf("%w: window adapters are single-goroutine; they cannot be combined with Synchronized or WithSharding", ErrBuildConfig)
	}
	// The WAL stores no timestamps, so replaying into a time window would
	// restamp every historical event with the replay-time clock and resurrect
	// long-expired events. Count windows replay correctly (the sequence alone
	// determines their contents).
	if cfg.spanSet && cfg.walPath != "" {
		return nil, fmt.Errorf("%w: WithWAL cannot restore a TimeWindowed profile (the log has no event timestamps)", ErrBuildConfig)
	}
	if cfg.ckptSet {
		if cfg.walPath == "" {
			return nil, fmt.Errorf("%w: WithCheckpoints requires WithWAL", ErrBuildConfig)
		}
		if cfg.windowSet || cfg.spanSet {
			return nil, fmt.Errorf("%w: a frequency snapshot cannot capture a window's in-flight tuples; WithCheckpoints does not compose with Windowed or TimeWindowed", ErrBuildConfig)
		}
	}
	if cfg.asyncSet && (cfg.windowSet || cfg.spanSet) {
		return nil, fmt.Errorf("%w: window adapters are single-goroutine and have no delta capability; WithAsyncIngest does not compose with Windowed or TimeWindowed", ErrBuildConfig)
	}

	var (
		p   Profiler
		err error
	)
	switch {
	case cfg.shards > 0:
		p, err = NewSharded(m, cfg.shards, cfg.profileOpts...)
	case cfg.synchronized:
		p, err = NewConcurrent(m, cfg.profileOpts...)
	case cfg.windowSet:
		var base *Profile
		base, err = New(m, cfg.profileOpts...)
		if err == nil {
			p, err = NewWindow(base, cfg.windowSize)
		}
	case cfg.spanSet:
		var base *Profile
		base, err = New(m, cfg.profileOpts...)
		if err == nil {
			p, err = NewTimeWindow(base, cfg.windowSpan)
		}
	default:
		p, err = New(m, cfg.profileOpts...)
	}
	if err != nil {
		return nil, err
	}

	if cfg.walPath != "" {
		p, err = newDurable(p, cfg.walPath, cfg.walSyncEvery, cfg.ckpt)
		if err != nil {
			return nil, err
		}
	}
	if cfg.asyncSet {
		return NewAsync(p, cfg.async)
	}
	return p, nil
}

// MustBuild is Build for callers with a known-good configuration; it panics
// on error.
func MustBuild(m int, opts ...BuildOption) Profiler {
	p, err := Build(m, opts...)
	if err != nil {
		panic(err)
	}
	return p
}

// Durable wraps any Profiler with a write-ahead log: every successful update
// is appended to the log, and construction replays the log's existing
// contents into the profiler first, so the profile survives process
// restarts. Queries pass straight through. The log is a directory of
// rotating segments; with checkpointing (WithCheckpoints or explicit
// Checkpoint calls) the directory also holds atomic snapshots, recovery
// loads the latest snapshot and replays only the tail segments, and covered
// segments are deleted — bounding both restart time and disk use.
//
// Records are buffered; they reach stable storage on Sync, Close, at the end
// of every ApplyAll batch, and every n records when built with
// WithWALSyncEvery(n). Updates serialise on an internal mutex (checkpoint
// capture needs a precise cut between profile state and log position), so a
// Durable over a concurrency-safe inner profiler is itself safe for
// concurrent updates; fsyncs run outside the mutex with group commit.
type Durable struct {
	inner Profiler
	store *checkpoint.Store
	// mu serialises updates with each other and with checkpoint capture, so
	// a snapshot covers exactly the events journaled before its rotation.
	mu sync.Mutex
	// replayed is the number of tail records replayed at build time.
	replayed int
	stats    RecoveryStats
	ckpt     *checkpoint.Checkpointer
	// entries is the reusable WAL batch-record scratch of ApplyDeltas;
	// guarded by mu.
	entries []wal.BatchEntry
}

// NewDurable opens (or creates) the write-ahead log directory at path,
// restores the latest checkpoint snapshot (if one exists), replays the tail
// records into p, and returns the journaling wrapper. syncEvery fsyncs after
// that many appends; zero syncs only on batch boundaries, Sync and Close.
func NewDurable(p Profiler, path string, syncEvery int) (*Durable, error) {
	return newDurable(p, path, syncEvery, CheckpointPolicy{})
}

func newDurable(p Profiler, path string, syncEvery int, policy CheckpointPolicy) (*Durable, error) {
	if p == nil {
		return nil, errNilProfiler
	}
	store, err := checkpoint.Open(path, checkpoint.Options{SyncEvery: syncEvery})
	if err != nil {
		return nil, fmt.Errorf("sprofile: opening WAL %s: %w", path, err)
	}
	if st := store.TakeState(); st != nil {
		if st.Keyed {
			return nil, fmt.Errorf("sprofile: WAL %s holds a keyed snapshot; open it with BuildKeyed: %w", path, ErrBadSnapshot)
		}
		loader, ok := p.(FrequencyLoader)
		if !ok {
			return nil, fmt.Errorf("sprofile: WAL %s holds a snapshot but %T cannot restore one (no FrequencyLoader capability): %w", path, p, errors.ErrUnsupported)
		}
		freqs := st.Dense.Frequencies(nil)
		if len(freqs) != p.Cap() {
			return nil, fmt.Errorf("sprofile: snapshot in %s holds %d object slots but the profile has %d: %w", path, len(freqs), p.Cap(), ErrBadSnapshot)
		}
		adds, removes := st.Dense.Events()
		if err := loader.LoadFrequencies(freqs, adds, removes); err != nil {
			return nil, fmt.Errorf("sprofile: restoring snapshot from %s: %w", path, err)
		}
	}
	replayed, err := store.ReplayTail(func(rec wal.Record) error {
		x, convErr := strconv.Atoi(rec.Key)
		if convErr != nil {
			return fmt.Errorf("sprofile: WAL record key %q is not a dense object id: %w", rec.Key, convErr)
		}
		if rec.Batch {
			dl := Delta{Object: x, Delta: int64(rec.Adds) - int64(rec.Removes), Adds: rec.Adds, Removes: rec.Removes}
			if du, ok := p.(DeltaUpdater); ok {
				return du.ApplyDelta(dl)
			}
			// Batch records are only journaled through the DeltaUpdater fast
			// path, so this expansion runs only when a log is reopened with a
			// profiler weaker than the one that wrote it.
			for i := uint64(0); i < rec.Adds; i++ {
				if err := p.Add(x); err != nil {
					return err
				}
			}
			for i := uint64(0); i < rec.Removes; i++ {
				if err := p.Remove(x); err != nil {
					return err
				}
			}
			return nil
		}
		return p.Apply(Tuple{Object: x, Action: rec.Action})
	})
	if err != nil {
		return nil, fmt.Errorf("sprofile: replaying WAL %s: %w", path, err)
	}
	d := &Durable{inner: p, store: store, replayed: replayed, stats: recoveryStats(store.Stats())}
	if policy.Enabled() {
		if _, ok := p.(Snapshotter); !ok {
			return nil, fmt.Errorf("%w: WithCheckpoints needs a snapshottable profiler, got %T", ErrBuildConfig, p)
		}
		d.ckpt = checkpoint.Start(checkpoint.Policy{Every: policy.Every, EveryBytes: policy.EveryBytes},
			d.Checkpoint, store.TailBytes)
	}
	return d, nil
}

// Replayed returns the number of WAL tail records replayed into the profile
// when the Durable was built — with checkpointing, only the records after
// the last snapshot, not the full ingest history.
func (d *Durable) Replayed() int { return d.replayed }

// Recovery returns the full recovery breakdown: what the snapshot restored
// and what the tail replay added.
func (d *Durable) Recovery() RecoveryStats { return d.stats }

// Unwrap returns the journaled inner profiler. Updating it directly bypasses
// the log and must be avoided.
func (d *Durable) Unwrap() Profiler { return d.inner }

// Sync flushes buffered log records to stable storage.
func (d *Durable) Sync() error { return d.store.Sync() }

// Close stops background checkpointing, then flushes and closes the
// write-ahead log. The inner profiler remains usable, but further updates
// through the Durable will fail.
func (d *Durable) Close() error {
	if d.ckpt != nil {
		d.ckpt.Stop()
	}
	return d.store.Close()
}

// CheckpointError returns the outcome of the most recent background
// checkpoint (always nil without WithCheckpoints, or while none has run).
func (d *Durable) CheckpointError() error {
	if d.ckpt == nil {
		return nil
	}
	return d.ckpt.LastError()
}

// Checkpoint writes an atomic snapshot of the profile's current state into
// the WAL directory and deletes the log segments it covers. The inner
// profiler must offer the Snapshotter capability (every non-window variant
// does). Updates are paused only while the log rotates and the in-memory
// state is captured; serialisation and fsync of the snapshot happen outside
// the update path. One checkpoint runs at a time.
func (d *Durable) Checkpoint() error {
	snapper, ok := d.inner.(Snapshotter)
	if !ok {
		return fmt.Errorf("sprofile: %T cannot be checkpointed (no Snapshotter capability): %w", d.inner, errors.ErrUnsupported)
	}
	return d.store.Checkpoint(func() (*checkpoint.State, uint64, error) {
		d.mu.Lock()
		defer d.mu.Unlock()
		sealed, err := d.store.Rotate()
		if err != nil {
			return nil, 0, err
		}
		snap, err := snapper.Snapshot()
		if err != nil {
			return nil, 0, err
		}
		return &checkpoint.State{Dense: snap}, sealed, nil
	})
}

// append journals one applied tuple; the caller holds d.mu.
func (d *Durable) append(x int, a Action) (syncDue bool, err error) {
	return d.store.Append(wal.Record{Key: strconv.Itoa(x), Action: a})
}

// Add increments the frequency of object x and journals the event. A
// journaling failure after a successful update is reported as an error even
// though the in-memory profile changed (the same write-behind contract the
// HTTP server uses); Sync/Close errors surface the same divergence.
func (d *Durable) Add(x int) error { return d.update(x, ActionAdd) }

// Remove decrements the frequency of object x and journals the event.
func (d *Durable) Remove(x int) error { return d.update(x, ActionRemove) }

func (d *Durable) update(x int, a Action) error {
	d.mu.Lock()
	err := d.inner.Apply(Tuple{Object: x, Action: a})
	var syncDue bool
	if err == nil {
		syncDue, err = d.append(x, a)
	}
	d.mu.Unlock()
	if err != nil || !syncDue {
		return err
	}
	// The WithWALSyncEvery fsync runs outside the update mutex (group
	// commit), so concurrent producers keep appending while the disk works.
	return d.store.Sync()
}

// AddN raises the frequency of object x by k in one step and journals the
// coalesced event count.
func (d *Durable) AddN(x int, k int64) error {
	if k < 0 {
		return fmt.Errorf("%w: negative add count %d for object %d", ErrOutOfRange, k, x)
	}
	return d.ApplyDelta(Delta{Object: x, Delta: k})
}

// RemoveN lowers the frequency of object x by k in one step and journals the
// coalesced event count.
func (d *Durable) RemoveN(x int, k int64) error {
	if k < 0 {
		return fmt.Errorf("%w: negative remove count %d for object %d", ErrOutOfRange, k, x)
	}
	return d.ApplyDelta(Delta{Object: x, Delta: -k})
}

// ApplyDelta applies one coalesced delta and journals it as a one-entry
// batch record, syncing per the WithWALSyncEvery contract.
func (d *Durable) ApplyDelta(dl Delta) error {
	if dl.Object < 0 || dl.Object >= d.inner.Cap() {
		// Checked here so a no-op delta rejects bad ids exactly like the
		// other DeltaUpdater implementations.
		return fmt.Errorf("%w: id %d, capacity %d", ErrObjectRange, dl.Object, d.inner.Cap())
	}
	adds, removes := dl.Gross()
	if adds == 0 && removes == 0 {
		return nil
	}
	d.mu.Lock()
	err := d.applyDeltaLocked(dl)
	var syncDue bool
	if err == nil {
		d.entries = append(d.entries[:0], wal.BatchEntry{Key: strconv.Itoa(dl.Object), Adds: adds, Removes: removes})
		syncDue, err = d.store.AppendBatch(d.entries)
	}
	d.mu.Unlock()
	if err != nil || !syncDue {
		return err
	}
	return d.store.Sync()
}

// applyDeltaLocked applies one delta to the inner profiler; the caller holds
// d.mu. A profiler without the DeltaUpdater capability (a window adapter,
// which must observe every individual tuple to expire it later) is rejected
// rather than silently expanded: a coalesced delta has already lost the
// intra-batch order a window's ring depends on.
func (d *Durable) applyDeltaLocked(dl Delta) error {
	du, ok := d.inner.(DeltaUpdater)
	if !ok {
		return fmt.Errorf("%w: %T cannot apply coalesced deltas; use the per-event Apply path", ErrBuildConfig, d.inner)
	}
	return du.ApplyDelta(dl)
}

// ApplyDeltas applies a coalesced batch, stopping at the first error, and
// journals the applied prefix as ONE physical write-ahead-log record
// (batches beyond the log's 2^26-entry frame limit span several records,
// each atomic on its own; see wal.Dir.AppendBatch) followed by ONE
// group-commit fsync — the whole point of the bulk path: a 64k-event batch
// that coalesces to a few thousand deltas costs a few thousand block walks,
// one log write and one fsync, instead of 64k of each. It returns the
// number of deltas applied.
//
// Deltas are applied one at a time rather than through the inner profiler's
// own ApplyDeltas: a sharded inner applies a failing batch shard by shard
// (not as a prefix), and the journal must record exactly what was applied.
// The per-delta shard locks this costs are uncontended noise next to the
// fsync; the update mutex serialises durable updates regardless.
func (d *Durable) ApplyDeltas(deltas []Delta) (int, error) {
	d.mu.Lock()
	n := 0
	var applyErr error
	d.entries = d.entries[:0]
	for i := range deltas {
		dl := deltas[i]
		if dl.Object < 0 || dl.Object >= d.inner.Cap() {
			// Range-checked before the no-op skip, matching ApplyDelta and
			// the other DeltaUpdater implementations.
			applyErr = fmt.Errorf("%w: id %d, capacity %d", ErrObjectRange, dl.Object, d.inner.Cap())
			break
		}
		adds, removes := dl.Gross()
		if adds == 0 && removes == 0 {
			n++
			continue
		}
		if applyErr = d.applyDeltaLocked(dl); applyErr != nil {
			break
		}
		n++
		d.entries = append(d.entries, wal.BatchEntry{Key: strconv.Itoa(dl.Object), Adds: adds, Removes: removes})
	}
	var journalErr error
	if len(d.entries) > 0 {
		_, journalErr = d.store.AppendBatch(d.entries)
	}
	d.mu.Unlock()
	if journalErr != nil {
		if syncErr := d.store.Sync(); syncErr != nil {
			return n, fmt.Errorf("sprofile: %d deltas applied but none journaled: %w (and WAL sync failed: %v)", n, journalErr, syncErr)
		}
		return n, fmt.Errorf("sprofile: %d deltas applied but none journaled: %w", n, journalErr)
	}
	if err := d.store.Sync(); err != nil {
		if applyErr != nil {
			return n, fmt.Errorf("sprofile: deltas applied but WAL sync failed: %v (batch stopped early: %w)", err, applyErr)
		}
		return n, fmt.Errorf("sprofile: deltas applied but WAL sync failed: %w", err)
	}
	return n, applyErr
}

// Apply applies one log tuple and journals it.
func (d *Durable) Apply(t Tuple) error {
	if !t.Action.Valid() {
		return errInvalidAction(t.Action)
	}
	return d.update(t.Object, t.Action)
}

// ApplyAll applies tuples through the inner profiler's own batched ApplyAll
// (keeping its lock amortisation), journals the applied prefix, and flushes
// the log once at the end; it returns the number applied and the first error.
// The returned count always reflects the in-memory profile; if journaling
// fails partway, the error reports how many of the applied tuples reached the
// log.
func (d *Durable) ApplyAll(tuples []Tuple) (int, error) {
	d.mu.Lock()
	n, applyErr := d.inner.ApplyAll(tuples)
	for i := 0; i < n; i++ {
		if _, err := d.append(tuples[i].Object, tuples[i].Action); err != nil {
			d.mu.Unlock()
			if syncErr := d.store.Sync(); syncErr != nil {
				return n, fmt.Errorf("sprofile: %d events applied but only %d journaled: %w (and WAL sync failed: %v)", n, i, err, syncErr)
			}
			return n, fmt.Errorf("sprofile: %d events applied but only %d journaled: %w", n, i, err)
		}
	}
	d.mu.Unlock()
	if err := d.store.Sync(); err != nil {
		if applyErr != nil {
			// Keep the apply error inspectable (errors.Is still matches it)
			// alongside the sync failure.
			return n, fmt.Errorf("sprofile: events applied but WAL sync failed: %v (batch stopped early: %w)", err, applyErr)
		}
		return n, fmt.Errorf("sprofile: events applied but WAL sync failed: %w", err)
	}
	return n, applyErr
}

// Count returns the current frequency of object x.
func (d *Durable) Count(x int) (int64, error) { return d.inner.Count(x) }

// Mode returns an object with maximum frequency, that frequency, and how
// many objects share it.
func (d *Durable) Mode() (Entry, int, error) { return d.inner.Mode() }

// Min returns an object with minimum frequency, that frequency, and how many
// objects share it.
func (d *Durable) Min() (Entry, int, error) { return d.inner.Min() }

// TopK returns the k most frequent entries.
func (d *Durable) TopK(k int) []Entry { return d.inner.TopK(k) }

// BottomK returns the k least frequent entries.
func (d *Durable) BottomK(k int) []Entry { return d.inner.BottomK(k) }

// KthLargest returns the entry holding the k-th largest frequency.
func (d *Durable) KthLargest(k int) (Entry, error) { return d.inner.KthLargest(k) }

// Median returns the lower-median entry of the frequency multiset.
func (d *Durable) Median() (Entry, error) { return d.inner.Median() }

// Quantile returns the entry at quantile q in [0, 1].
func (d *Durable) Quantile(q float64) (Entry, error) { return d.inner.Quantile(q) }

// Majority returns the object holding a strict majority of the total count,
// if one exists.
func (d *Durable) Majority() (Entry, bool, error) { return d.inner.Majority() }

// Distribution returns the frequency histogram.
func (d *Durable) Distribution() []FreqCount { return d.inner.Distribution() }

// Summarize returns aggregate statistics of the profile.
func (d *Durable) Summarize() Summary { return d.inner.Summarize() }

// Query answers a composite query by delegating to the inner profiler's own
// cut-pinning Querier capability (falling back to a snapshot-based cut for
// inner profilers that lack it — see QueryProfiler). The write-ahead log is
// not involved: queries read only in-memory state.
func (d *Durable) Query(q Query) (QueryResult, error) { return QueryProfiler(d.inner, q) }

// Cap returns the number of object slots.
func (d *Durable) Cap() int { return d.inner.Cap() }

// Total returns the sum of all frequencies.
func (d *Durable) Total() int64 { return d.inner.Total() }
