// Benchmarks reproducing the paper's evaluation figures (§3) and the
// harness's additional ablation studies, in idiomatic testing.B form: each
// benchmark reports nanoseconds per log-stream tuple (including the per-tuple
// statistic query) for every method, at the sweep points of the corresponding
// figure.
//
// The mapping to the paper:
//
//	BenchmarkFigure3_ModeVsN     – Fig. 3: mode maintenance, heap vs S-Profile, per stream (time vs n)
//	BenchmarkFigure4_ModeVsM     – Fig. 4: mode maintenance, heap vs S-Profile (time vs m)
//	BenchmarkFigure5_TrendVsM    – Fig. 5: flat-vs-growing trend on stream1 (time vs m)
//	BenchmarkFigure6_MedianVsN   – Fig. 6 left:  median maintenance, balanced tree vs S-Profile (vs n)
//	BenchmarkFigure6_MedianVsM   – Fig. 6 right: median maintenance, balanced tree vs S-Profile (vs m)
//
// Because per-tuple cost is what the figures plot (total seconds divided by a
// fixed n, or growing with m), ns/op comparisons across methods and across
// sweep points reproduce the figures' shapes directly. cmd/sprofile-bench
// runs the same experiments in wall-clock form and prints the paper-style
// tables.
package sprofile_test

import (
	"errors"
	"fmt"
	"path/filepath"
	"sync"
	"sync/atomic"
	"testing"

	"sprofile"
	"sprofile/internal/bench"
	"sprofile/internal/core"
	"sprofile/internal/graph"
	"sprofile/internal/profiler"
	"sprofile/internal/stream"
	"sprofile/internal/wal"
	"sprofile/internal/window"
)

// benchSink prevents dead-code elimination of per-tuple query results.
var benchSink int64

// queryResultSink forces composite-vs-individual benchmark results to escape
// identically.
var queryResultSink sprofile.QueryResult

// pregenerate materialises up to limit tuples of a workload; the benchmark
// loop cycles through them so stream generation stays out of the timed path.
func pregenerate(b *testing.B, w stream.Workload, limit int) []core.Tuple {
	b.Helper()
	n := b.N
	if n > limit {
		n = limit
	}
	if n < 1 {
		n = 1
	}
	return stream.Take(w, n)
}

const pregenLimit = 1 << 20

// runProfilerBench applies b.N tuples to the method's profiler, issuing the
// task query after every update, and reports ns per tuple.
func runProfilerBench(b *testing.B, method bench.Method, w stream.Workload, m int, task bench.Task) {
	b.Helper()
	p, err := bench.NewProfiler(method, m, task)
	if err != nil {
		b.Fatal(err)
	}
	tuples := pregenerate(b, w, pregenLimit)
	b.ReportAllocs()
	b.ResetTimer()
	var sink int64
	for i := 0; i < b.N; i++ {
		t := tuples[i%len(tuples)]
		if err := profiler.Apply(p, t); err != nil {
			b.Fatal(err)
		}
		switch task {
		case bench.TaskMode:
			e, _, err := p.Mode()
			if err != nil {
				b.Fatal(err)
			}
			sink += e.Frequency
		case bench.TaskMedian:
			e, err := p.Median()
			if err != nil {
				b.Fatal(err)
			}
			sink += e.Frequency
		case bench.TaskMin:
			e, _, err := p.Min()
			if err != nil {
				b.Fatal(err)
			}
			sink += e.Frequency
		}
	}
	benchSink += sink
}

// paperStream builds one of the paper's evaluation streams and fails the
// benchmark on error.
func paperStream(b *testing.B, index, m int) stream.Workload {
	b.Helper()
	g, err := stream.PaperStream(index, m, 20190326)
	if err != nil {
		b.Fatal(err)
	}
	return g
}

// BenchmarkFigure3_ModeVsN reproduces Figure 3: keeping the mode up to date
// on streams 1-3 with a large fixed m, heap baseline vs S-Profile. The
// figure's x-axis (n) is the benchmark's op count; constant ns/op for
// S-Profile and larger, stream-dependent ns/op for the heap give the figure's
// linear curves and their separation.
func BenchmarkFigure3_ModeVsN(b *testing.B) {
	const m = 1_000_000
	for streamIdx := 1; streamIdx <= 3; streamIdx++ {
		for _, method := range []bench.Method{bench.MethodHeap, bench.MethodSProfile} {
			b.Run(fmt.Sprintf("stream%d/m=%d/%s", streamIdx, m, method), func(b *testing.B) {
				runProfilerBench(b, method, paperStream(b, streamIdx, m), m, bench.TaskMode)
			})
		}
	}
}

// BenchmarkFigure4_ModeVsM reproduces Figure 4: the same comparison with the
// object count m swept, n fixed (here: per-op cost at each m).
func BenchmarkFigure4_ModeVsM(b *testing.B) {
	for streamIdx := 1; streamIdx <= 3; streamIdx++ {
		for _, m := range []int{100_000, 1_000_000, 4_000_000} {
			for _, method := range []bench.Method{bench.MethodHeap, bench.MethodSProfile} {
				b.Run(fmt.Sprintf("stream%d/m=%d/%s", streamIdx, m, method), func(b *testing.B) {
					runProfilerBench(b, method, paperStream(b, streamIdx, m), m, bench.TaskMode)
				})
			}
		}
	}
}

// BenchmarkFigure5_TrendVsM reproduces Figure 5: the time-vs-m trend on
// stream1 — S-Profile's per-op cost stays flat as m grows while the heap's
// grows with log m.
func BenchmarkFigure5_TrendVsM(b *testing.B) {
	for _, m := range []int{200_000, 400_000, 800_000, 1_600_000, 3_200_000} {
		for _, method := range []bench.Method{bench.MethodHeap, bench.MethodSProfile} {
			b.Run(fmt.Sprintf("stream1/m=%d/%s", m, method), func(b *testing.B) {
				runProfilerBench(b, method, paperStream(b, 1, m), m, bench.TaskMode)
			})
		}
	}
}

// BenchmarkFigure6_MedianVsN reproduces the left panel of Figure 6: keeping
// the median up to date with an order-statistic balanced tree (the PBDS
// stand-in) vs S-Profile, m fixed.
func BenchmarkFigure6_MedianVsN(b *testing.B) {
	const m = 1_000_000
	for _, method := range []bench.Method{bench.MethodRedBlack, bench.MethodSProfile} {
		b.Run(fmt.Sprintf("stream1/m=%d/%s", m, method), func(b *testing.B) {
			runProfilerBench(b, method, paperStream(b, 1, m), m, bench.TaskMedian)
		})
	}
}

// BenchmarkFigure6_MedianVsM reproduces the right panel of Figure 6: the same
// comparison with m swept.
func BenchmarkFigure6_MedianVsM(b *testing.B) {
	for _, m := range []int{100_000, 400_000, 1_600_000} {
		for _, method := range []bench.Method{bench.MethodRedBlack, bench.MethodSProfile} {
			b.Run(fmt.Sprintf("stream1/m=%d/%s", m, method), func(b *testing.B) {
				runProfilerBench(b, method, paperStream(b, 1, m), m, bench.TaskMedian)
			})
		}
	}
}

// BenchmarkAblationTreeKind checks that the Figure-6 gap is not an artifact
// of the tree implementation: treap and red-black engines are measured side
// by side with S-Profile on the median task.
func BenchmarkAblationTreeKind(b *testing.B) {
	const m = 1_000_000
	for _, method := range []bench.Method{bench.MethodTreap, bench.MethodRedBlack, bench.MethodSkipList, bench.MethodSProfile} {
		b.Run(fmt.Sprintf("m=%d/%s", m, method), func(b *testing.B) {
			runProfilerBench(b, method, paperStream(b, 1, m), m, bench.TaskMedian)
		})
	}
}

// BenchmarkAblationFenwick measures how close an O(log F) frequency-domain
// index (Fenwick tree over frequency counts) gets to S-Profile's O(1) bound.
func BenchmarkAblationFenwick(b *testing.B) {
	const m = 1_000_000
	for _, method := range []bench.Method{bench.MethodFenwick, bench.MethodSProfile} {
		b.Run(fmt.Sprintf("m=%d/%s", m, method), func(b *testing.B) {
			runProfilerBench(b, method, paperStream(b, 1, m), m, bench.TaskMedian)
		})
	}
}

// BenchmarkAblationArena isolates the block-slab design choice: update-only
// throughput with no pre-sizing hint (slab grows on demand) vs a generous
// hint (hot path never allocates).
func BenchmarkAblationArena(b *testing.B) {
	const m = 1_000_000
	for _, hint := range []int{0, 65_536} {
		b.Run(fmt.Sprintf("m=%d/blockhint=%d", m, hint), func(b *testing.B) {
			p, err := sprofile.New(m, sprofile.WithBlockHint(hint))
			if err != nil {
				b.Fatal(err)
			}
			tuples := pregenerate(b, paperStream(b, 1, m), pregenLimit)
			b.ReportAllocs()
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				if err := p.Apply(tuples[i%len(tuples)]); err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}

// BenchmarkWorkloadSensitivity measures mode maintenance across the full
// workload suite to show the S-Profile advantage is not tied to one stream
// shape.
func BenchmarkWorkloadSensitivity(b *testing.B) {
	const m = 100_000
	for _, name := range stream.WorkloadNames() {
		for _, method := range []bench.Method{bench.MethodHeap, bench.MethodSProfile} {
			b.Run(fmt.Sprintf("%s/%s", name, method), func(b *testing.B) {
				w, err := stream.NamedWorkload(name, m, 20190326)
				if err != nil {
					b.Fatal(err)
				}
				runProfilerBench(b, method, w, m, bench.TaskMode)
			})
		}
	}
}

// BenchmarkSlidingWindow measures the §2.3 sliding-window adapter: every push
// expires the oldest tuple, doubling the number of ±1 updates, so the
// O(1)-vs-O(log m) gap persists.
func BenchmarkSlidingWindow(b *testing.B) {
	const m = 1_000_000
	const windowSize = 100_000
	for _, method := range []bench.Method{bench.MethodHeap, bench.MethodSProfile} {
		b.Run(fmt.Sprintf("window=%d/%s", windowSize, method), func(b *testing.B) {
			p, err := bench.NewProfiler(method, m, bench.TaskMode)
			if err != nil {
				b.Fatal(err)
			}
			win, err := window.New(p, windowSize)
			if err != nil {
				b.Fatal(err)
			}
			tuples := pregenerate(b, paperStream(b, 1, m), pregenLimit)
			b.ReportAllocs()
			b.ResetTimer()
			var sink int64
			for i := 0; i < b.N; i++ {
				if err := win.Push(tuples[i%len(tuples)]); err != nil {
					b.Fatal(err)
				}
				e, _, err := p.Mode()
				if err != nil {
					b.Fatal(err)
				}
				sink += e.Frequency
			}
			benchSink += sink
		})
	}
}

// BenchmarkGraphShaving measures the §2.3 graph application: a full greedy
// peel of a random graph (average degree 8) per iteration, for each
// minimum-degree engine.
func BenchmarkGraphShaving(b *testing.B) {
	const nodes = 100_000
	g, err := graph.NewGraph(nodes)
	if err != nil {
		b.Fatal(err)
	}
	rng := stream.NewRNG(99)
	for i := 0; i < nodes*4; i++ {
		u, v := rng.Intn(nodes), rng.Intn(nodes)
		if u == v {
			v = (v + 1) % nodes
		}
		if err := g.AddEdge(u, v); err != nil {
			b.Fatal(err)
		}
	}
	for _, engine := range graph.Engines() {
		b.Run(fmt.Sprintf("nodes=%d/%s", nodes, engine), func(b *testing.B) {
			b.ReportAllocs()
			for i := 0; i < b.N; i++ {
				res, err := graph.Peel(g, engine)
				if err != nil {
					b.Fatal(err)
				}
				benchSink += int64(len(res.Order))
			}
		})
	}
}

// BenchmarkConcurrentIngestion compares the two concurrency wrappers under
// parallel producers: a single mutex (Concurrent) against per-shard locks
// (Sharded). Both keep the O(1) per-update bound; the difference is lock
// contention.
func BenchmarkConcurrentIngestion(b *testing.B) {
	const m = 1_000_000
	const shards = 32

	b.Run("single-mutex", func(b *testing.B) {
		c := sprofile.MustNewConcurrent(m)
		b.ReportAllocs()
		b.RunParallel(func(pb *testing.PB) {
			rng := stream.NewRNG(uint64(b.N) | 1)
			for pb.Next() {
				x := rng.Intn(m)
				if rng.Bernoulli(0.7) {
					_ = c.Add(x)
				} else {
					_ = c.Remove(x)
				}
			}
		})
	})
	b.Run(fmt.Sprintf("sharded-%d", shards), func(b *testing.B) {
		s := sprofile.MustNewSharded(m, shards)
		b.ReportAllocs()
		b.RunParallel(func(pb *testing.PB) {
			rng := stream.NewRNG(uint64(b.N) | 3)
			for pb.Next() {
				x := rng.Intn(m)
				if rng.Bernoulli(0.7) {
					_ = s.Add(x)
				} else {
					_ = s.Remove(x)
				}
			}
		})
	})
}

// BenchmarkApplyAll compares batched against per-event ingestion through the
// unified Profiler interface for the two concurrency wrappers. Concurrent
// amortises one lock acquisition over the whole batch; Sharded amortises lock
// round-trips over runs of same-shard tuples, so its batched gain grows with
// the stream's shard locality.
func BenchmarkApplyAll(b *testing.B) {
	const m = 1_000_000
	const batchSize = 4096
	variants := []struct {
		name string
		make func() sprofile.Profiler
	}{
		{"concurrent", func() sprofile.Profiler { return sprofile.MustBuild(m, sprofile.Synchronized()) }},
		{"sharded-32", func() sprofile.Profiler { return sprofile.MustBuild(m, sprofile.WithSharding(32)) }},
	}
	for _, v := range variants {
		tuples := stream.Take(paperStream(b, 1, m), batchSize)
		b.Run(v.name+"/per-event", func(b *testing.B) {
			p := v.make()
			b.ReportAllocs()
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				if err := p.Apply(tuples[i%batchSize]); err != nil {
					b.Fatal(err)
				}
			}
		})
		b.Run(v.name+"/batched", func(b *testing.B) {
			p := v.make()
			b.ReportAllocs()
			b.ResetTimer()
			for applied := 0; applied < b.N; applied += batchSize {
				batch := tuples
				if remaining := b.N - applied; remaining < batchSize {
					batch = tuples[:remaining]
				}
				if _, err := p.ApplyAll(batch); err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}

// BenchmarkApplyDeltas measures the delta-batched ingestion fast path
// against per-event ApplyAll on a zipf(1.5)-skewed 64k-event batch: hot-key
// traffic where the same objects repeat many times per batch, which the
// coalescer folds into one net delta and one block-boundary walk each (the
// 64k events here touch only a few thousand distinct objects).
func BenchmarkApplyDeltas(b *testing.B) {
	const m = 100_000
	const batchSize = 65_536
	pos, err := stream.NewZipf(m, 1.5)
	if err != nil {
		b.Fatal(err)
	}
	neg, err := stream.NewZipf(m, 1.5)
	if err != nil {
		b.Fatal(err)
	}
	w, err := stream.NewGenerator(stream.Config{
		M: m, AddProb: stream.DefaultAddProb, PosPDF: pos, NegPDF: neg, Seed: 7, Name: "zipf-1.5",
	})
	if err != nil {
		b.Fatal(err)
	}
	tuples := stream.Take(w, batchSize)
	b.Run("per-event", func(b *testing.B) {
		p := sprofile.MustNew(m)
		b.ReportAllocs()
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			if _, err := p.ApplyAll(tuples); err != nil {
				b.Fatal(err)
			}
		}
		b.ReportMetric(float64(b.Elapsed().Nanoseconds())/float64(b.N)/batchSize, "ns/event")
	})
	b.Run("delta-batched", func(b *testing.B) {
		p := sprofile.MustNew(m)
		c, err := sprofile.NewCoalescer(m)
		if err != nil {
			b.Fatal(err)
		}
		b.ReportAllocs()
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			deltas, err := c.Coalesce(tuples)
			if err != nil {
				b.Fatal(err)
			}
			if _, err := p.ApplyDeltas(deltas); err != nil {
				b.Fatal(err)
			}
		}
		b.ReportMetric(float64(b.Elapsed().Nanoseconds())/float64(b.N)/batchSize, "ns/event")
	})
}

// BenchmarkKeyedApplyBatch measures the keyed batched-resolve path against
// per-event keyed ingestion from one producer at shards=4 — the
// configuration whose per-event striping overhead BENCH_keyed.json recorded.
// The zipf variant is hot-key traffic, where coalescing folds most of the
// batch away; the uniform variant has almost no repeats, so it shows the
// overhead the coalescing index costs when it cannot win.
func BenchmarkKeyedApplyBatch(b *testing.B) {
	const m = 100_000
	const shards = 4
	const batchSize = 1024
	keys := make([]string, m)
	for i := range keys {
		keys[i] = fmt.Sprintf("object-%08d", i)
	}
	for _, skew := range []string{"zipf", "uniform"} {
		var dist stream.Distribution
		var err error
		if skew == "zipf" {
			dist, err = stream.NewZipf(m, 1.5)
		} else {
			dist, err = stream.NewUniform(m)
		}
		if err != nil {
			b.Fatal(err)
		}
		rng := stream.NewRNG(11)
		batch := make([]sprofile.KeyedTuple[string], batchSize)
		for i := range batch {
			batch[i] = sprofile.KeyedTuple[string]{Key: keys[dist.Sample(rng)], Action: sprofile.ActionAdd}
		}
		b.Run(skew+"/per-event", func(b *testing.B) {
			k := sprofile.MustBuildKeyed[string](m, sprofile.WithSharding(shards))
			b.ReportAllocs()
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				if err := k.Add(batch[i%batchSize].Key); err != nil {
					b.Fatal(err)
				}
			}
		})
		b.Run(skew+"/batched", func(b *testing.B) {
			k := sprofile.MustBuildKeyed[string](m, sprofile.WithSharding(shards))
			b.ReportAllocs()
			b.ResetTimer()
			for applied := 0; applied < b.N; applied += batchSize {
				events := batch
				if remaining := b.N - applied; remaining < batchSize {
					events = batch[:remaining]
				}
				if _, err := k.ApplyBatch(events); err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}

// BenchmarkKeyedParallel compares the two keyed ingestion paths under
// parallel producers: the single-mutex wrapper around the serial Keyed (the
// shape of the HTTP server's hot path before it moved to KeyedConcurrent)
// against the lock-striped KeyedConcurrent at increasing shard counts. The
// mutex path flatlines regardless of cores; the striped path scales with
// min(GOMAXPROCS, shards) because producers on different stripes never touch
// the same lock.
func BenchmarkKeyedParallel(b *testing.B) {
	const m = 1 << 16
	keys := make([]string, m)
	for i := range keys {
		keys[i] = fmt.Sprintf("object-%06d", i)
	}
	var seed atomic.Uint64
	runIngest := func(b *testing.B, add func(key string) error) {
		b.ReportAllocs()
		b.RunParallel(func(pb *testing.PB) {
			rng := stream.NewRNG(seed.Add(1))
			for pb.Next() {
				// Error, not Fatal: FailNow must not be called from
				// RunParallel's worker goroutines.
				if err := add(keys[rng.Intn(m)]); err != nil {
					b.Error(err)
					return
				}
			}
		})
	}

	b.Run("mutex-keyed", func(b *testing.B) {
		k := sprofile.MustNewKeyed[string](m)
		var mu sync.Mutex
		runIngest(b, func(key string) error {
			mu.Lock()
			defer mu.Unlock()
			return k.Add(key)
		})
	})
	for _, shards := range []int{1, 4, 16} {
		b.Run(fmt.Sprintf("striped/shards=%d", shards), func(b *testing.B) {
			k := sprofile.MustBuildKeyed[string](m, sprofile.WithSharding(shards))
			runIngest(b, k.Add)
		})
	}
}

// BenchmarkKeyedDurableParallel measures durable (WAL + per-batch fsync)
// ingestion with concurrent producers, each committing batches of 64 events.
// The mutex baseline is the pre-refactor server shape: the whole batch
// including its fsync runs under one global lock, so producers — and any
// reader — queue behind every ~100µs disk flush. The striped path appends
// under per-batch buffering, runs the fsync outside all profile locks, and
// group-commits: one fsync persists every batch whose records it covered, so
// concurrent batches share disk flushes instead of lining up for their own.
// This gap is visible even on a single core, because the fsync sleeps in the
// kernel while other producers keep applying.
func BenchmarkKeyedDurableParallel(b *testing.B) {
	const m = 1 << 12
	const batch = 64
	keys := make([]string, m)
	for i := range keys {
		keys[i] = fmt.Sprintf("object-%06d", i)
	}
	var seed atomic.Uint64

	b.Run("mutex-keyed-wal", func(b *testing.B) {
		k := sprofile.MustNewKeyed[string](m)
		log, err := wal.Open(filepath.Join(b.TempDir(), "bench.wal"), wal.Options{})
		if err != nil {
			b.Fatal(err)
		}
		defer log.Close()
		var mu sync.Mutex
		b.RunParallel(func(pb *testing.PB) {
			rng := stream.NewRNG(seed.Add(1))
			for pb.Next() {
				mu.Lock()
				for i := 0; i < batch; i++ {
					key := keys[rng.Intn(m)]
					if err := k.Add(key); err != nil {
						mu.Unlock()
						b.Error(err)
						return
					}
					if err := log.Append(wal.Record{Key: key, Action: sprofile.ActionAdd}); err != nil {
						mu.Unlock()
						b.Error(err)
						return
					}
				}
				err := log.Sync()
				mu.Unlock()
				if err != nil {
					b.Error(err)
					return
				}
			}
		})
	})
	b.Run("striped-wal", func(b *testing.B) {
		k := sprofile.MustBuildKeyed[string](m,
			sprofile.WithSharding(4),
			sprofile.WithWAL(filepath.Join(b.TempDir(), "bench.wal")))
		defer k.Close()
		b.RunParallel(func(pb *testing.PB) {
			rng := stream.NewRNG(seed.Add(1))
			for pb.Next() {
				for i := 0; i < batch; i++ {
					if err := k.Add(keys[rng.Intn(m)]); err != nil {
						b.Error(err)
						return
					}
				}
				if err := k.Sync(); err != nil {
					b.Error(err)
					return
				}
			}
		})
	})
}

// BenchmarkKeyedIngestion measures the overhead of the string-keyed wrapper
// (map lookup + id management) over the raw dense-id profile.
func BenchmarkKeyedIngestion(b *testing.B) {
	const m = 100_000
	keys := make([]string, m)
	for i := range keys {
		keys[i] = fmt.Sprintf("object-%06d", i)
	}
	b.Run("dense", func(b *testing.B) {
		p := sprofile.MustNew(m)
		rng := stream.NewRNG(1)
		b.ReportAllocs()
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			if err := p.Add(rng.Intn(m)); err != nil {
				b.Fatal(err)
			}
		}
	})
	b.Run("keyed", func(b *testing.B) {
		k := sprofile.MustNewKeyed[string](m)
		rng := stream.NewRNG(1)
		b.ReportAllocs()
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			if err := k.Add(keys[rng.Intn(m)]); err != nil {
				b.Fatal(err)
			}
		}
	})
}

// BenchmarkCoreQueries measures the constant-time query surface of a profile
// that is already loaded with a realistic frequency distribution.
func BenchmarkCoreQueries(b *testing.B) {
	const m = 1_000_000
	p := sprofile.MustNew(m)
	g := paperStream(b, 1, m)
	for i := 0; i < 2_000_000; i++ {
		if err := p.Apply(g.Next()); err != nil {
			b.Fatal(err)
		}
	}
	b.Run("Mode", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			e, _, _ := p.Mode()
			benchSink += e.Frequency
		}
	})
	b.Run("Median", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			e, _ := p.Median()
			benchSink += e.Frequency
		}
	})
	b.Run("KthLargest-100", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			e, _ := p.KthLargest(100)
			benchSink += e.Frequency
		}
	})
	b.Run("TopK-10", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			benchSink += int64(len(p.TopK(10)))
		}
	})
	b.Run("Quantile-p99", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			e, _ := p.Quantile(0.99)
			benchSink += e.Frequency
		}
	})
}

// BenchmarkQueryComposite measures the query plane's selling point: ONE
// composite Query{Mode, TopK(10), Quantile(.99), Summary} against the
// equivalent sequence of four individual getter calls, on each concurrency
// variant. The composite pays one lock acquisition (Concurrent), one
// lock-all plus one merged distribution (Sharded), or one quiesce
// (KeyedConcurrent) where the sequence pays four of each — and only the
// composite's answers are guaranteed to come from one cut.
func BenchmarkQueryComposite(b *testing.B) {
	const m = 100_000
	q := sprofile.Query{Mode: true, TopK: 10, Quantiles: []float64{0.99}, Summary: true}
	// Both paths hand their materialised result off (as a dashboard renderer
	// or JSON encoder would), so escape analysis treats them alike.
	publish := func(res sprofile.QueryResult) {
		queryResultSink = res
		benchSink += res.Mode.Frequency + res.Summary.Total
	}

	fill := func(b *testing.B, p sprofile.Profiler) {
		b.Helper()
		g := paperStream(b, 1, m)
		for i := 0; i < 500_000; i++ {
			if err := p.Apply(g.Next()); err != nil {
				b.Fatal(err)
			}
		}
	}
	composite := func(b *testing.B, p sprofile.Profiler) {
		b.Helper()
		qr := p.(sprofile.Querier)
		for i := 0; i < b.N; i++ {
			res, err := qr.Query(q)
			if err != nil {
				b.Fatal(err)
			}
			publish(res)
		}
	}
	// individual issues the equivalent sequence of getter calls and
	// materialises the same QueryResult the composite returns (a dashboard
	// needs the values in hand either way) — N lock round-trips instead of
	// one, and no one-cut guarantee.
	individual := func(b *testing.B, p sprofile.Profiler) {
		b.Helper()
		for i := 0; i < b.N; i++ {
			var res sprofile.QueryResult
			e, ties, err := p.Mode()
			if err != nil {
				b.Fatal(err)
			}
			res.Mode = &sprofile.Extreme{Entry: e, Ties: ties}
			res.TopK = p.TopK(10)
			qe, err := p.Quantile(0.99)
			if err != nil {
				b.Fatal(err)
			}
			res.Quantiles = []sprofile.QuantileEntry{{Q: 0.99, Entry: qe}}
			s := p.Summarize()
			res.Summary = &s
			publish(res)
		}
	}
	// withIngest runs fn while writer goroutines hammer the profile — the
	// scenario the query plane exists for. Fewer lock round-trips per
	// dashboard read means fewer waits behind writers holding (or queueing
	// for) the write lock.
	withIngest := func(b *testing.B, p sprofile.Profiler, fn func(*testing.B, sprofile.Profiler)) {
		b.Helper()
		var stop atomic.Bool
		var wg sync.WaitGroup
		for g := 0; g < 2; g++ {
			wg.Add(1)
			go func(g int) {
				defer wg.Done()
				for i := 0; !stop.Load(); i++ {
					_ = p.Add((i*2 + g) % m)
				}
			}(g)
		}
		b.ResetTimer()
		fn(b, p)
		b.StopTimer()
		stop.Store(true)
		wg.Wait()
	}
	run := func(name string, p sprofile.Profiler) {
		fillOnce := sync.OnceFunc(func() { fill(b, p) })
		b.Run(name+"/composite", func(b *testing.B) {
			fillOnce()
			b.ResetTimer()
			composite(b, p)
		})
		b.Run(name+"/individual", func(b *testing.B) {
			fillOnce()
			b.ResetTimer()
			individual(b, p)
		})
		b.Run(name+"/composite-under-ingest", func(b *testing.B) {
			fillOnce()
			withIngest(b, p, composite)
		})
		b.Run(name+"/individual-under-ingest", func(b *testing.B) {
			fillOnce()
			withIngest(b, p, individual)
		})
	}
	run("Concurrent", sprofile.MustNewConcurrent(m))
	run("Sharded-8", sprofile.MustNewSharded(m, 8))

	// The keyed variant goes through QueryKeys (one quiesced cut) versus the
	// keyed getters.
	keyed := sprofile.MustBuildKeyed[int64](m, sprofile.WithSharding(8))
	kq := sprofile.KeyedQuery[int64]{Mode: true, TopK: 10, Quantiles: []float64{0.99}, Summary: true}
	keyedFill := sync.OnceFunc(func() {
		g := paperStream(b, 1, m)
		for i := 0; i < 500_000; i++ {
			t := g.Next()
			var err error
			if t.Action == sprofile.ActionAdd {
				err = keyed.Add(int64(t.Object))
			} else if err = keyed.Remove(int64(t.Object)); errors.Is(err, sprofile.ErrUnknownKey) ||
				errors.Is(err, sprofile.ErrStrictViolation) {
				err = nil // the raw stream can remove before adding; skip
			}
			if err != nil {
				b.Fatal(err)
			}
		}
	})
	b.Run("KeyedConcurrent-8/composite", func(b *testing.B) {
		keyedFill()
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			res, err := keyed.QueryKeys(kq)
			if err != nil {
				b.Fatal(err)
			}
			benchSink += res.Mode.Frequency + res.Summary.Total
		}
	})
	b.Run("KeyedConcurrent-8/individual", func(b *testing.B) {
		keyedFill()
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			e, _, err := keyed.Mode()
			if err != nil {
				b.Fatal(err)
			}
			benchSink += int64(len(keyed.TopK(10)))
			if _, err := keyed.Quantile(0.99); err != nil {
				b.Fatal(err)
			}
			benchSink += e.Frequency + keyed.Summarize().Total
		}
	})
}

// BenchmarkRecovery measures cold-start time of a durable keyed profile at
// 1M ingested events: rebuilding from a full, never-checkpointed log (every
// event replayed) versus from a checkpoint snapshot taken at 900k events
// plus the 100k-event tail. The second path is what the checkpoint subsystem
// buys: recovery bounded by the checkpoint cadence instead of the ingest
// history. cmd/sprofile-bench's "recovery" experiment records the same
// comparison in wall-clock form (BENCH_recovery.json).
func BenchmarkRecovery(b *testing.B) {
	const (
		m            = 100_000
		n            = 1_000_000
		checkpointAt = n * 9 / 10
	)
	keys := make([]string, m)
	for i := range keys {
		keys[i] = fmt.Sprintf("object-%08d", i)
	}
	buildDir := func(b *testing.B, checkpointed bool) string {
		b.Helper()
		dir := filepath.Join(b.TempDir(), "wal")
		k, err := sprofile.BuildKeyed[string](m, sprofile.WithWAL(dir))
		if err != nil {
			b.Fatal(err)
		}
		rng := stream.NewRNG(20190326)
		for i := 0; i < n; i++ {
			if checkpointed && i == checkpointAt {
				if err := k.Checkpoint(); err != nil {
					b.Fatal(err)
				}
			}
			if err := k.Add(keys[rng.Intn(m)]); err != nil {
				b.Fatal(err)
			}
		}
		if err := k.Close(); err != nil {
			b.Fatal(err)
		}
		return dir
	}
	coldStart := func(b *testing.B, dir string, wantTail bool) {
		b.Helper()
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			k, err := sprofile.BuildKeyed[string](m, sprofile.WithWAL(dir))
			if err != nil {
				b.Fatal(err)
			}
			b.StopTimer()
			if wantTail && k.Replayed() != n-checkpointAt {
				b.Fatalf("replayed %d tail records, want %d", k.Replayed(), n-checkpointAt)
			}
			if !wantTail && k.Replayed() != n {
				b.Fatalf("replayed %d records, want %d", k.Replayed(), n)
			}
			if err := k.Close(); err != nil {
				b.Fatal(err)
			}
			b.StartTimer()
		}
	}
	b.Run("full-log", func(b *testing.B) {
		dir := buildDir(b, false)
		coldStart(b, dir, false)
	})
	b.Run("snapshot-tail", func(b *testing.B) {
		dir := buildDir(b, true)
		coldStart(b, dir, true)
	})
}
