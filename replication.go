package sprofile

import (
	"context"
	"errors"
	"fmt"
	"net/http"
	"os"
	"runtime/pprof"
	"sync"
	"sync/atomic"
	"time"

	"sprofile/internal/checkpoint"
	"sprofile/internal/replication"
)

// ReplicationStatus is the staleness watermark of a replicated profile: the
// WAL position the answering node has applied and how stale it may be
// relative to the leader. It rides on KeyedQueryResult and /healthz so every
// read can be judged against a freshness budget.
//
// On a leader, Segment/Offset are the append position and StalenessMs is 0.
// On a follower, StalenessMs is the wall-clock bound on how far behind the
// answer may be: time elapsed since the last instant the follower provably
// held every write the leader had acknowledged. It grows while the leader is
// unreachable — it measures doubt, not confirmed lag.
type ReplicationStatus struct {
	Role          string `json:"role"` // "leader" or "follower"
	Segment       uint64 `json:"segment"`
	Offset        int64  `json:"offset"`
	LeaderSegment uint64 `json:"leader_segment,omitempty"`
	LeaderOffset  int64  `json:"leader_offset,omitempty"`
	// LagBytes is the byte lag within the leader's current segment, or -1
	// when the follower is one or more whole segments behind.
	LagBytes    int64  `json:"lag_bytes"`
	StalenessMs int64  `json:"staleness_ms"`
	CaughtUp    bool   `json:"caught_up"`
	Leader      string `json:"leader,omitempty"` // leader base URL (followers)
	Records     uint64 `json:"records,omitempty"`
}

// WALStats is a point-in-time picture of a durable profile's log and
// checkpoint state, for health endpoints.
type WALStats struct {
	Segment        uint64    // current append segment id
	Offset         int64     // bytes of that segment on disk
	Segments       int       // segment files in the directory
	Fsyncs         uint64    // record-durability fsyncs issued
	TailBytes      int64     // log bytes not yet covered by a snapshot
	SnapshotSeq    uint64    // latest snapshot sequence (0 = none)
	LastCheckpoint time.Time // when that snapshot was published
}

// WALStats reports the durability layer's state; ok is false without
// WithWAL.
func (k *KeyedConcurrent[K]) WALStats() (stats WALStats, ok bool) {
	if k.store == nil {
		return WALStats{}, false
	}
	pos := k.store.AppendPosition()
	seq, _ := k.store.SnapshotMeta()
	return WALStats{
		Segment:        pos.Segment,
		Offset:         pos.Offset,
		Segments:       k.store.SegmentCount(),
		Fsyncs:         k.store.Fsyncs(),
		TailBytes:      k.store.TailBytes(),
		SnapshotSeq:    seq,
		LastCheckpoint: k.store.LastCheckpoint(),
	}, true
}

// replicationSource exposes the store to the internal replication handler;
// nil without WithWAL. (Internal: the server package reaches it through
// NewReplicationHandler-style glue, not application code.)
func (k *KeyedConcurrent[K]) replicationSource() *replication.Source {
	if k.store == nil {
		return nil
	}
	return replication.NewSource(k.store)
}

// ReplicationHandler returns the HTTP handler serving this profile's WAL to
// followers (GET /v1/replication/snapshot and GET /v1/replication/wal), or
// nil when the profile has no WAL to ship.
func (k *KeyedConcurrent[K]) ReplicationHandler() *replication.Handler {
	src := k.replicationSource()
	if src == nil {
		return nil
	}
	return replication.NewHandler(src)
}

// LeaderReplicationStatus is the watermark a WAL-backed leader attaches to
// its answers; ok is false without WithWAL.
func (k *KeyedConcurrent[K]) LeaderReplicationStatus() (st ReplicationStatus, ok bool) {
	if k.store == nil {
		return ReplicationStatus{}, false
	}
	pos := k.store.AppendPosition()
	return ReplicationStatus{
		Role:     "leader",
		Segment:  pos.Segment,
		Offset:   pos.Offset,
		CaughtUp: true,
	}, true
}

// FollowerConfig configures NewKeyedFollower.
type FollowerConfig struct {
	// Capacity is the profile capacity m, matching the leader's.
	Capacity int
	// Leader is the leader's base URL.
	Leader string
	// Dir is the local mirror directory.
	Dir string
	// HTTPClient overrides http.DefaultClient for replication traffic.
	HTTPClient *http.Client
	// LongPoll is the tail wait asked of the leader per poll (default 20s).
	LongPoll time.Duration
	// Build configures the profile (sharding, key recycling, profile
	// options). WithWAL/WithCheckpoints are rejected here: the mirror
	// directory is managed by the follower and only Promote opens it for
	// appending.
	Build []BuildOption
	// Promote is appended to Build when the follower is promoted — the place
	// for WithWALSyncEvery and WithCheckpoints, which only apply to a
	// leader.
	Promote []BuildOption
}

// KeyedFollower is a read-only replica of a leader's KeyedConcurrent[string]
// profile. It bootstraps from the leader's snapshot, mirrors the WAL
// byte-for-byte into its local directory (which therefore stays a valid
// checkpointed log directory at every instant), applies each record as it
// completes, and can promote to a full leader by running the ordinary
// recovery path over the mirror.
//
// Reads go through Profile(); updates on that profile are not journaled and
// must not happen — servers enforce this by rejecting writes upfront.
type KeyedFollower struct {
	cfg FollowerConfig

	cur atomic.Pointer[KeyedConcurrent[string]]

	// lifecycle is the single-owner lock over rebootstraps, promote, and
	// start/stop; the polling loop coordinates through it too.
	lifecycle sync.Mutex
	follower  *replication.Follower
	localSeq  uint64
	promoted  *KeyedConcurrent[string]
	cancel    context.CancelFunc
	done      chan struct{}

	lastErr atomic.Pointer[followerErr]

	// unregMetrics removes this follower from the scrape-time gauge
	// aggregation; set at construction, run once by Close.
	unregMetrics func()
}

type followerErr struct{ err error }

// NewKeyedFollower bootstraps (or resumes) the mirror in cfg.Dir from
// cfg.Leader and builds the replica profile from it. The returned follower
// is not yet polling: call Start for continuous replication or CatchUp for
// one-shot convergence.
func NewKeyedFollower(cfg FollowerConfig) (*KeyedFollower, error) {
	if cfg.Capacity <= 0 {
		return nil, fmt.Errorf("%w: follower capacity must be positive, got %d", ErrBuildConfig, cfg.Capacity)
	}
	if cfg.Leader == "" || cfg.Dir == "" {
		return nil, fmt.Errorf("%w: follower needs both a leader URL and a mirror directory", ErrBuildConfig)
	}
	if cfg.LongPoll <= 0 {
		cfg.LongPoll = 20 * time.Second
	}
	kf := &KeyedFollower{cfg: cfg}
	if err := kf.buildReplica(context.Background(), false); err != nil {
		return nil, err
	}
	kf.unregMetrics = registerFollower(kf.Status)
	return kf, nil
}

// buildReplica (re)constructs the replica: optionally wipe the mirror,
// bootstrap a snapshot if the mirror is empty, run read-only recovery over
// the mirror, and arm a Follower at the recovered position. Callers hold
// lifecycle (or are the constructor).
func (kf *KeyedFollower) buildReplica(ctx context.Context, wipe bool) error {
	if old := kf.follower; old != nil {
		old.Close()
		kf.follower = nil
	}
	if wipe {
		if err := replication.WipeMirror(kf.cfg.Dir); err != nil {
			return err
		}
		mReplRebootstraps.Inc()
	}
	if err := os.MkdirAll(kf.cfg.Dir, 0o755); err != nil {
		return err
	}
	var pin string
	if empty, err := mirrorEmpty(kf.cfg.Dir); err != nil {
		return err
	} else if empty {
		info, err := replication.Bootstrap(ctx, kf.cfg.HTTPClient, kf.cfg.Leader, kf.cfg.Dir)
		if err != nil {
			return fmt.Errorf("sprofile: bootstrapping from %s: %w", kf.cfg.Leader, err)
		}
		pin = info.Pin
	}

	store, err := checkpoint.Open(kf.cfg.Dir, checkpoint.Options{})
	if err != nil {
		return fmt.Errorf("sprofile: opening mirror %s: %w", kf.cfg.Dir, err)
	}
	profile, err := BuildKeyed[string](kf.cfg.Capacity, kf.cfg.Build...)
	if err != nil {
		return err
	}
	if st := store.TakeState(); st != nil {
		if err := profile.restore(st); err != nil {
			return fmt.Errorf("sprofile: restoring mirror snapshot: %w", err)
		}
	}
	_, pos, err := store.ReplayTailReadOnly(profile.applyWALRecord)
	if err != nil {
		return fmt.Errorf("sprofile: replaying mirror %s: %w", kf.cfg.Dir, err)
	}
	profile.replayed = store.Stats().TailRecords
	profile.stats = recoveryStats(store.Stats())
	localSeq, _ := store.SnapshotMeta()

	f, err := replication.NewFollower(replication.Config{
		Leader:       kf.cfg.Leader,
		Dir:          kf.cfg.Dir,
		Start:        pos,
		Apply:        profile.applyWALRecord,
		HTTPClient:   kf.cfg.HTTPClient,
		LongPoll:     kf.cfg.LongPoll,
		Pin:          pin,
		LocalSnapSeq: localSeq,
	})
	if err != nil {
		return err
	}
	kf.follower = f
	kf.localSeq = localSeq
	kf.cur.Store(profile)
	return nil
}

// mirrorEmpty reports whether dir holds no snapshot and no segment — i.e. a
// bootstrap is needed before recovery can position the mirror.
func mirrorEmpty(dir string) (bool, error) {
	entries, err := os.ReadDir(dir)
	if err != nil {
		return false, err
	}
	for _, e := range entries {
		name := e.Name()
		if (len(name) > 4 && name[len(name)-4:] == ".seg") || (len(name) > 4 && name[len(name)-4:] == ".sks") {
			return false, nil
		}
	}
	return true, nil
}

// Profile returns the current replica profile. The pointer changes on
// rebootstrap and on Promote; callers should re-fetch it per operation, not
// cache it.
func (kf *KeyedFollower) Profile() *KeyedConcurrent[string] { return kf.cur.Load() }

// LastError returns the most recent replication loop failure (transient
// errors included); nil while the loop is healthy.
func (kf *KeyedFollower) LastError() error {
	if e := kf.lastErr.Load(); e != nil {
		return e.err
	}
	return nil
}

// Status reports the replica's staleness watermark.
func (kf *KeyedFollower) Status() ReplicationStatus {
	kf.lifecycle.Lock()
	promoted := kf.promoted
	f := kf.follower
	kf.lifecycle.Unlock()
	if promoted != nil {
		st, _ := promoted.LeaderReplicationStatus()
		return st
	}
	if f == nil {
		return ReplicationStatus{Role: "follower", Leader: kf.cfg.Leader}
	}
	s := f.Status()
	st := ReplicationStatus{
		Role:          "follower",
		Segment:       s.Applied.Segment,
		Offset:        s.Applied.Offset,
		LeaderSegment: s.Leader.Segment,
		LeaderOffset:  s.Leader.Offset,
		LagBytes:      -1,
		CaughtUp:      s.CaughtUp,
		Leader:        kf.cfg.Leader,
		Records:       s.Records,
	}
	if s.Written.Segment == s.Leader.Segment {
		st.LagBytes = s.Leader.Offset - s.Written.Offset
		if st.LagBytes < 0 {
			st.LagBytes = 0
		}
	}
	if !s.FreshAsOf.IsZero() {
		st.StalenessMs = time.Since(s.FreshAsOf).Milliseconds()
	}
	return st
}

// CatchUp drives the mirror until it covers the leader's append position,
// rebootstrapping from a fresh snapshot if the leader pruned past the
// mirror. It is the synchronous alternative to Start (tests and one-shot
// replicas use it); do not mix it with a running Start loop.
func (kf *KeyedFollower) CatchUp(ctx context.Context) error {
	for {
		kf.lifecycle.Lock()
		f, promoted := kf.follower, kf.promoted
		kf.lifecycle.Unlock()
		if promoted != nil {
			return errFollowerPromoted
		}
		var err error
		if f == nil {
			// A previous rebootstrap failed; try again.
			kf.lifecycle.Lock()
			err = kf.buildReplica(ctx, true)
			kf.lifecycle.Unlock()
			if err != nil {
				return err
			}
			continue
		}
		err = f.CatchUp(ctx)
		if errors.Is(err, replication.ErrSnapshotRequired) {
			kf.lifecycle.Lock()
			err = kf.buildReplica(ctx, true)
			kf.lifecycle.Unlock()
			if err != nil {
				return err
			}
			continue
		}
		return err
	}
}

// Start launches the continuous replication loop. Transient leader failures
// are retried with backoff (and surface through LastError and the staleness
// watermark); a pruned-past-us leader triggers an automatic rebootstrap.
func (kf *KeyedFollower) Start() {
	kf.lifecycle.Lock()
	defer kf.lifecycle.Unlock()
	if kf.cancel != nil || kf.promoted != nil {
		return
	}
	ctx, cancel := context.WithCancel(context.Background())
	kf.cancel = cancel
	kf.done = make(chan struct{})
	done := kf.done
	go pprof.Do(ctx, pprof.Labels("sprofile_plane", "follower"), func(ctx context.Context) {
		kf.loop(ctx, done)
	})
}

func (kf *KeyedFollower) loop(ctx context.Context, done chan struct{}) {
	defer close(done)
	backoff := 100 * time.Millisecond
	const maxBackoff = 5 * time.Second
	for ctx.Err() == nil {
		kf.lifecycle.Lock()
		f := kf.follower
		kf.lifecycle.Unlock()
		var err error
		if f == nil {
			// A previous rebootstrap failed; retry it.
			kf.lifecycle.Lock()
			err = kf.buildReplica(ctx, true)
			kf.lifecycle.Unlock()
		} else {
			err = f.Poll(ctx)
		}
		if err == nil {
			kf.lastErr.Store(nil)
			backoff = 100 * time.Millisecond
			continue
		}
		if ctx.Err() != nil {
			return
		}
		if errors.Is(err, replication.ErrSnapshotRequired) {
			kf.lifecycle.Lock()
			err = kf.buildReplica(ctx, true)
			kf.lifecycle.Unlock()
		}
		if err != nil {
			kf.lastErr.Store(&followerErr{err: err})
			select {
			case <-ctx.Done():
				return
			case <-time.After(backoff):
			}
			if backoff *= 2; backoff > maxBackoff {
				backoff = maxBackoff
			}
		}
	}
}

// Stop halts the replication loop (if running) without closing anything;
// replication can resume with Start.
func (kf *KeyedFollower) Stop() {
	kf.lifecycle.Lock()
	cancel, done := kf.cancel, kf.done
	kf.cancel, kf.done = nil, nil
	kf.lifecycle.Unlock()
	if cancel != nil {
		cancel()
		<-done
	}
}

// Promote turns the replica into a leader: the polling loop stops, the
// mirror file is fsynced shut, and a fresh KeyedConcurrent is built over the
// mirror directory via the ordinary recovery path — WithWAL(dir) plus the
// configured Promote options — so the new leader appends to the very log it
// was mirroring and can itself serve replication. Returns the promoted
// profile (idempotent: repeat calls return the same one).
func (kf *KeyedFollower) Promote() (*KeyedConcurrent[string], error) {
	kf.Stop()
	kf.lifecycle.Lock()
	defer kf.lifecycle.Unlock()
	if kf.promoted != nil {
		return kf.promoted, nil
	}
	if kf.follower != nil {
		if err := kf.follower.Close(); err != nil {
			return nil, err
		}
		kf.follower = nil
	}
	opts := append(append([]BuildOption{}, kf.cfg.Build...), WithWAL(kf.cfg.Dir))
	opts = append(opts, kf.cfg.Promote...)
	leader, err := BuildKeyed[string](kf.cfg.Capacity, opts...)
	if err != nil {
		return nil, fmt.Errorf("sprofile: promoting follower over %s: %w", kf.cfg.Dir, err)
	}
	kf.promoted = leader
	kf.cur.Store(leader)
	return leader, nil
}

// Promoted reports whether Promote has completed.
func (kf *KeyedFollower) Promoted() bool {
	kf.lifecycle.Lock()
	defer kf.lifecycle.Unlock()
	return kf.promoted != nil
}

// Close stops replication and closes the mirror (or, after Promote, the
// promoted profile's log).
func (kf *KeyedFollower) Close() error {
	kf.Stop()
	kf.lifecycle.Lock()
	defer kf.lifecycle.Unlock()
	if kf.unregMetrics != nil {
		kf.unregMetrics()
		kf.unregMetrics = nil
	}
	if kf.follower != nil {
		if err := kf.follower.Close(); err != nil {
			return err
		}
		kf.follower = nil
	}
	if kf.promoted != nil {
		return kf.promoted.Close()
	}
	return nil
}
