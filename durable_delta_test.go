package sprofile

// Internal tests for the Durable delta-batch path: they reach through to the
// checkpoint store's fsync counter, which the public API deliberately does
// not expose.

import (
	"errors"
	"path/filepath"
	"testing"
)

func buildDurable(t *testing.T, dir string, opts ...BuildOption) *Durable {
	t.Helper()
	p, err := Build(100, append([]BuildOption{WithWAL(dir)}, opts...)...)
	if err != nil {
		t.Fatal(err)
	}
	d, ok := p.(*Durable)
	if !ok {
		t.Fatalf("Build with WithWAL returned %T", p)
	}
	return d
}

// TestDurableApplyDeltasOneFsync pins the bulk contract: a whole coalesced
// batch reaches stable storage with exactly one fsync, however many deltas
// it carries.
func TestDurableApplyDeltasOneFsync(t *testing.T) {
	dir := filepath.Join(t.TempDir(), "wal")
	d := buildDurable(t, dir)
	defer d.Close()

	base := d.store.Fsyncs()
	deltas := make([]Delta, 50)
	for i := range deltas {
		deltas[i] = Delta{Object: i, Delta: int64(i + 1)}
	}
	n, err := d.ApplyDeltas(deltas)
	if err != nil || n != len(deltas) {
		t.Fatalf("ApplyDeltas: n=%d err=%v", n, err)
	}
	if got := d.store.Fsyncs() - base; got != 1 {
		t.Fatalf("bulk batch cost %d fsyncs, want exactly 1", got)
	}

	// A second batch costs exactly one more.
	if _, err := d.ApplyDeltas([]Delta{{Object: 3, Delta: -2}, {Object: 4, Delta: 7}}); err != nil {
		t.Fatal(err)
	}
	if got := d.store.Fsyncs() - base; got != 2 {
		t.Fatalf("two bulk batches cost %d fsyncs, want 2", got)
	}

	// A zero-gross delta still rejects bad ids, like every DeltaUpdater.
	if err := d.AddN(d.Cap(), 0); !errors.Is(err, ErrObjectRange) {
		t.Fatalf("out-of-range no-op AddN: %v", err)
	}
	if err := d.ApplyDelta(Delta{Object: -1}); !errors.Is(err, ErrObjectRange) {
		t.Fatalf("negative-id no-op delta: %v", err)
	}
	if n, err := d.ApplyDeltas([]Delta{{Object: -1}}); !errors.Is(err, ErrObjectRange) || n != 0 {
		t.Fatalf("negative-id no-op batch: n=%d err=%v", n, err)
	}
}

// TestKeyedBatchRejectsUnjournalableKeys: with a WAL, a key the log could
// not record rejects the batch before anything applies — one bad key must
// not void journaling for the valid entries sharing its stripe record.
func TestKeyedBatchRejectsUnjournalableKeys(t *testing.T) {
	dir := filepath.Join(t.TempDir(), "wal")
	k, err := BuildKeyed[string](16, WithWAL(dir))
	if err != nil {
		t.Fatal(err)
	}
	defer k.Close()
	huge := string(make([]byte, (1<<20)+1))
	n, err := k.ApplyBatch([]KeyedTuple[string]{
		{Key: "fine", Action: ActionAdd},
		{Key: huge, Action: ActionAdd},
	})
	if err == nil || n != 0 {
		t.Fatalf("oversized key in batch: n=%d err=%v", n, err)
	}
	if f, _ := k.Count("fine"); f != 0 {
		t.Fatalf("rejected batch applied a valid entry: %d", f)
	}
	if err := k.ApplyDelta(huge, 1, 0); err == nil {
		t.Fatal("oversized key accepted by ApplyDelta")
	}
	// Without a WAL any comparable key is fine.
	plain := MustBuildKeyed[string](16)
	if _, err := plain.ApplyBatch([]KeyedTuple[string]{{Key: huge, Action: ActionAdd}}); err != nil {
		t.Fatalf("in-memory profile rejected a large key: %v", err)
	}
}

// TestDurableDeltaRecovery checks that batch records replay into the same
// state the writer held, including the gross event counters.
func TestDurableDeltaRecovery(t *testing.T) {
	dir := filepath.Join(t.TempDir(), "wal")
	d := buildDurable(t, dir)
	if _, err := d.ApplyDeltas([]Delta{
		{Object: 1, Delta: 5},
		{Object: 2, Delta: 3, Adds: 8, Removes: 5},
		{Object: 3, Delta: 0, Adds: 2, Removes: 2}, // cancelled, counters only
	}); err != nil {
		t.Fatal(err)
	}
	if err := d.AddN(1, 4); err != nil {
		t.Fatal(err)
	}
	if err := d.RemoveN(2, 2); err != nil {
		t.Fatal(err)
	}
	before := d.Summarize()
	if err := d.Close(); err != nil {
		t.Fatal(err)
	}

	d2 := buildDurable(t, dir)
	defer d2.Close()
	after := d2.Summarize()
	if before != after {
		t.Fatalf("summary diverged after recovery:\n before %+v\n after  %+v", before, after)
	}
	for obj, want := range map[int]int64{1: 9, 2: 1, 3: 0} {
		if f, err := d2.Count(obj); err != nil || f != want {
			t.Fatalf("object %d recovered at %d (%v), want %d", obj, f, err, want)
		}
	}
	if after.Adds != 5+8+2+4 || after.Removes != 5+2+2 {
		t.Fatalf("gross counters (%d,%d) lost in recovery", after.Adds, after.Removes)
	}
}

// TestDurableApplyDeltasStrictPrefix checks stop-at-first-error semantics
// and that only the applied prefix is journaled.
func TestDurableApplyDeltasStrictPrefix(t *testing.T) {
	dir := filepath.Join(t.TempDir(), "wal")
	d := buildDurable(t, dir, Strict())
	n, err := d.ApplyDeltas([]Delta{
		{Object: 0, Delta: 2},
		{Object: 1, Delta: -1}, // strict violation
		{Object: 2, Delta: 9},
	})
	if !errors.Is(err, ErrNegativeFrequency) {
		t.Fatalf("ApplyDeltas: %v", err)
	}
	if n != 1 {
		t.Fatalf("applied %d deltas, want 1", n)
	}
	if err := d.Close(); err != nil {
		t.Fatal(err)
	}

	d2 := buildDurable(t, dir, Strict())
	defer d2.Close()
	if f, _ := d2.Count(0); f != 2 {
		t.Fatalf("object 0 recovered at %d, want 2", f)
	}
	if f, _ := d2.Count(2); f != 0 {
		t.Fatalf("object 2 recovered at %d, want 0 (delta after the error)", f)
	}
}

// TestDurableWindowRejectsDeltas pins the window caveat: a Durable over a
// window adapter refuses coalesced deltas instead of silently reordering
// the ring.
func TestDurableWindowRejectsDeltas(t *testing.T) {
	dir := filepath.Join(t.TempDir(), "wal")
	p, err := Build(100, Windowed(10), WithWAL(dir))
	if err != nil {
		t.Fatal(err)
	}
	d := p.(*Durable)
	defer d.Close()
	if err := d.AddN(1, 3); !errors.Is(err, ErrBuildConfig) {
		t.Fatalf("window AddN: %v", err)
	}
	if _, err := d.ApplyDeltas([]Delta{{Object: 1, Delta: 1}}); !errors.Is(err, ErrBuildConfig) {
		t.Fatalf("window ApplyDeltas: %v", err)
	}
	// The per-event path still works.
	if err := d.Add(1); err != nil {
		t.Fatal(err)
	}
}
