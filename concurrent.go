package sprofile

import (
	"sync"

	"sprofile/internal/core"
)

// Concurrent wraps a Profile with a read-write mutex so that multiple
// goroutines can update and query it. Updates take the write lock; queries
// take the read lock, so concurrent readers do not serialise each other.
//
// The O(1) update bound of the underlying structure is preserved; the mutex
// adds a constant overhead per call. For very high ingest rates prefer
// sharding by object id and merging distributions at query time.
type Concurrent struct {
	mu sync.RWMutex
	p  *core.Profile
}

// NewConcurrent returns a mutex-protected S-Profile over m dense object ids.
func NewConcurrent(m int, opts ...Option) (*Concurrent, error) {
	p, err := core.New(m, opts...)
	if err != nil {
		return nil, err
	}
	return &Concurrent{p: p}, nil
}

// MustNewConcurrent is NewConcurrent for callers with a known-good capacity;
// it panics on error.
func MustNewConcurrent(m int, opts ...Option) *Concurrent {
	c, err := NewConcurrent(m, opts...)
	if err != nil {
		panic(err)
	}
	return c
}

// WrapConcurrent protects an existing profile. The caller must stop using the
// profile directly afterwards.
func WrapConcurrent(p *Profile) *Concurrent { return &Concurrent{p: p} }

// Add increments the frequency of object x.
func (c *Concurrent) Add(x int) error {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.p.Add(x)
}

// Remove decrements the frequency of object x.
func (c *Concurrent) Remove(x int) error {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.p.Remove(x)
}

// Apply applies one log tuple.
func (c *Concurrent) Apply(t Tuple) error {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.p.Apply(t)
}

// ApplyAll applies tuples in order, holding the write lock once for the whole
// batch; it returns the number applied and the first error.
func (c *Concurrent) ApplyAll(tuples []Tuple) (int, error) {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.p.ApplyAll(tuples)
}

// AddN raises the frequency of object x by k in one step under one lock
// acquisition.
func (c *Concurrent) AddN(x int, k int64) error {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.p.AddN(x, k)
}

// RemoveN lowers the frequency of object x by k in one step under one lock
// acquisition.
func (c *Concurrent) RemoveN(x int, k int64) error {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.p.RemoveN(x, k)
}

// ApplyDelta applies one coalesced delta.
func (c *Concurrent) ApplyDelta(d Delta) error {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.p.ApplyDelta(d)
}

// ApplyDeltas applies a coalesced batch, holding the write lock once for the
// whole batch; it returns the number of deltas applied and the first error.
func (c *Concurrent) ApplyDeltas(deltas []Delta) (int, error) {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.p.ApplyDeltas(deltas)
}

// Count returns the current frequency of object x.
func (c *Concurrent) Count(x int) (int64, error) {
	c.mu.RLock()
	defer c.mu.RUnlock()
	return c.p.Count(x)
}

// Mode returns an object with maximum frequency, the frequency, and the
// number of objects sharing it.
func (c *Concurrent) Mode() (Entry, int, error) {
	c.mu.RLock()
	defer c.mu.RUnlock()
	return c.p.Mode()
}

// Min returns an object with minimum frequency, the frequency, and the number
// of objects sharing it.
func (c *Concurrent) Min() (Entry, int, error) {
	c.mu.RLock()
	defer c.mu.RUnlock()
	return c.p.Min()
}

// TopK returns the k most frequent entries in non-increasing frequency order.
func (c *Concurrent) TopK(k int) []Entry {
	c.mu.RLock()
	defer c.mu.RUnlock()
	return c.p.TopK(k)
}

// BottomK returns the k least frequent entries in non-decreasing frequency
// order.
func (c *Concurrent) BottomK(k int) []Entry {
	c.mu.RLock()
	defer c.mu.RUnlock()
	return c.p.BottomK(k)
}

// KthLargest returns the entry holding the k-th largest frequency (1-based).
func (c *Concurrent) KthLargest(k int) (Entry, error) {
	c.mu.RLock()
	defer c.mu.RUnlock()
	return c.p.KthLargest(k)
}

// Median returns the lower-median entry of the frequency multiset.
func (c *Concurrent) Median() (Entry, error) {
	c.mu.RLock()
	defer c.mu.RUnlock()
	return c.p.Median()
}

// Quantile returns the entry at quantile q in [0, 1].
func (c *Concurrent) Quantile(q float64) (Entry, error) {
	c.mu.RLock()
	defer c.mu.RUnlock()
	return c.p.Quantile(q)
}

// Majority returns the object holding a strict majority of the total count,
// if one exists.
func (c *Concurrent) Majority() (Entry, bool, error) {
	c.mu.RLock()
	defer c.mu.RUnlock()
	return c.p.Majority()
}

// Distribution returns the frequency histogram in ascending frequency order.
func (c *Concurrent) Distribution() []FreqCount {
	c.mu.RLock()
	defer c.mu.RUnlock()
	return c.p.Distribution()
}

// Summarize returns aggregate statistics of the profile.
func (c *Concurrent) Summarize() Summary {
	c.mu.RLock()
	defer c.mu.RUnlock()
	return c.p.Summarize()
}

// Cap returns the number of object slots.
func (c *Concurrent) Cap() int {
	c.mu.RLock()
	defer c.mu.RUnlock()
	return c.p.Cap()
}

// Total returns the sum of all frequencies.
func (c *Concurrent) Total() int64 {
	c.mu.RLock()
	defer c.mu.RUnlock()
	return c.p.Total()
}

// Query answers a composite query atomically: the read lock is held once
// across the whole evaluation, so every selected statistic — Mode, TopK,
// quantiles, the distribution, the summary — comes from the same cut of the
// profile, and a composite costs one lock round-trip instead of one per
// statistic.
func (c *Concurrent) Query(q Query) (QueryResult, error) {
	c.mu.RLock()
	defer c.mu.RUnlock()
	return core.EvalQuery(c.p, q)
}

// Snapshot returns a point-in-time deep copy of the profile that can be
// queried without any further locking. The error is always nil; the signature
// matches the Snapshotter capability shared with Sharded.
func (c *Concurrent) Snapshot() (*Profile, error) {
	c.mu.RLock()
	defer c.mu.RUnlock()
	return c.p.Clone(), nil
}

// LoadFrequencies replaces the profile's entire state under the write lock:
// object x ends at frequency freqs[x] with the adds/removes counters set to
// the given totals. It is the restore half of the FrequencyLoader capability
// checkpoint recovery uses.
func (c *Concurrent) LoadFrequencies(freqs []int64, adds, removes uint64) error {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.p.LoadFrequencies(freqs, adds, removes)
}
