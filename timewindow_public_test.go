package sprofile_test

import (
	"testing"
	"time"

	"sprofile"
)

var epoch = time.Date(2026, 6, 16, 12, 0, 0, 0, time.UTC)

func TestPublicTimeWindow(t *testing.T) {
	p := sprofile.MustNew(4)
	w, err := sprofile.NewTimeWindow(p, 10*time.Second)
	if err != nil {
		t.Fatal(err)
	}
	if w.Span() != 10*time.Second || w.Profile() != p {
		t.Fatalf("Span=%v Profile mismatch", w.Span())
	}

	// Object 0 is popular early, object 1 later; after the early events age
	// out, the windowed mode must be object 1.
	for i := 0; i < 5; i++ {
		if err := w.PushAt(sprofile.Tuple{Object: 0, Action: sprofile.ActionAdd},
			epoch.Add(time.Duration(i)*time.Second)); err != nil {
			t.Fatal(err)
		}
	}
	for i := 0; i < 3; i++ {
		if err := w.PushAt(sprofile.Tuple{Object: 1, Action: sprofile.ActionAdd},
			epoch.Add(time.Duration(20+i)*time.Second)); err != nil {
			t.Fatal(err)
		}
	}
	mode, _, err := p.Mode()
	if err != nil {
		t.Fatal(err)
	}
	if mode.Object != 1 || mode.Frequency != 3 {
		t.Fatalf("windowed mode = %+v, want object 1 freq 3", mode)
	}
	if f, _ := p.Count(0); f != 0 {
		t.Fatalf("Count(0) = %d after aging out, want 0", f)
	}
	if w.Len() != 3 {
		t.Fatalf("Len() = %d, want 3", w.Len())
	}
	pushed, expired := w.Stats()
	if pushed != 8 || expired != 5 {
		t.Fatalf("Stats = (%d, %d)", pushed, expired)
	}

	// Idle expiry via AdvanceTo.
	if err := w.AdvanceTo(epoch.Add(time.Hour)); err != nil {
		t.Fatal(err)
	}
	if p.Total() != 0 {
		t.Fatalf("Total = %d after AdvanceTo far future", p.Total())
	}
}

func TestPublicTimeWindowValidation(t *testing.T) {
	if _, err := sprofile.NewTimeWindow(nil, time.Second); err == nil {
		t.Fatalf("NewTimeWindow(nil) succeeded")
	}
	if _, err := sprofile.NewTimeWindow(sprofile.MustNew(1), 0); err == nil {
		t.Fatalf("NewTimeWindow with zero span succeeded")
	}
	defer func() {
		if recover() == nil {
			t.Fatalf("MustNewTimeWindow did not panic")
		}
	}()
	sprofile.MustNewTimeWindow(sprofile.MustNew(1), -time.Second)
}

func TestPublicTimeWindowWallClockPush(t *testing.T) {
	p := sprofile.MustNew(2)
	w := sprofile.MustNewTimeWindow(p, time.Hour)
	if err := w.Push(sprofile.Tuple{Object: 1, Action: sprofile.ActionAdd}); err != nil {
		t.Fatal(err)
	}
	if f, _ := p.Count(1); f != 1 {
		t.Fatalf("Count(1) = %d", f)
	}
}
