package sprofile_test

import (
	"bytes"
	"errors"
	"testing"

	"sprofile"
)

func TestNewAndBasicQueries(t *testing.T) {
	p, err := sprofile.New(10)
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 5; i++ {
		if err := p.Add(3); err != nil {
			t.Fatal(err)
		}
	}
	p.Add(7)
	p.Remove(2)

	mode, ties, err := p.Mode()
	if err != nil {
		t.Fatal(err)
	}
	if mode.Object != 3 || mode.Frequency != 5 || ties != 1 {
		t.Fatalf("Mode = %+v ties %d", mode, ties)
	}
	if f, _ := p.Count(7); f != 1 {
		t.Fatalf("Count(7) = %d", f)
	}
	min, _, err := p.Min()
	if err != nil {
		t.Fatal(err)
	}
	if min.Object != 2 || min.Frequency != -1 {
		t.Fatalf("Min = %+v", min)
	}
	top := p.TopK(2)
	if len(top) != 2 || top[0].Frequency != 5 || top[1].Frequency != 1 {
		t.Fatalf("TopK(2) = %+v", top)
	}
}

func TestNewInvalidCapacity(t *testing.T) {
	if _, err := sprofile.New(-1); !errors.Is(err, sprofile.ErrCapacity) {
		t.Fatalf("New(-1) error %v", err)
	}
}

func TestStrictOption(t *testing.T) {
	p := sprofile.MustNew(4, sprofile.WithStrictNonNegative())
	if err := p.Remove(0); !errors.Is(err, sprofile.ErrNegativeFrequency) {
		t.Fatalf("strict Remove error %v", err)
	}
	if err := p.Add(0); err != nil {
		t.Fatal(err)
	}
	if err := p.Remove(0); err != nil {
		t.Fatalf("Remove after Add failed: %v", err)
	}
}

func TestApplyTuples(t *testing.T) {
	p := sprofile.MustNew(3, sprofile.WithBlockHint(8))
	tuples := []sprofile.Tuple{
		{Object: 0, Action: sprofile.ActionAdd},
		{Object: 1, Action: sprofile.ActionAdd},
		{Object: 0, Action: sprofile.ActionAdd},
		{Object: 1, Action: sprofile.ActionRemove},
	}
	n, err := p.ApplyAll(tuples)
	if err != nil || n != len(tuples) {
		t.Fatalf("ApplyAll = %d, %v", n, err)
	}
	if p.Total() != 2 {
		t.Fatalf("Total = %d, want 2", p.Total())
	}
	if err := p.CheckInvariants(); err != nil {
		t.Fatal(err)
	}
}

func TestFromFrequenciesAndSnapshot(t *testing.T) {
	p, err := sprofile.FromFrequencies([]int64{5, 0, -2, 9})
	if err != nil {
		t.Fatal(err)
	}
	mode, _, _ := p.Mode()
	if mode.Object != 3 || mode.Frequency != 9 {
		t.Fatalf("Mode = %+v", mode)
	}
	var buf bytes.Buffer
	if err := p.WriteSnapshot(&buf); err != nil {
		t.Fatal(err)
	}
	restored, err := sprofile.ReadSnapshot(&buf)
	if err != nil {
		t.Fatal(err)
	}
	for x := 0; x < 4; x++ {
		a, _ := p.Count(x)
		b, _ := restored.Count(x)
		if a != b {
			t.Fatalf("Count(%d) differs after snapshot round-trip: %d vs %d", x, a, b)
		}
	}
	if _, err := sprofile.ReadSnapshot(bytes.NewReader([]byte("junk"))); !errors.Is(err, sprofile.ErrBadSnapshot) {
		t.Fatalf("ReadSnapshot of junk: %v", err)
	}
}

func TestQuantileAndDistribution(t *testing.T) {
	p := sprofile.MustNew(4)
	p.Add(0)
	p.Add(0)
	p.Add(1)
	med, err := p.Median()
	if err != nil {
		t.Fatal(err)
	}
	if med.Frequency != 0 {
		t.Fatalf("Median frequency %d, want 0", med.Frequency)
	}
	q, err := p.Quantile(1)
	if err != nil {
		t.Fatal(err)
	}
	if q.Frequency != 2 {
		t.Fatalf("Quantile(1) frequency %d, want 2", q.Frequency)
	}
	dist := p.Distribution()
	want := []sprofile.FreqCount{{Freq: 0, Count: 2}, {Freq: 1, Count: 1}, {Freq: 2, Count: 1}}
	if len(dist) != len(want) {
		t.Fatalf("Distribution = %+v", dist)
	}
	for i := range want {
		if dist[i] != want[i] {
			t.Fatalf("Distribution[%d] = %+v, want %+v", i, dist[i], want[i])
		}
	}
}

func TestErrObjectRangeSurfaced(t *testing.T) {
	p := sprofile.MustNew(2)
	if err := p.Add(5); !errors.Is(err, sprofile.ErrObjectRange) {
		t.Fatalf("Add(5) error %v", err)
	}
	if _, err := p.KthLargest(3); !errors.Is(err, sprofile.ErrBadRank) {
		t.Fatalf("KthLargest(3) error %v", err)
	}
}

func TestEmptyProfileError(t *testing.T) {
	p := sprofile.MustNew(0)
	if _, _, err := p.Mode(); !errors.Is(err, sprofile.ErrEmptyProfile) {
		t.Fatalf("Mode on empty profile: %v", err)
	}
}
